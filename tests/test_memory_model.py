"""LLC chaining and I-cache penalty tests (thesis §4.8, Eq 3.1 term 3)."""

import pytest

from repro.core.machine import MachineConfig
from repro.core.memory_model import icache_penalty, llc_chain_penalty


class TestLLCChainPenalty:
    def test_no_hits_no_penalty(self):
        penalty = llc_chain_penalty(
            llc_hits_per_rob=0.0,
            independent_load_fraction=1.0,
            loads_per_rob=32.0,
            deff=4.0,
            num_uops=10_000,
            config=MachineConfig(),
        )
        assert penalty == 0.0

    def test_short_chains_hidden_by_rob(self):
        # Few hits spread over many paths: serialized latency below the
        # ROB fill time is hidden (Eq 4.11).
        penalty = llc_chain_penalty(
            llc_hits_per_rob=2.0,
            independent_load_fraction=1.0,
            loads_per_rob=32.0,
            deff=4.0,
            num_uops=10_000,
            config=MachineConfig(rob_size=128),
        )
        assert penalty == 0.0

    def test_long_chains_exposed(self):
        # One dependence path carrying many LLC hits serializes beyond
        # the ROB fill time.
        config = MachineConfig(rob_size=128)
        penalty = llc_chain_penalty(
            llc_hits_per_rob=8.0,
            independent_load_fraction=1.0 / 32.0,  # one path
            loads_per_rob=32.0,
            deff=4.0,
            num_uops=10_000,
            config=config,
        )
        assert penalty > 0.0

    def test_more_paths_less_penalty(self):
        config = MachineConfig(rob_size=128)
        few_paths = llc_chain_penalty(8.0, 1 / 32, 32.0, 4.0, 10_000, config)
        many_paths = llc_chain_penalty(8.0, 0.5, 32.0, 4.0, 10_000, config)
        assert many_paths <= few_paths

    def test_eq_4_7_to_4_9_hand_case(self):
        # hits=6, paths=2, lop=4: LHC_avg=3, LHC_max=min(6,4)=4,
        # LHC_exp=3+(4-3)/2=3.5 -> serialized=30*3.5=105;
        # rob fill=128/4=32 -> per-window 73; windows=1280/128=10 -> 730.
        config = MachineConfig(rob_size=128)
        penalty = llc_chain_penalty(
            llc_hits_per_rob=6.0,
            independent_load_fraction=2.0 / 8.0,
            loads_per_rob=8.0,
            deff=4.0,
            num_uops=1280.0,
            config=config,
        )
        assert penalty == pytest.approx(730.0)


class TestICachePenalty:
    def test_no_misses_no_penalty(self):
        assert icache_penalty(1000, [0.0, 0.0, 0.0], MachineConfig()) == 0.0

    def test_l1i_misses_pay_l2_latency(self):
        config = MachineConfig()
        penalty = icache_penalty(1000, [0.01, 0.0, 0.0], config)
        assert penalty == pytest.approx(1000 * 0.01 * config.l2.latency)

    def test_all_levels_summed(self):
        config = MachineConfig()
        penalty = icache_penalty(1000, [0.1, 0.05, 0.01], config)
        expected = 1000 * (
            0.1 * config.l2.latency
            + 0.05 * config.llc.latency
            + 0.01 * config.dram_latency
        )
        assert penalty == pytest.approx(expected)
