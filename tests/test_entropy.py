"""Linear branch entropy tests (thesis §3.5, Eqs 3.13-3.15, Fig 3.9)."""

import random

import pytest

from repro.frontend.entropy import (
    EntropyMissRateModel,
    linear_entropy,
    profile_branch_entropy,
    train_entropy_model,
)
from repro.isa import Instruction, MacroOp
from repro.workloads.trace import Trace


def branch_trace(outcomes, pc=0x100):
    return Trace([
        Instruction(pc=pc, op=MacroOp.BRANCH, taken=bool(t))
        for t in outcomes
    ], name="branches")


class TestLinearEntropy:
    def test_certain_outcomes_zero_entropy(self):
        assert linear_entropy(0.0) == 0.0
        assert linear_entropy(1.0) == 0.0

    def test_coin_flip_max_entropy(self):
        assert linear_entropy(0.5) == 1.0

    def test_symmetry(self):
        assert linear_entropy(0.3) == pytest.approx(linear_entropy(0.7))

    def test_linearity(self):
        assert linear_entropy(0.25) == pytest.approx(0.5)


class TestEntropyProfiling:
    def test_constant_branch_zero_entropy(self):
        profile = profile_branch_entropy(branch_trace([True] * 500))
        for value in profile.entropy.values():
            assert value == pytest.approx(0.0, abs=0.02)

    def test_random_branch_high_entropy(self):
        rng = random.Random(3)
        profile = profile_branch_entropy(
            branch_trace([rng.random() < 0.5 for _ in range(4000)])
        )
        # With enough history the finite-sample bias shrinks but stays
        # near 1 for truly random outcomes at short history.
        assert profile.entropy[4] > 0.7

    def test_alternating_branch_low_entropy_with_history(self):
        profile = profile_branch_entropy(
            branch_trace([i % 2 == 0 for i in range(2000)])
        )
        # Given >= 1 bit of history the pattern is fully determined.
        assert profile.entropy[4] == pytest.approx(0.0, abs=0.02)

    def test_entropy_non_increasing_with_history(self):
        rng = random.Random(9)
        outcomes = [(i % 4 == 0) or rng.random() < 0.1 for i in range(4000)]
        profile = profile_branch_entropy(branch_trace(outcomes),
                                         history_lengths=(2, 6, 10))
        assert profile.entropy[2] >= profile.entropy[6] - 0.02
        assert profile.entropy[6] >= profile.entropy[10] - 0.02

    def test_biased_random_entropy_matches_formula(self):
        rng = random.Random(4)
        p = 0.2
        outcomes = [rng.random() < p for _ in range(8000)]
        profile = profile_branch_entropy(branch_trace(outcomes),
                                         history_lengths=(2,))
        assert profile.entropy[2] == pytest.approx(2 * p, abs=0.08)

    def test_counts_branches(self, gcc_trace):
        profile = profile_branch_entropy(gcc_trace)
        assert profile.num_branches == sum(
            1 for i in gcc_trace if i.is_branch
        )

    def test_at_picks_nearest_history(self):
        profile = profile_branch_entropy(branch_trace([True] * 100),
                                         history_lengths=(4, 12))
        profile.entropy = {4: 0.5, 12: 0.9}
        assert profile.at(5) == 0.5
        assert profile.at(11) == 0.9


class TestEntropyMissRateModel:
    def test_prediction_clamped(self):
        model = EntropyMissRateModel("x", slope=2.0, intercept=0.0,
                                     history_bits=8)
        assert model.predict(1.0) == 1.0
        assert model.predict(-0.5) == 0.0

    def test_linear_region(self):
        model = EntropyMissRateModel("x", slope=0.5, intercept=0.01,
                                     history_bits=8)
        assert model.predict(0.4) == pytest.approx(0.21)

    def test_training_recovers_positive_slope(self):
        # Traces spanning the entropy range: miss rates must correlate, so
        # the fitted slope is positive and predictions land near
        # simulation (thesis Fig 3.9's linear fit).
        rng = random.Random(21)
        traces = []
        for p in (0.0, 0.05, 0.15, 0.3, 0.5):
            outcomes = [rng.random() < p for _ in range(3000)]
            traces.append(branch_trace(outcomes))
        model = train_entropy_model("gshare", traces)
        assert model.slope > 0.1
        assert model.r_squared > 0.7

    def test_training_needs_two_traces(self):
        with pytest.raises(ValueError):
            train_entropy_model("gshare", [branch_trace([True] * 10)])

    def test_trained_model_predicts_heldout_trace(self):
        rng = random.Random(22)
        train = [
            branch_trace([rng.random() < p for _ in range(3000)])
            for p in (0.0, 0.1, 0.25, 0.5)
        ]
        model = train_entropy_model("gshare", train)
        held = branch_trace([rng.random() < 0.35 for _ in range(3000)])
        from repro.frontend.predictors import make_predictor, \
            misprediction_rate
        actual = misprediction_rate(make_predictor("gshare"), held)
        profile = profile_branch_entropy(held)
        predicted = model.predict_from_profile(profile)
        assert predicted == pytest.approx(actual, abs=0.12)
