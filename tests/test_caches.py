"""Cache hierarchy, MSHR and prefetcher tests (functional substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.cache import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    MissKind,
    default_hierarchy,
)
from repro.caches.mshr import MSHRFile
from repro.caches.prefetcher import StridePrefetcher


class TestCacheBasics:
    def test_first_access_is_cold(self):
        cache = Cache(CacheConfig(1024, associativity=2, line_size=64))
        assert cache.access(0) is MissKind.COLD

    def test_second_access_hits(self):
        cache = Cache(CacheConfig(1024, associativity=2, line_size=64))
        cache.access(0)
        assert cache.access(0) is MissKind.HIT

    def test_same_line_different_offset_hits(self):
        cache = Cache(CacheConfig(1024, associativity=2, line_size=64))
        cache.access(0)
        assert cache.access(63) is MissKind.HIT

    def test_lru_eviction(self):
        # 2-way set: third distinct line mapping to the set evicts the LRU.
        config = CacheConfig(2 * 64, associativity=2, line_size=64)
        cache = Cache(config)  # single set
        cache.access(0)
        cache.access(64)
        cache.access(0)       # 0 becomes MRU
        cache.access(128)     # evicts 64
        assert cache.access(0) is MissKind.HIT
        assert cache.access(64) is MissKind.CAPACITY

    def test_capacity_miss_classification(self):
        config = CacheConfig(2 * 64, associativity=2, line_size=64)
        cache = Cache(config)
        for line in range(3):
            cache.access(line * 64)
        assert cache.access(0) is MissKind.CAPACITY  # seen before, evicted

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, associativity=3, line_size=64)

    def test_stats_split_loads_and_stores(self):
        cache = Cache(CacheConfig(1024, associativity=2, line_size=64))
        cache.access(0, is_write=False)
        cache.access(64, is_write=True)
        assert cache.stats.load_accesses == 1
        assert cache.stats.store_accesses == 1
        assert cache.stats.load_cold_misses == 1
        assert cache.stats.store_cold_misses == 1

    def test_reset_stats_keeps_contents(self):
        cache = Cache(CacheConfig(1024, associativity=2, line_size=64))
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.access(0) is MissKind.HIT


class TestLRUProperty:
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                    max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_fully_associative_matches_reference_lru(self, lines):
        """A fully-associative cache must match an explicit LRU list."""
        capacity = 8
        cache = Cache(CacheConfig(capacity * 64, associativity=capacity,
                                  line_size=64))
        reference = []
        for line in lines:
            expected_hit = line in reference
            outcome = cache.access(line * 64)
            assert (outcome is MissKind.HIT) == expected_hit
            if line in reference:
                reference.remove(line)
            reference.append(line)
            if len(reference) > capacity:
                reference.pop(0)


class TestHierarchy:
    def test_inclusive_fill_path(self):
        hierarchy = default_hierarchy()
        hierarchy.access(0)
        # After a DRAM fill, all levels hold the line.
        for cache in hierarchy.levels:
            assert cache.lookup(0)

    def test_hit_level_reporting(self):
        hierarchy = default_hierarchy()
        first = hierarchy.access(0)
        assert first.hit_level == 0  # DRAM
        second = hierarchy.access(0)
        assert second.hit_level == 1  # L1

    def test_latency_matches_hit_level(self):
        hierarchy = default_hierarchy()
        hierarchy.access(0)
        assert hierarchy.access(0).latency == (
            hierarchy.levels[0].config.latency
        )

    def test_mpki_decreases_with_level(self, libquantum_trace):
        hierarchy = default_hierarchy()
        for instr in libquantum_trace:
            if instr.is_mem:
                hierarchy.access(instr.addr, is_write=instr.is_store)
        mpki = hierarchy.mpki(len(libquantum_trace))
        assert mpki[0] >= mpki[1] >= mpki[2]

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestMSHR:
    def test_single_request(self):
        mshr = MSHRFile(4)
        assert mshr.request(0, now=0, latency=100) == 100

    def test_coalescing_same_line(self):
        mshr = MSHRFile(4)
        first = mshr.request(0, now=0, latency=100)
        second = mshr.request(32, now=10, latency=100)  # same 64B line
        assert second == first
        assert mshr.stats.coalesced == 1

    def test_full_file_delays_new_requests(self):
        mshr = MSHRFile(2)
        mshr.request(0, now=0, latency=100)
        mshr.request(64, now=0, latency=100)
        third = mshr.request(128, now=0, latency=100)
        assert third == 200  # waits for an entry to free at cycle 100
        assert mshr.stats.stalls == 1

    def test_expired_entries_free_slots(self):
        mshr = MSHRFile(1)
        mshr.request(0, now=0, latency=10)
        later = mshr.request(64, now=20, latency=10)
        assert later == 30
        assert mshr.stats.stalls == 0

    def test_occupancy(self):
        mshr = MSHRFile(4)
        mshr.request(0, now=0, latency=100)
        mshr.request(64, now=0, latency=100)
        assert mshr.occupancy(now=50) == 2
        assert mshr.occupancy(now=150) == 0

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 50)),
                    min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_completion_never_before_latency(self, requests):
        mshr = MSHRFile(4)
        now = 0
        for line, gap in requests:
            now += gap
            done = mshr.request(line * 64, now=now, latency=75)
            assert done >= now  # data can never be ready in the past


class TestStridePrefetcher:
    def test_detects_constant_stride(self):
        prefetcher = StridePrefetcher()
        prefetcher.train(0x40, 0)
        prefetcher.train(0x40, 64)
        issued = prefetcher.train(0x40, 128)
        assert issued == [192]

    def test_no_prefetch_without_confidence(self):
        prefetcher = StridePrefetcher()
        prefetcher.train(0x40, 0)
        assert prefetcher.train(0x40, 64) == []  # stride seen only once

    def test_page_boundary_blocks(self):
        prefetcher = StridePrefetcher(page_size=4096)
        prefetcher.train(0x40, 0)
        prefetcher.train(0x40, 3000)
        issued = prefetcher.train(0x40, 6000)  # next would cross page
        assert issued == []
        assert prefetcher.stats.page_blocked >= 1

    def test_table_eviction_forgets_trainers(self):
        # Thesis Fig 4.10: loads evicted from the table cannot prefetch.
        prefetcher = StridePrefetcher(table_entries=2)
        prefetcher.train(0xA, 0)
        prefetcher.train(0xB, 0)
        prefetcher.train(0xC, 0)  # evicts 0xA
        prefetcher.train(0xA, 64)
        prefetcher.train(0xA, 128)
        # 0xA was re-learned from scratch: one stride observation so far.
        issued = prefetcher.train(0xA, 192)
        assert issued == [256]
        assert prefetcher.stats.table_evictions >= 1

    def test_degree_issues_multiple(self):
        prefetcher = StridePrefetcher(degree=2)
        prefetcher.train(0x40, 0)
        prefetcher.train(0x40, 64)
        issued = prefetcher.train(0x40, 128)
        assert issued == [192, 256]

    def test_random_pattern_never_stabilizes(self):
        prefetcher = StridePrefetcher()
        import random
        rng = random.Random(7)
        issued_total = 0
        last = 0
        for _ in range(50):
            addr = rng.randrange(0, 1 << 20)
            issued_total += len(prefetcher.train(0x40, addr))
        assert issued_total <= 2  # accidental repeats only
