"""Guided search: objectives, budget, problem caching, optimizers."""

import math

import pytest

from repro.core import AnalyticalModel
from repro.explore.engine import SweepEngine
from repro.explore.search import (
    EvaluationBudget,
    SearchProblem,
    SearchTrajectory,
    get_objective,
    make_optimizer,
    power_capped,
)
from repro.explore.space import DesignSpace, Parameter

SPACE = DesignSpace(
    parameters=(
        Parameter.integer("dispatch_width", 2, 6, 2),
        Parameter.integer("rob_size", 64, 256, 64),
        Parameter.categorical("llc_mb", (2, 8)),
        Parameter.real("frequency_ghz", 1.66, 3.66, 1.0),
    ),
    name="search-test",
)  # 3 * 4 * 2 * 3 = 72 points

OPTIMIZER_NAMES = ("random", "hill", "sa", "ga")


def signature(trajectory):
    """The deterministic part of a trajectory (order, points, fitness)."""
    return [(e.index, tuple(sorted(e.point.items())), e.fitness)
            for e in trajectory.evaluations]


def make_problem(profile, objective="edp", workers=1, **kwargs):
    return SearchProblem(
        [profile], SPACE, get_objective(objective, **kwargs),
        engine=SweepEngine(workers=workers),
    )


class TestObjectives:
    def test_registry_names(self):
        for name in ("seconds", "energy", "edp", "ed2p"):
            assert get_objective(name).name == name

    def test_unknown_objective(self):
        with pytest.raises(ValueError):
            get_objective("ipc")

    def test_metric_values_match_design_point(self, gcc_profile):
        problem = make_problem(gcc_profile, "edp")
        point = SPACE.points()[0]
        (fitness,) = problem.evaluate([point])
        expected = AnalyticalModel().predict(
            gcc_profile, SPACE.config(point)).edp
        assert fitness == expected

    def test_power_capped_marks_infeasible_inf(self, gcc_profile):
        base = get_objective("seconds")
        capped = power_capped(base, 1e-6)   # nothing fits this cap
        problem = SearchProblem([gcc_profile], SPACE, capped)
        (fitness,) = problem.evaluate([SPACE.points()[0]])
        assert fitness == math.inf

    def test_power_capped_passthrough_when_feasible(self, gcc_profile):
        capped = get_objective("seconds", power_cap_watts=1e6)
        problem = SearchProblem([gcc_profile], SPACE, capped)
        point = SPACE.points()[0]
        (fitness,) = problem.evaluate([point])
        (reference,) = make_problem(gcc_profile,
                                    "seconds").evaluate([point])
        assert fitness == reference


class TestEvaluationBudget:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EvaluationBudget(0)

    def test_consumption(self):
        budget = EvaluationBudget(2)
        assert budget.try_consume() and budget.try_consume()
        assert not budget.try_consume()
        assert budget.exhausted and budget.remaining == 0

    def test_of_coerces_int(self):
        assert EvaluationBudget.of(5).max_evaluations == 5
        budget = EvaluationBudget(3)
        assert EvaluationBudget.of(budget) is budget


class TestSearchProblem:
    def test_cache_spends_budget_once(self, gcc_profile):
        problem = make_problem(gcc_profile)
        budget = EvaluationBudget(10)
        point = SPACE.points()[0]
        first = problem.evaluate([point], budget)
        second = problem.evaluate([point], budget)
        assert first == second
        assert budget.spent == 1
        assert problem.cache_size == 1

    def test_duplicates_in_one_batch_cost_one(self, gcc_profile):
        problem = make_problem(gcc_profile)
        budget = EvaluationBudget(10)
        point = SPACE.points()[0]
        values = problem.evaluate([point, dict(point)], budget)
        assert values[0] == values[1] is not None
        assert budget.spent == 1

    def test_budget_truncates_batch(self, gcc_profile):
        problem = make_problem(gcc_profile)
        budget = EvaluationBudget(2)
        points = SPACE.points()[:4]
        values = problem.evaluate(points, budget, SearchTrajectory(
            optimizer="x", seed=0))
        assert values[:2] == problem.evaluate(points[:2])
        assert values[2] is None and values[3] is None

    def test_trajectory_records_new_evaluations_only(self, gcc_profile):
        problem = make_problem(gcc_profile)
        trajectory = SearchTrajectory(optimizer="x", seed=0)
        points = SPACE.points()[:3]
        problem.evaluate(points, EvaluationBudget(10), trajectory)
        problem.evaluate(points, EvaluationBudget(10), trajectory)
        assert len(trajectory) == 3
        assert [e.index for e in trajectory.evaluations] == [0, 1, 2]

    def test_multi_profile_fitness_is_mean(self, gcc_profile,
                                           gamess_profile):
        objective = get_objective("seconds")
        point = SPACE.points()[0]
        combined = SearchProblem([gcc_profile, gamess_profile], SPACE,
                                 objective)
        (fitness,) = combined.evaluate([point])
        singles = []
        for profile in (gcc_profile, gamess_profile):
            (value,) = SearchProblem([profile], SPACE,
                                     objective).evaluate([point])
            singles.append(value)
        assert fitness == sum(singles) / 2

    def test_requires_profiles(self):
        with pytest.raises(ValueError):
            SearchProblem([], SPACE, get_objective("edp"))

    def test_model_cache_persists_across_batches(self, gcc_profile):
        """Memoized intermediates survive between proposal batches."""
        problem = make_problem(gcc_profile)
        model = problem.engine.model
        assert model.cache is not None
        problem.evaluate(SPACE.points()[:2])
        size_after_first = len(model.cache)
        assert size_after_first > 0
        problem.evaluate(SPACE.points()[:2])  # cached fitnesses
        assert len(model.cache) == size_after_first

    def test_caller_attached_cache_is_reused(self, gcc_profile):
        from repro.core.interval import ModelCache

        cache = ModelCache()
        engine = SweepEngine(model=AnalyticalModel(cache=cache),
                             workers=1)
        problem = SearchProblem([gcc_profile], SPACE,
                                get_objective("edp"), engine=engine)
        problem.evaluate(SPACE.points()[:1])
        assert engine.model.cache is cache
        assert len(cache) > 0

    def test_exhaustive_best_is_the_minimum(self, gcc_profile):
        problem = make_problem(gcc_profile)
        best_point, best_fitness = problem.exhaustive_best()
        fitness = problem.evaluate(SPACE.points())
        assert best_fitness == min(fitness)
        assert problem.cache_size == SPACE.size()
        (again,) = problem.evaluate([best_point])
        assert again == best_fitness


class TestTrajectory:
    def test_best_and_curve(self):
        trajectory = SearchTrajectory(optimizer="x", seed=0)
        for value in (3.0, 1.0, 2.0, 1.0):
            trajectory.record({"a": value}, value)
        assert trajectory.best.fitness == 1.0
        assert trajectory.best.index == 1  # earliest best wins
        assert trajectory.best_curve() == [3.0, 1.0, 1.0, 1.0]

    def test_empty_best_raises(self):
        with pytest.raises(ValueError):
            SearchTrajectory(optimizer="x", seed=0).best

    def test_as_dict_round_trips_through_json(self):
        import json
        trajectory = SearchTrajectory(optimizer="x", seed=3,
                                      objective="edp")
        trajectory.record({"a": 1}, 2.0)
        data = json.loads(json.dumps(trajectory.as_dict()))
        assert data["optimizer"] == "x" and data["seed"] == 3
        assert data["best_fitness"] == 2.0
        assert data["evaluations"][0]["point"] == {"a": 1}


class TestOptimizers:
    @pytest.mark.parametrize("name", OPTIMIZER_NAMES)
    def test_same_seed_identical_trajectory(self, gcc_profile, name):
        runs = [
            make_optimizer(name, seed=11).search(
                make_problem(gcc_profile), 30)
            for _ in range(2)
        ]
        assert signature(runs[0]) == signature(runs[1])

    @pytest.mark.parametrize("name", OPTIMIZER_NAMES)
    def test_parallel_engine_identical_trajectory(self, gcc_profile,
                                                  name):
        serial = make_optimizer(name, seed=11).search(
            make_problem(gcc_profile), 30)
        parallel = make_optimizer(name, seed=11).search(
            make_problem(gcc_profile, workers=2), 30)
        assert signature(serial) == signature(parallel)

    @pytest.mark.parametrize("name", OPTIMIZER_NAMES)
    def test_different_seed_diverges(self, gcc_profile, name):
        a = make_optimizer(name, seed=0).search(
            make_problem(gcc_profile), 30)
        b = make_optimizer(name, seed=12345).search(
            make_problem(gcc_profile), 30)
        assert signature(a) != signature(b)

    @pytest.mark.parametrize("name", OPTIMIZER_NAMES)
    def test_budget_respected_and_terminates(self, gcc_profile, name):
        trajectory = make_optimizer(name, seed=0).search(
            make_problem(gcc_profile), 20)
        assert 1 <= len(trajectory) <= 20

    @pytest.mark.parametrize("name", OPTIMIZER_NAMES)
    def test_small_space_gets_near_optimum(self, gcc_profile, name):
        problem = make_problem(gcc_profile)
        _, optimum = problem.exhaustive_best()
        trajectory = make_optimizer(name, seed=0).search(
            make_problem(gcc_profile), 40)
        assert trajectory.best_fitness <= 1.10 * optimum

    def test_exhausted_space_stops_early(self, gcc_profile):
        tiny = DesignSpace(
            parameters=(Parameter.categorical("dispatch_width", (2, 4)),
                        Parameter.categorical("rob_size", (64, 128))),
        )
        problem = SearchProblem([gcc_profile], tiny,
                                get_objective("edp"))
        optimizer = make_optimizer("random", seed=0,
                                   max_stagnant_rounds=3)
        trajectory = optimizer.search(problem, 1000)
        assert len(trajectory) == tiny.size()

    def test_trajectory_metadata(self, gcc_profile):
        trajectory = make_optimizer("sa", seed=5).search(
            make_problem(gcc_profile), 10)
        assert trajectory.optimizer == "sa"
        assert trajectory.seed == 5
        assert trajectory.objective == "edp"
        assert trajectory.wall_seconds > 0
        curve = trajectory.best_curve()
        assert curve == sorted(curve, reverse=True)

    def test_power_capped_search_respects_cap(self, gcc_profile):
        problem = make_problem(gcc_profile, "seconds",
                               power_cap_watts=8.0)
        trajectory = make_optimizer("ga", seed=0).search(problem, 40)
        best_config = SPACE.config(trajectory.best_point)
        result = AnalyticalModel().predict(gcc_profile, best_config)
        assert trajectory.best_fitness < math.inf
        assert result.power_watts <= 8.0

    def test_make_optimizer_unknown(self):
        with pytest.raises(ValueError):
            make_optimizer("bayes")

    def test_ga_population_validation(self):
        with pytest.raises(ValueError):
            make_optimizer("ga", population=1)

    def test_sa_cooling_validation(self):
        with pytest.raises(ValueError):
            make_optimizer("sa", cooling=1.5)
