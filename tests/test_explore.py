"""DSE, DVFS, empirical baseline and cost model tests (Chapters 6-7)."""

import pytest

from repro.core import AnalyticalModel, design_space, nehalem
from repro.core.machine import DVFSPoint, dvfs_points
from repro.explore.cost import (
    interval_model_cost,
    micro_arch_independent_cost,
    simulation_cost,
    speedups,
)
from repro.explore.dse import error_statistics, evaluate_design_space
from repro.explore.dvfs import (
    best_under_power_cap,
    config_at,
    explore_dvfs,
    optimal_ed2p,
)
from repro.explore.empirical import EmpiricalModel


class TestDesignSpace:
    def test_243_configurations(self):
        assert len(design_space()) == 243

    def test_unique_names(self):
        names = [c.name for c in design_space()]
        assert len(set(names)) == 243

    def test_custom_axes(self):
        space = design_space({"dispatch_width": (2, 4),
                              "rob_size": (64, 128)})
        assert len(space) == 4

    def test_evaluate_design_space(self, gcc_profile):
        space = design_space({"dispatch_width": (2, 4),
                              "llc_mb": (2, 8)})
        results = evaluate_design_space([gcc_profile], space)
        points = results["gcc"]
        assert len(points) == 4
        assert all(p.cpi > 0 and p.power_watts > 0 for p in points)

    def test_error_statistics(self):
        stats = error_statistics([1.1, 2.0], [1.0, 2.0], labels=["a", "b"])
        assert stats.mean == pytest.approx(0.05)
        assert stats.maximum == pytest.approx(0.1)
        assert stats.count == 2

    def test_error_statistics_length_mismatch(self):
        with pytest.raises(ValueError):
            error_statistics([1.0], [1.0, 2.0])


class TestDVFS:
    def test_dvfs_grid(self):
        points = dvfs_points()
        assert len(points) >= 5
        frequencies = [p.frequency_ghz for p in points]
        assert frequencies == sorted(frequencies)

    def test_config_at_scales_dram_cycles(self):
        base = nehalem()
        fast = config_at(base, DVFSPoint(frequency_ghz=5.32, vdd=1.3))
        assert fast.dram_latency == pytest.approx(2 * base.dram_latency,
                                                  rel=0.01)

    def test_higher_frequency_fewer_seconds_compute_bound(
        self, gamess_profile
    ):
        results = explore_dvfs(gamess_profile, nehalem())
        by_freq = sorted(results, key=lambda r: r.point.frequency_ghz)
        assert by_freq[0].seconds > by_freq[-1].seconds

    def test_higher_frequency_more_power(self, gamess_profile):
        results = explore_dvfs(gamess_profile, nehalem())
        by_freq = sorted(results, key=lambda r: r.point.frequency_ghz)
        assert by_freq[0].power_watts < by_freq[-1].power_watts

    def test_optimal_ed2p_selection(self, gamess_profile):
        results = explore_dvfs(gamess_profile, nehalem())
        best = optimal_ed2p(results)
        assert best.ed2p == min(r.ed2p for r in results)

    def test_optimal_ed2p_empty_rejected(self):
        with pytest.raises(ValueError):
            optimal_ed2p([])

    def test_engine_path_matches_local_loop(self, gamess_profile):
        from repro.explore.engine import SweepEngine

        local = explore_dvfs(gamess_profile, nehalem())
        engine = explore_dvfs(gamess_profile, nehalem(),
                              engine=SweepEngine(workers=1))
        assert [r.point for r in local] == [r.point for r in engine]
        assert [r.seconds for r in local] == [r.seconds for r in engine]
        assert [r.power_watts for r in local] == \
            [r.power_watts for r in engine]

    def test_short_engine_stream_rejected(self, gamess_profile):
        from repro.explore.engine import SweepEngine

        # Regression: a stream shorter than the operating-point grid
        # used to be zip-truncated into silently mispaired results.
        class ShortEngine:
            def iter_sweep(self, profiles, configs):
                real = SweepEngine(workers=1)
                yield from list(real.iter_sweep(profiles, configs))[:-1]

        with pytest.raises(ValueError, match="operating points"):
            explore_dvfs(gamess_profile, nehalem(),
                         engine=ShortEngine())

    def test_power_cap_respected(self, gcc_profile):
        model = AnalyticalModel()
        space = design_space({"dispatch_width": (2, 4, 6)})
        candidates = [(c, model.predict(gcc_profile, c)) for c in space]
        cap = sorted(r.power_watts for _, r in candidates)[1]
        chosen = best_under_power_cap(candidates, cap)
        assert chosen is not None
        assert chosen[1].power_watts <= cap

    def test_power_cap_infeasible(self, gcc_profile):
        model = AnalyticalModel()
        candidates = [(nehalem(), model.predict(gcc_profile, nehalem()))]
        assert best_under_power_cap(candidates, 0.001) is None


class TestEmpiricalModel:
    def test_fits_and_predicts_training_points(self, gcc_profile,
                                               gamess_profile):
        model = AnalyticalModel()
        space = design_space({"dispatch_width": (2, 4, 6),
                              "rob_size": (64, 256)})
        samples = []
        for profile in (gcc_profile, gamess_profile):
            for config in space:
                samples.append(
                    (profile, config,
                     model.predict(profile, config).cpi)
                )
        empirical = EmpiricalModel().fit(samples)
        for profile, config, target in samples[::3]:
            predicted = empirical.predict(profile, config)
            assert predicted == pytest.approx(target, rel=0.35, abs=0.3)

    def test_unfitted_prediction_rejected(self, gcc_profile):
        with pytest.raises(RuntimeError):
            EmpiricalModel().predict(gcc_profile, nehalem())

    def test_too_few_samples_rejected(self, gcc_profile):
        with pytest.raises(ValueError):
            EmpiricalModel().fit([(gcc_profile, nehalem(), 1.0)])


class TestCostModel:
    def test_simulation_cost_formula(self):
        cost = simulation_cost(29, 243, 1e9, mips=0.5)
        assert cost.days == pytest.approx(
            29 * 243 * 1e9 / 0.5e6 / 86400, rel=1e-6
        )

    def test_profile_amortization(self):
        ours = micro_arch_independent_cost(29, 243, 1e9)
        more_configs = micro_arch_independent_cost(29, 486, 1e9)
        # Doubling the config count must NOT double the cost (profiling
        # is a one-time expense) -- the paper's core claim.
        assert more_configs.seconds < 2 * ours.seconds

    def test_headline_speedups(self):
        # Thesis: ~315x over detailed simulation, ~18x over the interval
        # model.  Our defaults reproduce the orders of magnitude.
        result = speedups()
        assert result["speedup_vs_simulation"] > 100
        assert result["speedup_vs_interval"] > 5

    def test_interval_model_amortized_memory_configs(self):
        dense = interval_model_cost(29, 243, 1e9)
        amortized = interval_model_cost(29, 243, 1e9,
                                        distinct_memory_configs=27)
        assert amortized.seconds < dense.seconds


class TestCoreSelection:
    def _results(self, gcc_profile, gamess_profile):
        space = design_space({"dispatch_width": (2, 4),
                              "rob_size": (64, 256)})
        return evaluate_design_space([gcc_profile, gamess_profile], space)

    def test_per_workload_optimum_minimizes_metric(self, gcc_profile,
                                                   gamess_profile):
        from repro.explore.dse import best_config_per_workload
        results = self._results(gcc_profile, gamess_profile)
        best = best_config_per_workload(results)
        for workload, point in best.items():
            assert point.cpi == min(p.cpi for p in results[workload])

    def test_general_core_is_from_space(self, gcc_profile, gamess_profile):
        from repro.explore.dse import best_average_config
        results = self._results(gcc_profile, gamess_profile)
        name = best_average_config(results)
        assert name in {p.config.name for p in results["gcc"]}

    def test_specialist_never_worse_than_generalist(self, gcc_profile,
                                                    gamess_profile):
        from repro.explore.dse import (
            best_average_config,
            best_config_per_workload,
        )
        results = self._results(gcc_profile, gamess_profile)
        general = best_average_config(results)
        best = best_config_per_workload(results)
        for workload, point in best.items():
            general_point = next(
                p for p in results[workload] if p.config.name == general
            )
            assert point.cpi <= general_point.cpi + 1e-9

    def test_empty_results_rejected(self):
        from repro.explore.dse import best_average_config
        with pytest.raises(ValueError):
            best_average_config({})


class TestPublicAPI:
    def test_star_import_is_well_defined(self):
        """`from repro.explore import *` exposes exactly __all__."""
        import repro.explore as explore
        namespace = {}
        exec("from repro.explore import *", namespace)
        exported = {k for k in namespace if not k.startswith("__")}
        assert exported == set(explore.__all__)

    def test_all_names_resolve(self):
        import repro.explore as explore
        for name in explore.__all__:
            assert getattr(explore, name) is not None

    def test_search_api_exported(self):
        from repro.explore import (
            DesignSpace,
            EvaluationBudget,
            GeneticAlgorithm,
            HillClimber,
            Parameter,
            RandomSearch,
            SearchTrajectory,
            SimulatedAnnealing,
        )
        assert DesignSpace.default().size() == 243
        for cls in (RandomSearch, HillClimber, SimulatedAnnealing,
                    GeneticAlgorithm):
            assert cls(seed=0).seed == 0
        assert EvaluationBudget(1).remaining == 1
        assert Parameter.integer("rob_size", 64, 128, 64).values() == \
            (64, 128)
        assert SearchTrajectory(optimizer="x", seed=0).evaluations == []
