"""Columnar trace backend: bitwise equivalence vs the scalar reference.

The vectorized profiling passes must reproduce the retained scalar
implementations *bitwise* -- same histograms, same Counter insertion
order (it breaks ``most_common`` tie-breaking otherwise), same floats,
same ProfileStore content hashes -- across random traces, line sizes,
sample rates and seeds.  Hypothesis drives the comparison; a few unit
tests pin the columnar container behaviour itself.
"""

import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from equivalence import (
    accesses as _accesses,
    assert_memory_profiles_bitwise,
    assert_profiles_bitwise,
    instructions as _instructions,
    line_sizes as _line_sizes,
    sample_rates as _rates,
    seeds as _seeds,
    traces as _traces,
)
from repro.isa import Instruction, MacroOp
from repro.frontend.entropy import profile_branch_entropy
from repro.profiler import SamplingConfig, profile_application
from repro.profiler.dependences import profile_dependence_chains
from repro.profiler.memory import (
    _profile_cold_misses_scalar,
    _profile_micro_trace_memory_scalar,
    profile_cold_misses,
    profile_micro_trace_memory,
)
from repro.profiler.mix import profile_mix
from repro.profiler.profile import (
    _global_reuse_pass,
    _global_reuse_pass_scalar,
    _instruction_reuse_pass,
    _instruction_reuse_pass_scalar,
)
from repro.profiler.serialization import (
    profile_fingerprint,
)
from repro.statstack.reuse import (
    _collect_reuse_profile_scalar,
    accesses_from_columns,
    collect_reuse_profile,
)
from repro.workloads import Trace, TraceColumns
from repro.workloads.columns import (
    bernoulli_draws,
    count_histogram,
    previous_occurrence,
)

# Strategies live in equivalence.py (shared with the model-backend
# differential tests); see there for why the value pools are small.


class TestReuseEquivalence:
    @given(accesses=_accesses, line_size=_line_sizes, rate=_rates,
           seed=_seeds)
    @settings(max_examples=40, deadline=None)
    def test_collect_reuse_bitwise(self, accesses, line_size, rate,
                                   seed):
        scalar = _collect_reuse_profile_scalar(
            accesses, line_size=line_size, sample_rate=rate, seed=seed)
        vectorized = collect_reuse_profile(
            accesses, line_size=line_size, sample_rate=rate, seed=seed)
        assert scalar == vectorized

    @given(accesses=_accesses, rate=_rates)
    @settings(max_examples=15, deadline=None)
    def test_shared_rng_ends_in_same_state(self, accesses, rate):
        scalar_rng = random.Random(3)
        vector_rng = random.Random(3)
        _collect_reuse_profile_scalar(accesses, sample_rate=rate,
                                      rng=scalar_rng)
        collect_reuse_profile(accesses, sample_rate=rate, rng=vector_rng)
        assert scalar_rng.getstate() == vector_rng.getstate()

    @given(instrs=_traces, line_size=_line_sizes)
    @settings(max_examples=25, deadline=None)
    def test_instruction_reuse_bitwise(self, instrs, line_size):
        columns = TraceColumns.from_instructions(instrs)
        assert (_instruction_reuse_pass_scalar(instrs, line_size)
                == _instruction_reuse_pass(columns, line_size))

    @given(instrs=_traces, rate=_rates, seed=_seeds,
           micro=st.integers(1, 40), stretch=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_global_reuse_pass_bitwise(self, instrs, rate, seed, micro,
                                       stretch):
        sampling = SamplingConfig(micro, micro * stretch,
                                  reuse_sample_rate=rate,
                                  reuse_seed=seed)
        scalar, scalar_micro = _global_reuse_pass_scalar(
            instrs, sampling, 64)
        columns = TraceColumns.from_instructions(instrs)
        vector, vector_micro = _global_reuse_pass(columns, sampling, 64)
        assert scalar == vector
        assert scalar_micro == vector_micro


class TestMemoryEquivalence:
    @given(instrs=_traces)
    @settings(max_examples=30, deadline=None)
    def test_cold_misses_bitwise(self, instrs):
        assert (_profile_cold_misses_scalar(instrs)
                == profile_cold_misses(instrs))

    @given(instrs=_traces, line_size=_line_sizes)
    @settings(max_examples=40, deadline=None)
    def test_micro_trace_memory_bitwise(self, instrs, line_size):
        scalar = _profile_micro_trace_memory_scalar(
            instrs, line_size=line_size)
        vectorized = profile_micro_trace_memory(
            instrs, line_size=line_size)
        assert_memory_profiles_bitwise(scalar, vectorized)


class TestAuxiliaryEquivalence:
    @given(instrs=_traces)
    @settings(max_examples=25, deadline=None)
    def test_entropy_mix_chains_bitwise(self, instrs):
        columns = TraceColumns.from_instructions(instrs)
        assert (profile_branch_entropy(instrs)
                == profile_branch_entropy((), columns=columns))
        scalar_mix = profile_mix(instrs)
        columnar_mix = profile_mix((), columns=columns)
        assert scalar_mix == columnar_mix
        # Key order is part of the contract: the power model and
        # average_latency() sum floats over counts.items(), so a
        # different insertion order changes predictions in the last ulp.
        assert list(scalar_mix.counts) == list(columnar_mix.counts)
        scalar = profile_dependence_chains(instrs)
        vectorized = profile_dependence_chains((), columns=columns)
        assert scalar.ap.values == vectorized.ap.values
        assert scalar.abp.values == vectorized.abp.values
        assert scalar.cp.values == vectorized.cp.values


class TestProfileApplicationEquivalence:
    @given(instrs=_traces, rate=_rates, seed=st.integers(0, 10),
           micro=st.integers(1, 30), stretch=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_backends_bitwise_and_same_store_key(self, instrs, rate,
                                                 seed, micro, stretch):
        sampling = SamplingConfig(micro, micro * stretch,
                                  reuse_sample_rate=rate,
                                  reuse_seed=seed)
        trace = Trace(instrs, name="prop")
        scalar = profile_application(trace, sampling, backend="scalar")
        columnar = profile_application(trace, sampling)
        assert_profiles_bitwise(scalar, columnar)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            profile_application(Trace([], name="x"), backend="simd")

    @pytest.mark.parametrize("workload", ["bwaves", "lbm", "gcc"])
    def test_model_predictions_bitwise_across_backends(self, workload):
        # End-to-end: the analytical model's float reductions iterate
        # profile dicts, so backend interchangeability requires equal
        # iteration order, not just equal dict contents.  FP workloads
        # regress the mix-insertion-order bug specifically.
        from repro.core import AnalyticalModel, nehalem
        from repro.workloads import generate_trace, make_workload

        trace = generate_trace(make_workload(workload),
                               max_instructions=6000)
        sampling = SamplingConfig(500, 1500)
        scalar = profile_application(trace, sampling, backend="scalar")
        columnar = profile_application(trace, sampling)
        model = AnalyticalModel()
        config = nehalem()
        left = model.predict(scalar, config)
        right = model.predict(columnar, config)
        assert left.cpi == right.cpi
        assert left.seconds == right.seconds
        assert left.power_watts == right.power_watts
        assert left.cpi_stack() == right.cpi_stack()


class TestTraceColumns:
    @given(instrs=_traces)
    @settings(max_examples=25, deadline=None)
    def test_instruction_round_trip(self, instrs):
        columns = TraceColumns.from_instructions(instrs)
        assert columns.instructions() == list(instrs)

    def test_masks_match_predicates(self):
        instrs = [Instruction(pc=4 * i, op=op)
                  for i, op in enumerate(MacroOp)]
        columns = TraceColumns.from_instructions(instrs)
        for index, instr in enumerate(instrs):
            assert bool(columns.is_load[index]) == instr.is_load
            assert bool(columns.is_store[index]) == instr.is_store
            assert bool(columns.is_mem[index]) == instr.is_mem
            assert bool(columns.is_branch[index]) == instr.is_branch

    def test_slicing_shares_data_and_preserves_fields(self):
        instrs = [Instruction(pc=4 * i, op=MacroOp.LOAD, addr=64 * i)
                  for i in range(10)]
        columns = TraceColumns.from_instructions(instrs)
        view = columns[2:7]
        assert len(view) == 5
        assert view.pc.base is not None  # a view, not a copy
        assert view.instructions() == instrs[2:7]

    def test_ensure_accepts_trace_columns_and_sequences(self):
        instrs = [Instruction(pc=0, op=MacroOp.LOAD, addr=0)]
        trace = Trace(instrs)
        columns = trace.columns()
        assert TraceColumns.ensure(trace) is columns
        assert TraceColumns.ensure(columns) is columns
        built = TraceColumns.ensure(instrs)
        assert built.instructions() == instrs

    def test_previous_occurrence(self):
        ids = np.array([5, 7, 5, 5, 7, 9], dtype=np.int64)
        assert previous_occurrence(ids).tolist() == [-1, -1, 0, 2, 1, -1]
        assert previous_occurrence(np.array([], dtype=np.int64)).size == 0

    def test_count_histogram_returns_python_ints(self):
        histogram = count_histogram(np.array([3, 1, 3], dtype=np.int64))
        assert histogram == {1: 1, 3: 2}
        assert all(type(k) is int and type(v) is int
                   for k, v in histogram.items())
        # First-encounter key order, matching the scalar loop's dict.
        assert list(histogram) == [3, 1]

    def test_bernoulli_draws_match_rng_sequence(self):
        draws = bernoulli_draws(random.Random(11), 5)
        reference = random.Random(11)
        assert draws.tolist() == [reference.random() for _ in range(5)]


class TestTraceColumnarBehaviour:
    def test_stats_annotation_and_columnar_pass(self):
        instrs = [
            Instruction(pc=0, op=MacroOp.INT_ALU_LOAD, dst=1, addr=0),
            Instruction(pc=4, op=MacroOp.STORE, addr=64),
            Instruction(pc=8, op=MacroOp.BRANCH, taken=True),
        ]
        trace = Trace(instrs)
        assert trace._stats is None
        stats = trace.stats()
        assert trace.stats() is stats  # cached
        assert stats.num_instructions == 3
        assert stats.num_uops == 4  # load-op cracks into two
        assert stats.num_branches == 1
        assert stats.num_loads == 1
        assert stats.num_stores == 1
        assert stats.macro_mix[MacroOp.STORE] == 1

    @given(instrs=st.lists(_instructions, min_size=1, max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_stats_match_object_view(self, instrs):
        from collections import Counter

        from repro.isa import crack

        trace = Trace(instrs)
        stats = trace.stats()
        assert stats.macro_mix == dict(Counter(i.op for i in instrs))
        uop_mix = Counter()
        for instr in instrs:
            uop_mix.update(crack(instr.op))
        assert stats.uop_mix == dict(uop_mix)
        assert stats.num_uops == sum(uop_mix.values())
        assert stats.num_loads == sum(i.is_load for i in instrs)
        assert stats.num_stores == sum(i.is_store for i in instrs)
        assert stats.num_branches == sum(i.is_branch for i in instrs)

    def test_pickle_ships_columns_not_objects(self):
        instrs = [Instruction(pc=4 * i, op=MacroOp.LOAD, dst=1,
                              addr=64 * i) for i in range(50)]
        trace = Trace(instrs, name="ship", seed=9)
        payload = pickle.dumps(trace)
        assert b"Instruction" not in payload  # no per-object pickling
        clone = pickle.loads(payload)
        assert clone.name == "ship" and clone.seed == 9
        assert clone._instructions is None  # lazy object view
        assert list(clone.instructions) == instrs

    def test_pickle_round_trip_preserves_profile(self):
        from repro.workloads import generate_trace, make_workload

        trace = generate_trace(make_workload("gcc"),
                               max_instructions=4000)
        clone = pickle.loads(pickle.dumps(trace))
        sampling = SamplingConfig(500, 1000)
        assert (profile_fingerprint(profile_application(trace, sampling))
                == profile_fingerprint(
                    profile_application(clone, sampling)))

    def test_slice_of_columnar_trace(self):
        instrs = [Instruction(pc=4 * i, op=MacroOp.LOAD, addr=64 * i)
                  for i in range(20)]
        trace = Trace(instrs)
        trace.columns()
        window = trace[5:15]
        assert len(window) == 10
        assert list(window) == instrs[5:15]
        clone = pickle.loads(pickle.dumps(trace))
        assert list(clone[5:15]) == instrs[5:15]


class TestColdMissWindowFraction:
    def test_occupied_window_fraction_nearest_key(self):
        from repro.profiler.memory import ColdMissProfile

        profile = ColdMissProfile()
        profile.per_window[(64, 128)] = 2.0
        profile.per_window[(32, 128)] = 3.0
        profile.window_fraction[(64, 128)] = 0.25
        profile.window_fraction[(32, 128)] = 0.5
        # Exact and nearest lookups follow the per_window rule.
        assert profile.occupied_window_fraction(128, 64) == 0.25
        assert profile.occupied_window_fraction(100, 64) == 0.25
        assert profile.occupied_window_fraction(128, 40) == 0.5
        # Line size dominates the distance, as for cold misses.
        assert (profile.occupied_window_fraction(1024, 33)
                == profile.window_fraction[(32, 128)])

    def test_empty_profile_returns_zero(self):
        from repro.profiler.memory import ColdMissProfile

        profile = ColdMissProfile()
        assert profile.occupied_window_fraction(128) == 0.0

    def test_profiled_fraction_consistent_with_lookup(self):
        instrs = [Instruction(pc=0, op=MacroOp.LOAD, addr=64 * i)
                  for i in range(64)]
        profile = profile_cold_misses(instrs, rob_grid=(32,),
                                      line_sizes=(64,))
        assert (profile.occupied_window_fraction(32, 64)
                == profile.window_fraction[(64, 32)])
