"""Profiler tests: sampling, mix, application profile assembly."""

import pytest

from repro.isa import Instruction, MacroOp, UopKind
from repro.profiler import (
    SamplingConfig,
    iter_micro_traces,
    profile_application,
    profile_mix,
)
from repro.profiler.mix import UopMix
from repro.workloads import generate_trace, make_workload


class TestSamplingConfig:
    def test_sample_rate(self):
        config = SamplingConfig(1000, 10_000)
        assert config.sample_rate == pytest.approx(0.1)

    def test_full_profiling(self):
        config = SamplingConfig.full(500)
        assert config.sample_rate == 1.0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SamplingConfig(1000, 500)
        with pytest.raises(ValueError):
            SamplingConfig(0, 100)

    def test_micro_trace_boundaries(self, gcc_trace):
        config = SamplingConfig(1000, 5000)
        pieces = list(iter_micro_traces(gcc_trace.instructions, config))
        assert [start for start, _ in pieces] == list(
            range(0, len(gcc_trace), 5000)
        )
        for start, micro in pieces:
            assert len(micro) <= 1000


class TestMixProfiling:
    def test_counts_uops(self):
        stream = [
            Instruction(pc=0, op=MacroOp.INT_ALU_LOAD, dst=1, addr=0),
            Instruction(pc=4, op=MacroOp.STORE, src1=1, addr=64),
        ]
        mix = profile_mix(stream)
        assert mix.num_instructions == 2
        assert mix.num_uops == 3
        assert mix.counts[UopKind.LOAD] == 1
        assert mix.counts[UopKind.STORE] == 1

    def test_fractions_sum_to_one(self, gcc_trace):
        mix = profile_mix(gcc_trace)
        assert sum(mix.fractions().values()) == pytest.approx(1.0)

    def test_average_latency_weighted(self):
        mix = UopMix()
        mix.counts = {UopKind.INT_ALU: 50, UopKind.FP_MUL: 50}
        mix.num_uops = 100
        latency = mix.average_latency({UopKind.INT_ALU: 1,
                                       UopKind.FP_MUL: 5})
        assert latency == pytest.approx(3.0)

    def test_merge(self):
        a = profile_mix([Instruction(pc=0, op=MacroOp.LOAD, dst=1, addr=0)])
        b = profile_mix([Instruction(pc=4, op=MacroOp.BRANCH)])
        a.merge(b)
        assert a.num_instructions == 2
        assert a.counts[UopKind.BRANCH] == 1

    def test_sampled_mix_error_small(self, gcc_trace):
        # Thesis Fig 5.2 / Eq 5.1: sampled instruction mix is within a
        # couple percent of the full mix per category.
        full = profile_mix(gcc_trace)
        sampled = UopMix()
        for _, micro in iter_micro_traces(
            gcc_trace.instructions, SamplingConfig(1000, 5000)
        ):
            sampled.merge(profile_mix(micro))
        for kind in full.counts:
            error = abs(sampled.fraction(kind) - full.fraction(kind))
            assert error < 0.05, kind


class TestApplicationProfile:
    def test_micro_trace_count(self, gcc_profile):
        assert len(gcc_profile.micro_traces) == 4  # 20k / 5k windows

    def test_sample_fraction(self, gcc_profile):
        assert gcc_profile.sample_fraction == pytest.approx(0.2, abs=0.01)

    def test_statstack_cached(self, gcc_profile):
        assert gcc_profile.statstack() is gcc_profile.statstack()

    def test_aggregate_mix_reasonable(self, gcc_profile):
        assert gcc_profile.mix.load_fraction > 0.1
        assert gcc_profile.mix.branch_fraction > 0.05

    def test_chains_profiled_on_grid(self, gcc_profile):
        assert gcc_profile.chains.cp.at(128) >= 1.0
        assert gcc_profile.chains.ap.at(128) >= 1.0

    def test_micro_traces_sorted_and_attributed(self, gcc_profile):
        starts = [mt.start for mt in gcc_profile.micro_traces]
        assert starts == sorted(starts)
        total_attributed = sum(
            sum(mt.load_reuse.values()) + mt.cold_loads
            for mt in gcc_profile.micro_traces
        )
        assert total_attributed > 0

    def test_per_pc_reuse_attributed(self, libquantum_profile):
        micro = libquantum_profile.micro_traces[1]
        assert micro.load_reuse_by_pc or micro.cold_by_pc

    def test_instruction_reuse_covers_all_instructions(self, gcc_profile,
                                                       gcc_trace):
        assert gcc_profile.instruction_reuse.load_accesses == len(gcc_trace)

    def test_full_sampling_covers_everything(self):
        trace = generate_trace(make_workload("gamess"),
                               max_instructions=4000)
        profile = profile_application(trace, SamplingConfig.full(1000))
        assert profile.sample_fraction == pytest.approx(1.0)
        assert profile.mix.num_instructions == len(trace)
