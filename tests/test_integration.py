"""End-to-end integration: profile -> model vs cycle-level simulation.

These tests assert the qualitative claims of the paper on a subset of
workloads at test-sized traces: single-configuration accuracy in a usable
band, preserved workload ordering, and sane CPI stacks on both sides.
"""

import pytest

from repro.core import AnalyticalModel, nehalem
from repro.profiler import SamplingConfig, profile_application
from repro.simulator import simulate
from repro.workloads import generate_trace, make_workload

WORKLOADS = ["gcc", "mcf", "libquantum", "gamess", "milc", "omnetpp"]
LENGTH = 20_000
SAMPLING = SamplingConfig(1000, 5000)


@pytest.fixture(scope="module")
def evaluations():
    model = AnalyticalModel()
    rows = {}
    for name in WORKLOADS:
        trace = generate_trace(make_workload(name), max_instructions=LENGTH)
        sim = simulate(trace, nehalem())
        profile = profile_application(trace, SAMPLING)
        prediction = model.predict(profile, nehalem())
        rows[name] = (sim, prediction)
    return rows


class TestAbsoluteAccuracy:
    def test_each_workload_within_band(self, evaluations):
        for name, (sim, prediction) in evaluations.items():
            error = abs(prediction.cpi - sim.cpi) / sim.cpi
            # Loose band: short traces + sparse sampling alias phase
            # boundaries (the thesis' own sampling-error discussion).
            assert error < 0.70, f"{name}: {error:.1%}"

    def test_mean_error_in_paper_ballpark(self, evaluations):
        errors = [
            abs(pred.cpi - sim.cpi) / sim.cpi
            for sim, pred in evaluations.values()
        ]
        assert sum(errors) / len(errors) < 0.30

    def test_memory_bound_ranked_correctly(self, evaluations):
        # Relative accuracy: mcf/omnetpp must be predicted much slower
        # than gamess, as simulation says.
        sim_mcf, pred_mcf = evaluations["mcf"]
        sim_gamess, pred_gamess = evaluations["gamess"]
        assert sim_mcf.cpi > sim_gamess.cpi
        assert pred_mcf.cpi > pred_gamess.cpi

    def test_workload_ordering_preserved(self, evaluations):
        # Spearman-style check: the model's CPI ordering must correlate
        # with simulation (relative accuracy, the paper's key property).
        names = list(evaluations)
        sim_rank = sorted(names, key=lambda n: evaluations[n][0].cpi)
        model_rank = sorted(names, key=lambda n: evaluations[n][1].cpi)
        # Count pairwise agreements.
        agree = 0
        total = 0
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                a, b = names[i], names[j]
                sim_order = evaluations[a][0].cpi < evaluations[b][0].cpi
                model_order = evaluations[a][1].cpi < evaluations[b][1].cpi
                agree += sim_order == model_order
                total += 1
        assert agree / total > 0.8


class TestCpiStacks:
    def test_dram_component_agreement(self, evaluations):
        # Memory-bound workloads: both sides put the majority of cycles
        # in the DRAM component (Fig 6.1's shape).
        for name in ("mcf", "omnetpp"):
            sim, prediction = evaluations[name]
            sim_stack = sim.cpi_stack()
            model_stack = prediction.cpi_stack()
            assert sim_stack["dram"] > 0.5 * sim.cpi
            assert model_stack["dram"] > 0.5 * prediction.cpi

    def test_compute_bound_base_dominates(self, evaluations):
        sim, prediction = evaluations["gamess"]
        assert sim.cpi_stack()["base"] > 0.25 * sim.cpi
        assert prediction.cpi_stack()["base"] > 0.25 * prediction.cpi


class TestPowerIntegration:
    def test_power_positive_and_bounded(self, evaluations):
        model = AnalyticalModel()
        for name in ("gcc", "mcf"):
            trace = generate_trace(make_workload(name),
                                   max_instructions=LENGTH)
            profile = profile_application(trace, SAMPLING)
            result = model.predict(profile, nehalem())
            assert 1.0 < result.power_watts < 60.0

    def test_memory_bound_lower_core_power(self):
        # A stalled core burns less dynamic power than a busy one.
        model = AnalyticalModel()
        busy = profile_application(
            generate_trace(make_workload("gamess"),
                           max_instructions=LENGTH), SAMPLING
        )
        stalled = profile_application(
            generate_trace(make_workload("mcf"),
                           max_instructions=LENGTH), SAMPLING
        )
        busy_result = model.predict(busy, nehalem())
        stalled_result = model.predict(stalled, nehalem())
        assert busy_result.power.dynamic_total > (
            stalled_result.power.dynamic_total
        )
