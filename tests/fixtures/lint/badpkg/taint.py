"""Taint fixture, sink side: wall clock reaches a fingerprint.

``canonical_fingerprint`` matches the default sink patterns; the clock
read lives two call-graph edges away, in another module, so a finding
here proves cross-module source -> sink propagation.
"""

from badpkg.stamp import wall_stamp


def _payload():
    """Intermediate hop between the sink and the source."""
    return {"stamp": wall_stamp()}


def canonical_fingerprint():
    """The sink: a fingerprint that silently absorbs the clock."""
    return sorted(_payload().items())
