"""Taint fixture, source side: a helper that reads the wall clock."""

import time


def wall_stamp():
    """A nondeterministic value (the taint source)."""
    return time.time()
