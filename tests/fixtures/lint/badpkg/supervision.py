"""Supervision-exceptions fixture: blanket handlers in a supervisor.

Only flagged when the rule's ``supervision_modules`` option names this
module -- the shipped default scopes the rule to the real fault layer.
"""


def retry_blindly(task):
    """Swallows everything: the exact anti-pattern the rule exists for."""
    try:
        return task()
    except:  # noqa: E722 -- deliberately bare for the fixture
        return None


def retry_exception(task):
    """Catches Exception: still blanket, still flagged."""
    try:
        return task()
    except Exception:
        return None


def retry_tuple(task):
    """Hides BaseException inside a tuple: flagged all the same."""
    try:
        return task()
    except (ValueError, BaseException):
        return None


def retry_named(task):
    """Names concrete failure classes: the compliant shape."""
    try:
        return task()
    except (OSError, TimeoutError):
        return None
