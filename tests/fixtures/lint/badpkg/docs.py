def shout(text):
    return text.upper()


class Megaphone:
    def amplify(self, text):
        return shout(text)
