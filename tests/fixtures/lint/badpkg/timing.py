"""Raw-timing fixture: clock reads outside the telemetry layer."""

import time
from time import perf_counter


def elapsed(work):
    """Times work with raw clocks instead of ``obs.span``."""
    started = perf_counter()
    work()
    return time.monotonic() - started
