"""Worker-shipping fixture: dispatched callables touch shared state."""

_RESULTS = []


def _accumulate(task):
    """Mutates module-level state -- a race once shipped to workers."""
    _RESULTS.append(task)
    return task


def run(pool, tasks):
    """Ships the mutating function through a pool."""
    return list(pool.imap(_accumulate, tasks))


def run_lambda(pool, tasks):
    """Ships a lambda, which cannot pickle and hides its closure."""
    return list(pool.imap(lambda task: task + 1, tasks))
