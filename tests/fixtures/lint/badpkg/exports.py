"""Exports fixture: ``__all__`` drifts from the module's bindings."""

__all__ = ["present", "missing_name"]


def present():
    """Exported and defined: fine."""
    return 1


def unexported():
    """Public but absent from ``__all__``: flagged."""
    return 2
