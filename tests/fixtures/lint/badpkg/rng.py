"""Seeded-RNG fixture: seedless and entropy-backed constructions."""

import random


def fresh_rng():
    """Unseeded ``random.Random`` -- different streams every run."""
    return random.Random()


def entropy_rng():
    """``SystemRandom`` can never reproduce."""
    return random.SystemRandom()


def good_rng(seed):
    """Seeded construction: the compliant form, must not be flagged."""
    return random.Random(seed)
