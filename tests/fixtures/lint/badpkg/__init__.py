"""Deliberately broken fixture package: each module violates one rule.

Never imported -- only parsed by the static-analysis tests, which
assert that every rule fires on its module here and stays quiet on
``cleanpkg``.
"""
