"""async-safety fixture: a coroutine reaching blocking calls.

``handle`` blocks the event loop three ways, two of them hidden behind
a helper chain: a direct ``time.sleep``, a raw ``open`` write, and a
worker-pool ``imap`` dispatch.
"""

import time


def _flush(path):
    """Blocking file write (raw open)."""
    with open(path, "w") as handle:
        handle.write("x")


def _work(path):
    """Blocking helper: sleeps, then writes."""
    time.sleep(0.1)
    _flush(path)


async def handle(path, pool):
    """A coroutine that blocks the loop through its helpers."""
    _work(path)
    return list(pool.imap(_flush, [path]))
