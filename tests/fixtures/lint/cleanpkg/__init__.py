"""Compliant fixture package: every rule must stay quiet here."""
