"""Event-loop-safe service idiom: blocking work rides the executor.

The compliant counterpart to ``badpkg.asyncblock``: the coroutine only
*references* the blocking helper, handing it to
``loop.run_in_executor`` -- a function argument is not a call edge, so
the async-safety walk (correctly) sees nothing to flag.
"""

import asyncio

__all__ = ["fetch"]


def _blocking_read(path):
    """Blocking file read, only ever run on an executor thread."""
    with open(path) as handle:
        return handle.read()


async def fetch(path):
    """Read a file without ever blocking the event loop."""
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, _blocking_read, path)
