"""A module that honors every contract the rules enforce.

Seeded RNG, sorted directory listings feeding the fingerprint, a pure
module-level function shipped to the pool, a complete ``__all__``, and
no clock reads: the negative control for the whole rule catalog.
"""

import os
import random

__all__ = ["canonical_fingerprint", "draw", "run"]

_SCALE = 3


def _listing(path):
    """Deterministic directory contents (sorted at the source)."""
    return sorted(os.listdir(path))


def canonical_fingerprint(path):
    """A fingerprint fed only by deterministic inputs."""
    return tuple(_listing(path))


def draw(seed):
    """A reproducible draw from an explicitly seeded generator."""
    return random.Random(seed).random()


def _scale(task):
    """Pure worker: reads a module constant, mutates nothing."""
    return task * _SCALE


def run(pool, tasks):
    """Ships the pure function -- a compliant dispatch site."""
    return list(pool.imap(_scale, tasks))
