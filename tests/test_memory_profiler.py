"""Memory distribution profiling tests (thesis §4.4-4.5, Figs 4.5-4.7)."""

import pytest

from repro.isa import Instruction, MacroOp
from repro.profiler.memory import (
    StaticLoadProfile,
    classify_strides,
    profile_cold_misses,
    profile_micro_trace_memory,
)


def load(pc, dst, addr, src=-1):
    return Instruction(pc=pc, op=MacroOp.LOAD, dst=dst, src1=src, addr=addr)


class TestLoadDependenceDistribution:
    def test_fig_4_5_distribution(self):
        # Thesis Fig 4.5: 7 loads; L1,L5 head chains (l=1); L2,L3,L6 are
        # second (l=2); L4,L7 third (l=3) -> f = [2/7, 3/7, 2/7].
        stream = [
            load(0x10, dst=1, addr=0x0),            # L1 (l=1)
            load(0x14, dst=2, addr=0x40, src=1),     # L2 (l=2)
            load(0x18, dst=3, addr=0x80, src=1),     # L3 (l=2)
            load(0x1c, dst=4, addr=0xc0, src=2),     # L4 (l=3)
            load(0x20, dst=5, addr=0x100),           # L5 (l=1)
            load(0x24, dst=6, addr=0x140, src=5),    # L6 (l=2)
            load(0x28, dst=7, addr=0x180, src=6),    # L7 (l=3)
        ]
        profile = profile_micro_trace_memory(stream)
        distribution = profile.memory_distribution = (
            profile.load_dependence_distribution()
        )
        assert distribution[1] == pytest.approx(2 / 7)
        assert distribution[2] == pytest.approx(3 / 7)
        assert distribution[3] == pytest.approx(2 / 7)

    def test_independent_fraction(self):
        stream = [load(0x10 + 4 * i, dst=i + 1, addr=64 * i)
                  for i in range(5)]
        profile = profile_micro_trace_memory(stream)
        assert profile.independent_load_fraction() == pytest.approx(1.0)

    def test_chase_depth_accumulates(self):
        stream = [load(0x10, dst=1, addr=64 * i, src=1) for i in range(10)]
        profile = profile_micro_trace_memory(stream)
        static = profile.static_loads[0x10]
        assert static.mean_depth == pytest.approx(5.5)  # mean of 1..10

    def test_alu_links_dependence_chain(self):
        # load -> alu -> load: the second load is l=2 through the ALU.
        stream = [
            load(0x10, dst=1, addr=0),
            Instruction(pc=0x14, op=MacroOp.INT_ALU, dst=2, src1=1),
            load(0x18, dst=3, addr=64, src=2),
        ]
        profile = profile_micro_trace_memory(stream)
        assert profile.load_dependence[2] == 1


class TestStrideClassification:
    def make_load(self, strides_seen, occurrences=None):
        profile = StaticLoadProfile(pc=0x40, first_position=0)
        profile.positions = list(range(len(strides_seen) + 1))
        for stride in strides_seen:
            profile.strides[stride] += 1
        return profile

    def test_single_occurrence_is_unique(self):
        profile = StaticLoadProfile(pc=0x40, first_position=0)
        profile.positions = [3]
        category, strides = classify_strides(profile)
        assert category == "UNIQUE"

    def test_pure_stride(self):
        category, strides = classify_strides(self.make_load([8] * 10))
        assert category == "STRIDE"
        assert strides == [8]

    def test_fig_4_6_load_b_two_strides(self):
        # Thesis Fig 4.6 load B: addresses 48,52,56,64,72 -> strides
        # 4,4,8,8: each 50%, cumulative 100% >= 70% -> two-strided.
        category, strides = classify_strides(self.make_load([4, 4, 8, 8]))
        assert category == "FILTER-2"
        assert set(strides) == {4, 8}

    def test_dominant_stride_with_noise(self):
        # 70% one stride passes the 60% single-stride cutoff.
        seen = [8] * 7 + [100, 200, 300]
        category, strides = classify_strides(self.make_load(seen))
        assert category == "FILTER-1"
        assert strides == [8]

    def test_random_strides(self):
        seen = list(range(1, 20))  # 19 distinct strides, all ~5%
        category, _ = classify_strides(self.make_load(seen))
        assert category == "RANDOM"

    def test_micro_trace_categories(self, libquantum_trace):
        profile = profile_micro_trace_memory(
            libquantum_trace.instructions[:1000]
        )
        categories = profile.stride_categories()
        # Streaming loads must classify as strided.
        strided = sum(
            count for name, count in categories.items()
            if name.startswith("STRIDE") or name.startswith("FILTER")
        )
        assert strided >= 2


class TestLoadSpacing:
    def test_positions_and_gaps(self):
        stream = []
        for i in range(4):
            stream.append(load(0x40, dst=1, addr=64 * i))
            stream.extend(
                Instruction(pc=0x50 + 4 * j, op=MacroOp.INT_ALU, dst=2)
                for j in range(7)
            )
        profile = profile_micro_trace_memory(stream)
        static = profile.static_loads[0x40]
        assert static.first_position == 0
        assert static.mean_gap == pytest.approx(8.0)

    def test_local_reuse_recorded(self):
        stream = [
            load(0x40, dst=1, addr=0),
            load(0x44, dst=2, addr=4096),
            load(0x40, dst=1, addr=0),  # same line, RD = 1
        ]
        profile = profile_micro_trace_memory(stream)
        assert profile.static_loads[0x40].local_reuse == [1]


class TestColdMissProfile:
    def test_unique_stream_all_cold(self):
        stream = [load(0x40 + 4 * i, dst=1, addr=64 * i) for i in range(64)]
        profile = profile_cold_misses(stream, rob_grid=(32,),
                                      line_sizes=(64,))
        assert profile.total[64] == 64
        assert profile.per_window[(64, 32)] == pytest.approx(32.0)

    def test_repeated_stream_one_cold(self):
        stream = [load(0x40, dst=1, addr=0) for _ in range(100)]
        profile = profile_cold_misses(stream, rob_grid=(32,),
                                      line_sizes=(64,))
        assert profile.total[64] == 1

    def test_line_size_affects_cold_count(self):
        stream = [load(0x40, dst=1, addr=32 * i) for i in range(64)]
        profile = profile_cold_misses(stream, rob_grid=(32,),
                                      line_sizes=(32, 128))
        assert profile.total[32] == 64
        assert profile.total[128] == 16

    def test_occupied_window_average(self):
        # Cold misses clustered in the first window only.
        stream = [load(0x40 + 4 * i, dst=1, addr=64 * i) for i in range(8)]
        stream += [load(0x40, dst=1, addr=0) for _ in range(56)]
        profile = profile_cold_misses(stream, rob_grid=(32,),
                                      line_sizes=(64,))
        assert profile.per_window[(64, 32)] == pytest.approx(8.0)
        assert profile.window_fraction[(64, 32)] == pytest.approx(0.5)

    def test_nearest_lookup(self):
        stream = [load(0x40 + 4 * i, dst=1, addr=64 * i) for i in range(32)]
        profile = profile_cold_misses(stream, rob_grid=(32, 128),
                                      line_sizes=(64,))
        assert profile.cold_misses_per_occupied_window(100, 64) == (
            profile.per_window[(64, 128)]
        )
