"""Shared fixtures: small traces and profiles, cached per session."""

from __future__ import annotations

import pytest

from repro.core import nehalem
from repro.profiler import SamplingConfig, profile_application
from repro.workloads import generate_trace, make_workload

TRACE_LENGTH = 20_000
SAMPLING = SamplingConfig(micro_trace_length=1000, window_length=5000)


@pytest.fixture(scope="session")
def gcc_trace():
    return generate_trace(make_workload("gcc"), max_instructions=TRACE_LENGTH)


@pytest.fixture(scope="session")
def mcf_trace():
    return generate_trace(make_workload("mcf"), max_instructions=TRACE_LENGTH)


@pytest.fixture(scope="session")
def libquantum_trace():
    return generate_trace(
        make_workload("libquantum"), max_instructions=TRACE_LENGTH
    )


@pytest.fixture(scope="session")
def gamess_trace():
    return generate_trace(
        make_workload("gamess"), max_instructions=TRACE_LENGTH
    )


@pytest.fixture(scope="session")
def gcc_profile(gcc_trace):
    return profile_application(gcc_trace, SAMPLING)


@pytest.fixture(scope="session")
def mcf_profile(mcf_trace):
    return profile_application(mcf_trace, SAMPLING)


@pytest.fixture(scope="session")
def libquantum_profile(libquantum_trace):
    return profile_application(libquantum_trace, SAMPLING)


@pytest.fixture(scope="session")
def gamess_profile(gamess_trace):
    return profile_application(gamess_trace, SAMPLING)


@pytest.fixture(scope="session")
def reference_config():
    return nehalem()
