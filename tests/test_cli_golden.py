"""Golden tests: the Session-routed CLI is bitwise-identical to the
historical hand-wired subcommand implementations.

Each ``legacy_*`` function below reproduces the pre-API ``cmd_*`` logic
verbatim (direct model / engine / campaign calls and the exact print
statements).  The tests run both paths and compare the full text --
and, where a subcommand writes JSON artifacts, compare those against
``Session.run``'s payload byte for byte.
"""

import json

import pytest

from repro.api import ExperimentSpec, Session
from repro.cli import main


@pytest.fixture(scope="module")
def gcc_profile_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("profiles") / "gcc.profile")
    assert main(["profile", "gcc", "-o", path,
                 "--instructions", "4000"]) == 0
    return path


@pytest.fixture(scope="module")
def mcf_profile_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("profiles") / "mcf.profile")
    assert main(["profile", "mcf", "-o", path,
                 "--instructions", "4000"]) == 0
    return path


# ----------------------------------------------------------------------
# Legacy reference implementations (the pre-API cmd_* bodies)
# ----------------------------------------------------------------------


def legacy_predict(path, mlp_model="stride"):
    from repro.core import AnalyticalModel, nehalem
    from repro.profiler.serialization import load_profile

    profile = load_profile(path)
    config = nehalem()
    model = AnalyticalModel(mlp_model=mlp_model)
    result = model.predict(profile, config)
    print(f"workload:  {profile.name}")
    print(f"config:    {config.name}")
    print(f"CPI:       {result.cpi:.3f}   (IPC {1 / result.cpi:.3f})")
    print(f"time:      {result.seconds * 1e3:.3f} ms")
    print(f"power:     {result.power_watts:.2f} W "
          f"(static {result.power.static_total:.2f} W)")
    print(f"energy:    {result.energy_joules * 1e3:.3f} mJ   "
          f"EDP {result.edp:.3e}   ED2P {result.ed2p:.3e}")
    print("CPI stack: " + "  ".join(
        f"{key}={value:.3f}" for key, value in result.cpi_stack().items()
    ))


def legacy_sweep(paths, limit=None, objective=None):
    from repro.explore.dse import best_average_config
    from repro.explore.engine import SweepEngine
    from repro.explore.pareto import StreamingParetoFront
    from repro.explore.search import get_objective
    from repro.explore.space import DesignSpace
    from repro.profiler.serialization import load_profile

    profiles = [load_profile(path) for path in paths]
    configs = DesignSpace.default().configs()
    if limit is not None:
        configs = configs[:limit]
    engine = SweepEngine(workers=1, store=None)
    frontiers = {p.name: StreamingParetoFront() for p in profiles}
    results = {p.name: [] for p in profiles}
    for point in engine.iter_sweep(profiles, configs):
        results[point.workload].append(point)
        frontiers[point.workload].add_point(point)
    for profile in profiles:
        points = results[profile.name]
        frontier = frontiers[profile.name].frontier()
        print(f"{profile.name}: {len(points)} designs evaluated; "
              f"{len(frontier)} Pareto-optimal:")
        for _, _, point in frontier:
            print(f"  {point.config.name:<32s} "
                  f"{point.seconds * 1e6:9.1f} us "
                  f"{point.power_watts:7.2f} W  CPI {point.cpi:5.2f}")
    if not configs:
        return
    if objective:
        objective = get_objective(objective)
        best = best_average_config(results, metric=objective.metric)
        print(f"best average config ({objective.name}): {best}")
    elif len(profiles) > 1:
        print(f"best average config: {best_average_config(results)}")


def legacy_search(path, optimizer, budget, seed, objective="edp"):
    from repro.explore.engine import SweepEngine
    from repro.explore.search import (
        SearchProblem,
        get_objective,
        make_optimizer,
    )
    from repro.explore.space import DesignSpace
    from repro.profiler.serialization import load_profile

    agent = make_optimizer(optimizer, seed=seed)
    profiles = [load_profile(path)]
    space = DesignSpace.default()
    objective = get_objective(objective, power_cap_watts=None)
    engine = SweepEngine(workers=1, store=None)
    problem = SearchProblem(profiles, space, objective, engine=engine)
    trajectory = agent.search(problem, budget)
    size = space.size()
    evaluated = len(trajectory)
    workloads = ", ".join(p.name for p in profiles)
    print(f"space:       {space.name} ({size} valid configurations)")
    print(f"workloads:   {workloads}")
    print(f"optimizer:   {agent.name} (seed {seed})")
    print(f"objective:   {objective.name} (minimized, averaged over "
          f"{len(profiles)} workload(s))")
    print(f"evaluated:   {evaluated} configs "
          f"({100.0 * evaluated / size:.1f}% of the space, budget "
          f"{budget}) in {trajectory.wall_seconds:.2f} s")
    best = trajectory.best
    point_text = " ".join(f"{k}={v}" for k, v in best.point.items())
    print(f"best {objective.name}: {best.fitness:.6e} "
          f"(found at evaluation {best.index + 1})")
    print(f"best point:  {point_text}")
    print(f"best config: {space.config(best.point).name}")
    improvements = []
    best_so_far = None
    for evaluation in trajectory.evaluations:
        if best_so_far is None or evaluation.fitness < best_so_far:
            best_so_far = evaluation.fitness
            improvements.append(evaluation)
    shown = improvements[-8:]
    print(f"best-so-far curve ({len(improvements)} improvements, "
          f"last {len(shown)} shown):")
    for evaluation in shown:
        print(f"  eval {evaluation.index + 1:>5d}: "
              f"{evaluation.fitness:.6e}")
    return trajectory


def legacy_validate(workloads, limit, instructions, train_fraction):
    from repro.explore.space import DesignSpace
    from repro.explore.validate import ValidationCampaign
    from repro.profiler import SamplingConfig

    space = DesignSpace.default()
    configs = space.configs()[:limit]
    campaign = ValidationCampaign.from_workloads(
        workloads,
        configs,
        instructions=instructions,
        sampling=SamplingConfig(1000, 5000),
        trace_seed=42,
        model_workers=1,
        sim_workers=1,
        train_fraction=train_fraction,
        seed=0,
        space_name=space.name,
    )
    report = campaign.run()
    print("\n".join(report.summary_lines()))
    return report


def legacy_dvfs(path, frequencies=None, power_cap=None):
    from repro.core import nehalem
    from repro.core.machine import DVFSPoint, dvfs_vdd
    from repro.explore.dvfs import (
        best_under_power_cap,
        config_at,
        explore_dvfs,
        optimal_ed2p,
    )
    from repro.profiler.serialization import load_profile

    profile = load_profile(path)
    base = nehalem()
    points = None
    if frequencies:
        points = [DVFSPoint(f, dvfs_vdd(f)) for f in frequencies]
    results = explore_dvfs(profile, base, points=points, engine=None)
    best = optimal_ed2p(results)
    print(f"workload: {profile.name}   base: {base.name}")
    for result in results:
        marker = "   <- ED2P optimum" if result is best else ""
        print(f"  {result.point.frequency_ghz:5.2f} GHz "
              f"@{result.point.vdd:.2f} V  "
              f"{result.seconds * 1e3:8.3f} ms  "
              f"{result.power_watts:6.2f} W  "
              f"{result.energy_joules * 1e3:8.3f} mJ  "
              f"ED2P {result.ed2p:.3e}{marker}")
    if power_cap is not None:
        candidates = [(config_at(base, result.point), result.result)
                      for result in results]
        capped = best_under_power_cap(candidates, power_cap)
        if capped is None:
            print(f"no operating point fits {power_cap:.1f} W")
        else:
            config, result = capped
            print(f"fastest under {power_cap:.1f} W: {config.name} "
                  f"({result.seconds * 1e3:.3f} ms, "
                  f"{result.power_watts:.2f} W)")


# ----------------------------------------------------------------------
# Golden: new CLI text == legacy text
# ----------------------------------------------------------------------


class TestGoldenText:
    def test_predict(self, gcc_profile_path, capsys):
        legacy_predict(gcc_profile_path)
        expected = capsys.readouterr().out
        assert main(["predict", gcc_profile_path]) == 0
        assert capsys.readouterr().out == expected

    def test_predict_mlp_variant(self, gcc_profile_path, capsys):
        legacy_predict(gcc_profile_path, mlp_model="cold")
        expected = capsys.readouterr().out
        assert main(["predict", gcc_profile_path,
                     "--mlp-model", "cold"]) == 0
        assert capsys.readouterr().out == expected

    def test_sweep(self, gcc_profile_path, mcf_profile_path, capsys):
        legacy_sweep([gcc_profile_path, mcf_profile_path], limit=9)
        expected = capsys.readouterr().out
        assert main(["sweep", gcc_profile_path, mcf_profile_path,
                     "--limit", "9"]) == 0
        assert capsys.readouterr().out == expected

    def test_sweep_objective(self, gcc_profile_path, capsys):
        legacy_sweep([gcc_profile_path], limit=9, objective="energy")
        expected = capsys.readouterr().out
        assert main(["sweep", gcc_profile_path, "--limit", "9",
                     "--objective", "energy"]) == 0
        assert capsys.readouterr().out == expected

    def test_search(self, gcc_profile_path, capsys):
        legacy_search(gcc_profile_path, "random", budget=10, seed=3)
        expected = capsys.readouterr().out
        assert main(["search", gcc_profile_path, "--optimizer",
                     "random", "--budget", "10", "--seed", "3"]) == 0
        actual = capsys.readouterr().out

        def stable(text):
            # The "evaluated: ... in N.NN s" line carries wall-clock.
            return [line for line in text.splitlines()
                    if not line.startswith("evaluated:")]

        assert stable(actual) == stable(expected)

    def test_validate(self, capsys):
        legacy_validate(["gcc"], limit=4, instructions=3000,
                        train_fraction=0.25)
        expected = capsys.readouterr().out
        assert main(["validate", "gcc", "--limit", "4",
                     "--instructions", "3000",
                     "--train-fraction", "0.25"]) == 0
        assert capsys.readouterr().out == expected

    def test_dvfs(self, gcc_profile_path, capsys):
        legacy_dvfs(gcc_profile_path, power_cap=1000.0)
        expected = capsys.readouterr().out
        assert main(["dvfs", gcc_profile_path,
                     "--power-cap", "1000"]) == 0
        assert capsys.readouterr().out == expected

    def test_dvfs_custom_frequencies(self, gcc_profile_path, capsys):
        legacy_dvfs(gcc_profile_path, frequencies=[1.2, 2.66])
        expected = capsys.readouterr().out
        assert main(["dvfs", gcc_profile_path,
                     "--frequencies", "1.2,2.66"]) == 0
        assert capsys.readouterr().out == expected


# ----------------------------------------------------------------------
# Golden: CLI JSON artifacts == Session.run payloads
# ----------------------------------------------------------------------


def _canon(data):
    return json.dumps(data, sort_keys=True)


class TestGoldenJson:
    def test_validate_json_is_the_session_payload(self, tmp_path,
                                                  capsys):
        out = str(tmp_path / "report.json")
        args = ["validate", "gcc", "--limit", "4",
                "--instructions", "3000", "--train-fraction", "0"]
        assert main(args + ["--json", out]) == 0
        capsys.readouterr()
        cli_data = json.load(open(out))

        with Session() as session:
            payload = session.run(ExperimentSpec(
                "validate", workloads=["gcc"], limit=4,
                instructions=3000, train_fraction=0.0)).data
        assert _canon(cli_data) == _canon(payload)

    def test_search_trajectory_is_the_session_payload(
        self, tmp_path, gcc_profile_path, capsys
    ):
        out = str(tmp_path / "trajectory.json")
        assert main(["search", gcc_profile_path, "--optimizer",
                     "random", "--budget", "8", "--seed", "5",
                     "--trajectory", out]) == 0
        capsys.readouterr()
        cli_data = json.load(open(out))

        with Session() as session:
            payload = session.run(ExperimentSpec(
                "search", profiles=[gcc_profile_path],
                optimizer="random", budget=8, seed=5)).data
        trajectory = payload["trajectory"]
        cli_data.pop("wall_seconds")
        trajectory.pop("wall_seconds")
        assert _canon(cli_data) == _canon(trajectory)

    def test_profile_json_is_the_session_payload(self, tmp_path,
                                                 capsys):
        out = str(tmp_path / "profiles.json")
        store = str(tmp_path / "store")
        assert main(["profile", "gcc", "--store", store,
                     "--instructions", "3000", "--json", out]) == 0
        capsys.readouterr()
        cli_data = json.load(open(out))

        with Session() as session:
            payload = session.run(ExperimentSpec(
                "profile", workloads=["gcc"], instructions=3000,
                store=str(tmp_path / "store2"))).data
        for data in (cli_data, payload):
            data["store"] = None
            for entry in data["profiles"]:
                entry["seconds"] = 0.0
        assert _canon(cli_data) == _canon(payload)

    def test_parallel_cli_matches_serial_cli(self, gcc_profile_path,
                                             capsys):
        """--workers routes through the shared pool; output identical."""
        assert main(["sweep", gcc_profile_path, "--limit", "12"]) == 0
        serial = capsys.readouterr().out
        assert main(["sweep", gcc_profile_path, "--limit", "12",
                     "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


# ----------------------------------------------------------------------
# The `repro run` subcommand
# ----------------------------------------------------------------------


class TestRunCommand:
    def _write_spec(self, tmp_path, name, spec):
        path = str(tmp_path / name)
        spec.save(path)
        return path

    def test_run_executes_specs_and_caches(self, tmp_path, capsys):
        sweep = self._write_spec(tmp_path, "sweep.json", ExperimentSpec(
            "sweep", workloads=["gcc"], instructions=3000, limit=4))
        predict = self._write_spec(
            tmp_path, "predict.json",
            ExperimentSpec("predict", workload="gcc",
                           instructions=3000))
        runs = str(tmp_path / "runs")
        out = str(tmp_path / "results.json")
        assert main(["run", sweep, predict, "--runs", runs,
                     "--json", out]) == 0
        text = capsys.readouterr().out
        assert "ran    sweep" in text and "ran    predict" in text
        assert "2 computed, 0 from run store" in text
        results = json.load(open(out))
        assert [r["kind"] for r in results] == ["sweep", "predict"]

        # Second campaign over the same store: everything is skipped.
        assert main(["run", sweep, predict, "--runs", runs]) == 0
        text = capsys.readouterr().out
        assert "cached sweep" in text and "cached predict" in text
        assert "0 computed, 2 from run store" in text

    def test_run_without_store_recomputes(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path, "dvfs.json", ExperimentSpec(
            "dvfs", workload="gcc", instructions=3000))
        assert main(["run", spec]) == 0
        assert "1 computed, 0 from run store" in \
            capsys.readouterr().out

    def test_run_rejects_bad_spec(self, tmp_path, capsys):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"kind": "teleport", "params": {}}, handle)
        assert main(["run", path]) == 2
        assert "unknown experiment kind" in capsys.readouterr().err

    def test_run_rejects_missing_file(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_spec_equals_subcommand_output(self, tmp_path, capsys):
        """A spec file run through `repro run --json` carries the same
        payload the equivalent subcommand computes."""
        spec = ExperimentSpec("validate", workloads=["gcc"], limit=2,
                              instructions=3000, train_fraction=0.0)
        path = self._write_spec(tmp_path, "validate.json", spec)
        out = str(tmp_path / "results.json")
        assert main(["run", path, "--json", out]) == 0
        capsys.readouterr()
        run_payload = json.load(open(out))[0]["data"]

        report = str(tmp_path / "report.json")
        assert main(["validate", "gcc", "--limit", "2",
                     "--instructions", "3000", "--train-fraction", "0",
                     "--json", report]) == 0
        capsys.readouterr()
        assert _canon(json.load(open(report))) == _canon(run_payload)
