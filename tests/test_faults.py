"""Fault-tolerance tests: injection determinism, retry policy, atomic
writes, supervised pool recovery, engine/session degradation, and the
seeded chaos campaign that must match a fault-free run bitwise.

The chaos campaign test honors an externally supplied ``REPRO_FAULTS``
spec (captured at import time, before the per-test fixture clears the
environment), so the CI chaos leg parametrizes it by just exporting the
variable.
"""

import json
import os

import pytest

from repro import obs
from repro.api import Session
from repro.api.pool import WorkerPool, WorkerPoolError
from repro.core import design_space
from repro.explore.engine import SweepEngine
from repro.explore.validate import SimulationSweep
from repro.faults import (
    FaultPlan,
    FaultSpecError,
    InjectedBatchError,
    InjectedTaskError,
    InjectedWorkerCrash,
    RetryPolicy,
    atomic_write,
    decision_fraction,
    inject,
)
from tests.equivalence import assert_points_identical
from tests.test_api import _mp_available

#: The chaos leg's spec/seed, captured before the env-clearing fixture
#: runs (empty locally -- the default below is then used).
CI_CHAOS_SPEC = os.environ.get(inject.ENV_SPEC)
CI_CHAOS_SEED = os.environ.get(inject.ENV_SEED) or "1337"

DEFAULT_CHAOS_SPEC = ("crash:0.15,hang:0.08:0.05,task_error:0.15,"
                      "batch_error:0.25,corrupt_store:0.3")

SWEEP_SPEC = {"kind": "sweep",
              "params": {"workloads": ["gcc"], "limit": 6,
                         "instructions": 6000}}
VALIDATE_SPEC = {"kind": "validate",
                 "params": {"workloads": ["gcc"], "limit": 4,
                            "instructions": 6000}}

#: Wall-clock-derived (or run-dependent) result fields ignored by the
#: bitwise campaign comparisons. Worker counts are configuration echoes,
#: not results, and legitimately differ between degraded and reference
#: sessions.
_WALL_KEYS = ("seconds", "wall_seconds", "telemetry", "cached",
              "model_workers", "sim_workers", "workers")


def _strip(obj):
    """Result payload minus wall-clock fields, for bitwise comparison."""
    if isinstance(obj, dict):
        return {k: _strip(v) for k, v in obj.items()
                if k not in _WALL_KEYS}
    if isinstance(obj, list):
        return [_strip(v) for v in obj]
    return obj


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    """Each test starts (and the file ends) with no active fault plan."""
    monkeypatch.delenv(inject.ENV_SPEC, raising=False)
    monkeypatch.delenv(inject.ENV_SEED, raising=False)
    inject.refresh()
    yield
    # Drop anything the test exported before re-reading: monkeypatch
    # restores the original environment only after this teardown runs.
    os.environ.pop(inject.ENV_SPEC, None)
    os.environ.pop(inject.ENV_SEED, None)
    inject.refresh()


def _activate_env(monkeypatch, spec, seed="0"):
    """Install a fault plan the way production code does: via env."""
    monkeypatch.setenv(inject.ENV_SPEC, spec)
    monkeypatch.setenv(inject.ENV_SEED, seed)
    return inject.refresh()


# ----------------------------------------------------------------------
# Worker functions (module level so they pickle)
# ----------------------------------------------------------------------


def _scale(state, task):
    return state * task


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse("crash:0.05,hang:0.01:0.25", seed=9)
        assert plan.seed == 9
        assert plan.rule("crash").rate == 0.05
        assert plan.rule("hang").param == 0.25
        assert plan.rule("task_error") is None
        assert FaultPlan.parse(plan.spec(), seed=9) == plan

    def test_decisions_are_deterministic_and_seeded(self):
        plan = FaultPlan.parse("crash:0.5")
        decisions = [plan.decide("crash", f"k{i}") for i in range(64)]
        assert decisions == [plan.decide("crash", f"k{i}")
                             for i in range(64)]
        assert any(decisions) and not all(decisions)
        other = FaultPlan.parse("crash:0.5", seed=1)
        assert decisions != [other.decide("crash", f"k{i}")
                             for i in range(64)]

    def test_rate_bounds_are_exact(self):
        always = FaultPlan.parse("crash:1.0")
        never = FaultPlan.parse("crash:0.0")
        for i in range(32):
            assert always.decide("crash", f"k{i}")
            assert not never.decide("crash", f"k{i}")

    @pytest.mark.parametrize("spec", [
        "explode:0.5",            # unknown kind
        "crash:0.5,crash:0.1",    # duplicate
        "crash:1.5",              # rate outside [0, 1]
        "crash:lots",             # non-numeric rate
        "crash",                  # missing rate
        "hang:0.1:-2",            # negative param
        "",                       # empty
        " , ",                    # only separators
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_decision_fraction_range(self):
        fractions = [decision_fraction(0, "crash", f"k{i}")
                     for i in range(256)]
        assert all(0.0 <= f < 1.0 for f in fractions)
        assert len(set(fractions)) > 200  # spreads, not clustered


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_delays_deterministic_growing_bounded(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_factor=2.0,
                             backoff_max=0.05, jitter=0.5)
        delays = [policy.delay("t0", a) for a in range(8)]
        assert delays == [policy.delay("t0", a) for a in range(8)]
        assert all(d <= 0.05 * 1.5 for d in delays)
        assert delays[0] >= 0.01
        # Un-jittered base doubles until the cap.
        assert policy.delay("t0", 1) > policy.delay("t0", 0) * 1.0

    def test_jitter_varies_by_key(self):
        policy = RetryPolicy(jitter=1.0)
        assert policy.delay("a", 0) != policy.delay("b", 0)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"timeout": 0.0},
        {"timeout": -1.0},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
    ])
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# atomic_write
# ----------------------------------------------------------------------


class TestAtomicWrite:
    def test_success_replaces_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "store" / "entry.json"
        with atomic_write(str(path)) as handle:
            json.dump({"v": 1}, handle)
        assert json.loads(path.read_text()) == {"v": 1}
        assert sorted(os.listdir(path.parent)) == ["entry.json"]

    def test_failure_preserves_previous_content(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_write(str(path)) as handle:
                handle.write("half-written")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "old"
        assert sorted(os.listdir(tmp_path)) == ["entry.json"]

    def test_failure_with_no_previous_file_leaves_nothing(self, tmp_path):
        path = tmp_path / "entry.json"
        with pytest.raises(RuntimeError):
            with atomic_write(str(path)) as handle:
                handle.write("x")
                raise RuntimeError("crash")
        assert os.listdir(tmp_path) == []


# ----------------------------------------------------------------------
# Activation and injection sites
# ----------------------------------------------------------------------


class TestActivation:
    def test_refresh_reads_environment(self, monkeypatch):
        assert inject.current() is None
        plan = _activate_env(monkeypatch, "crash:0.5", seed="3")
        assert plan is inject.current()
        assert plan.seed == 3

    def test_refresh_caches_until_env_changes(self, monkeypatch):
        first = _activate_env(monkeypatch, "crash:0.5")
        assert inject.refresh() is first
        monkeypatch.setenv(inject.ENV_SPEC, "crash:0.25")
        second = inject.refresh()
        assert second is not first
        assert second.rule("crash").rate == 0.25

    def test_malformed_env_spec_raises(self, monkeypatch):
        monkeypatch.setenv(inject.ENV_SPEC, "bogus:0.5")
        with pytest.raises(FaultSpecError):
            inject.refresh()

    def test_activate_overrides_until_next_refresh(self):
        plan = FaultPlan.parse("task_error:1.0")
        previous = inject.activate(plan)
        try:
            assert inject.current() is plan
            with pytest.raises(InjectedTaskError):
                inject.task_site("k")
        finally:
            inject.activate(previous)
        inject.refresh()  # env is clean -> plan drops
        assert inject.current() is None

    def test_sites_are_noops_without_a_plan(self, tmp_path):
        inject.task_site("k")
        inject.batch_site("k")
        path = tmp_path / "f.json"
        path.write_text("{}")
        assert inject.store_site(str(path), "k") is False
        assert path.read_text() == "{}"

    def test_store_site_corrupts_file(self, monkeypatch, tmp_path):
        _activate_env(monkeypatch, "corrupt_store:1.0")
        path = tmp_path / "f.json"
        path.write_text("{\"good\": true}")
        assert inject.store_site(str(path), "k") is True
        with pytest.raises(ValueError):
            json.loads(path.read_text())

    def test_task_site_raises_injected_kinds(self, monkeypatch):
        _activate_env(monkeypatch, "crash:1.0")
        with pytest.raises(InjectedWorkerCrash):
            inject.task_site("k")
        _activate_env(monkeypatch, "task_error:1.0")
        with pytest.raises(InjectedTaskError):
            inject.task_site("k")
        _activate_env(monkeypatch, "batch_error:1.0")
        with pytest.raises(InjectedBatchError):
            inject.batch_site("k")


# ----------------------------------------------------------------------
# Supervised WorkerPool
# ----------------------------------------------------------------------


needs_mp = pytest.mark.skipif(not _mp_available(),
                              reason="platform cannot create processes")


class TestSupervisedPool:
    @needs_mp
    def test_supervised_matches_unsupervised(self):
        tasks = list(range(12))
        with WorkerPool(2, supervised=False) as plain:
            expected = list(plain.imap(_scale, 5, tasks))
        with WorkerPool(2) as supervised:
            got = list(supervised.imap(_scale, 5, tasks))
        assert got == expected == [5 * t for t in tasks]
        assert supervised.retries == 0
        assert supervised.restarts == 0

    @needs_mp
    def test_recovers_from_injected_chaos(self, monkeypatch):
        _activate_env(monkeypatch, "crash:0.3,task_error:0.3", seed="7")
        retry = RetryPolicy(max_attempts=8, timeout=30,
                            backoff_base=0.001, backoff_max=0.005)
        with WorkerPool(2, retry=retry, max_restarts=64) as pool:
            out = list(pool.imap(_scale, 3, list(range(20))))
        assert out == [3 * t for t in range(20)]
        assert pool.retries > 0
        assert pool.worker_crashes > 0
        assert pool.restarts > 0
        assert pool.give_ups == 0

    @needs_mp
    def test_hang_timeout_restarts_then_gives_up(self, monkeypatch):
        _activate_env(monkeypatch, "hang:1.0:10")
        retry = RetryPolicy(max_attempts=2, timeout=0.25,
                            backoff_base=0.0, backoff_max=0.0)
        pool = WorkerPool(2, retry=retry)
        with pool:
            with pytest.raises(WorkerPoolError):
                list(pool.imap(_scale, 2, [1, 2]))
            assert pool.timeouts >= 2
            assert pool.give_ups == 1
            assert not pool.parallel
            # Later stages fail eagerly while unavailable...
            with pytest.raises(WorkerPoolError):
                pool.imap(_scale, 2, [1])
            # ...until explicitly revived.
            pool.revive()
            assert pool.parallel

    @needs_mp
    def test_persistent_task_error_reraises_original(self, monkeypatch):
        _activate_env(monkeypatch, "task_error:1.0")
        retry = RetryPolicy(max_attempts=3, timeout=30,
                            backoff_base=0.0, backoff_max=0.0)
        with WorkerPool(2, retry=retry) as pool:
            with pytest.raises(InjectedTaskError):
                list(pool.imap(_scale, 2, [1]))
        assert pool.retries == 2
        assert pool.give_ups == 0  # broken task, not a broken pool

    @needs_mp
    def test_crash_exhaustion_gives_the_stage_up(self, monkeypatch):
        _activate_env(monkeypatch, "crash:1.0")
        retry = RetryPolicy(max_attempts=3, timeout=30,
                            backoff_base=0.0, backoff_max=0.0)
        pool = WorkerPool(2, retry=retry, max_restarts=10)
        with pool:
            with pytest.raises(WorkerPoolError):
                list(pool.imap(_scale, 2, [1]))
        assert pool.worker_crashes == 3
        assert pool.give_ups == 1

    def test_flush_metrics_publishes_deltas_once(self):
        pool = WorkerPool(1)
        pool.retries = 3
        pool.restarts = 1
        registry = obs.Telemetry(trace=False, metrics=True).metrics
        pool.flush_metrics(registry)
        pool.flush_metrics(registry)  # no double counting
        counters = registry.snapshot()["counters"]
        assert counters["pool.retries"] == 3
        assert counters["pool.restarts"] == 1
        pool.retries = 5
        pool.flush_metrics(registry)
        assert registry.snapshot()["counters"]["pool.retries"] == 5


# ----------------------------------------------------------------------
# Engine / simulation degradation
# ----------------------------------------------------------------------


class _GiveUpPool:
    """Duck-typed WorkerPool: in-process, gives up after N batches."""

    def __init__(self, good_batches):
        self.good_batches = good_batches

    def imap(self, func, state, tasks):
        def stream():
            for index, task in enumerate(tasks):
                if index >= self.good_batches:
                    raise WorkerPoolError("injected give-up")
                yield func(state, task)
        return stream()


class TestEngineDegradation:
    @pytest.mark.parametrize("good_batches", [0, 1, 2])
    def test_midstream_give_up_finishes_serially(self, gcc_profile,
                                                 good_batches):
        configs = design_space({"dispatch_width": (2, 4),
                                "rob_size": (32, 64)})
        serial = list(SweepEngine(workers=1).iter_sweep(
            [gcc_profile], configs))
        degraded = list(SweepEngine(
            workers=2, pool=_GiveUpPool(good_batches),
        ).iter_sweep([gcc_profile], configs))
        assert_points_identical(serial, degraded)

    def test_batch_error_degrades_to_scalar(self, gcc_profile,
                                            monkeypatch):
        configs = design_space({"dispatch_width": (2, 4)})
        reference = list(SweepEngine(
            workers=1, backend="scalar").iter_sweep(
                [gcc_profile], configs))
        _activate_env(monkeypatch, "batch_error:1.0")
        telemetry = obs.Telemetry(trace=False, metrics=True)
        with obs.activate(telemetry):
            degraded = list(SweepEngine(
                workers=1, backend="batch").iter_sweep(
                    [gcc_profile], configs))
        assert_points_identical(reference, degraded)
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["engine.backend_fallbacks"] > 0
        assert counters["faults.injected.batch_error"] > 0

    def test_sim_sweep_midstream_give_up(self, gcc_trace):
        configs = design_space({"dispatch_width": (2, 4)})
        serial = list(SimulationSweep(workers=1).iter_sweep(
            [gcc_trace], configs))
        degraded = list(SimulationSweep(
            workers=2, pool=_GiveUpPool(1),
        ).iter_sweep([gcc_trace], configs))
        assert len(serial) == len(degraded) == len(configs)
        for a, b in zip(serial, degraded):
            assert a.workload == b.workload
            assert a.config.name == b.config.name
            assert a.result == b.result
            assert a.power == b.power


# ----------------------------------------------------------------------
# Session-level degradation, keep-going and checkpoint/resume
# ----------------------------------------------------------------------


class TestSessionRobustness:
    def test_unavailable_pool_falls_back_serially(self):
        with Session(workers=1) as reference:
            ref = [reference.run(SWEEP_SPEC).data,
                   reference.run(VALIDATE_SPEC).data]
        with Session(workers=2) as degraded:
            degraded.pool._unavailable = True
            got = [degraded.run(SWEEP_SPEC).data,
                   degraded.run(VALIDATE_SPEC).data]
        assert _strip(ref) == _strip(got)

    def test_run_many_keep_going_records_and_continues(self, tmp_path):
        bad = {"kind": "predict",
               "params": {"workload": "definitely-not-a-workload"}}
        store = str(tmp_path / "runs")
        with Session(run_store=store) as session:
            results = session.run_many([SWEEP_SPEC, bad, VALIDATE_SPEC],
                                       keep_going=True)
            assert results[0] is not None and results[2] is not None
            assert results[1] is None
            assert len(session.failures) == 1
            spec, exc = session.failures[0]
            assert spec["kind"] == "predict"
            assert isinstance(exc, KeyError)
        # The campaign checkpointed: a fresh session re-running the
        # same specs resumes from the run store.
        with Session(run_store=store) as resumed:
            again = resumed.run_many([SWEEP_SPEC, VALIDATE_SPEC])
        assert all(r.cached for r in again)

    def test_run_many_default_still_raises(self):
        bad = {"kind": "predict",
               "params": {"workload": "definitely-not-a-workload"}}
        with Session() as session:
            with pytest.raises(KeyError):
                session.run_many([bad])
        assert session.failures == []


# ----------------------------------------------------------------------
# Store quarantine under injection
# ----------------------------------------------------------------------


class TestStoreInjection:
    def test_injected_corruption_quarantines_and_heals(self, tmp_path,
                                                       monkeypatch):
        store = str(tmp_path / "runs")
        _activate_env(monkeypatch, "corrupt_store:1.0")
        with Session(run_store=store) as chaotic:
            first = chaotic.run(SWEEP_SPEC)
            assert not first.cached
            # The stored entry was corrupted after the write; the next
            # lookup quarantines it and recomputes.
            second = chaotic.run(SWEEP_SPEC)
            assert not second.cached
            assert chaotic.run_store.corrupt >= 1
            assert chaotic.run_store.quarantined >= 1
        assert any(name.endswith(".corrupt")
                   for name in os.listdir(store))
        assert _strip(first.to_dict()) == _strip(second.to_dict())


# ----------------------------------------------------------------------
# The seeded chaos campaign (CI leg entry point)
# ----------------------------------------------------------------------


class TestChaosCampaign:
    @needs_mp
    def test_campaign_matches_fault_free_bitwise(self, tmp_path,
                                                 monkeypatch):
        specs = [SWEEP_SPEC, VALIDATE_SPEC]
        with Session(workers=1,
                     run_store=str(tmp_path / "clean")) as reference:
            clean = [_strip(r.to_dict())
                     for r in reference.run_many(specs)]
        _activate_env(monkeypatch,
                      CI_CHAOS_SPEC or DEFAULT_CHAOS_SPEC,
                      seed=CI_CHAOS_SEED)
        retry = RetryPolicy(max_attempts=6, timeout=30,
                            backoff_base=0.001, backoff_max=0.01)
        with Session(workers=2, run_store=str(tmp_path / "chaos"),
                     retry=retry) as chaotic:
            results = chaotic.run_many(specs)
            recovered = (chaotic.pool.retries
                         + chaotic.pool.restarts
                         + chaotic.pool.timeouts
                         + chaotic.run_store.quarantined)
            assert chaotic.failures == []
        chaos = [_strip(r.to_dict()) for r in results]
        assert chaos == clean
        assert recovered >= 0  # counters exist; rates decide activity
