"""Interval model integration tests (thesis Eq 3.1 evaluation)."""

import pytest

from repro.core import AnalyticalModel, nehalem
from repro.core.interval import (
    DEFAULT_ENTROPY_MODEL,
    IntervalModel,
    STACK_COMPONENTS,
)
from repro.core.branch import branch_resolution_time
from repro.core.machine import MachineConfig
from repro.profiler.dependences import ChainProfile, DependenceChains


class TestPredictionStructure:
    def test_cycles_positive(self, gcc_profile, reference_config):
        prediction = IntervalModel().predict(gcc_profile, reference_config)
        assert prediction.cycles > 0

    def test_stack_sums_to_cycles(self, gcc_profile, reference_config):
        prediction = IntervalModel().predict(gcc_profile, reference_config)
        assert sum(prediction.stack.values()) == pytest.approx(
            prediction.cycles, rel=1e-6
        )

    def test_stack_components_complete(self, gcc_profile, reference_config):
        prediction = IntervalModel().predict(gcc_profile, reference_config)
        assert set(prediction.stack) == set(STACK_COMPONENTS)

    def test_cpi_ipc_reciprocal(self, gcc_profile, reference_config):
        prediction = IntervalModel().predict(gcc_profile, reference_config)
        assert prediction.cpi * prediction.ipc == pytest.approx(1.0)

    def test_windows_cover_profile(self, gcc_profile, reference_config):
        prediction = IntervalModel().predict(gcc_profile, reference_config)
        assert len(prediction.windows) == len(gcc_profile.micro_traces)

    def test_seconds_scale_with_frequency(self, gcc_profile):
        model = IntervalModel()
        slow = model.predict(gcc_profile, nehalem().with_frequency(1.33))
        fast = model.predict(gcc_profile, nehalem().with_frequency(2.66))
        assert slow.seconds > fast.seconds


class TestModelBehaviour:
    def test_wider_dispatch_not_slower(self, gamess_profile):
        from dataclasses import replace
        model = IntervalModel()
        narrow = model.predict(
            gamess_profile, replace(nehalem(), dispatch_width=2)
        )
        wide = model.predict(
            gamess_profile, replace(nehalem(), dispatch_width=6)
        )
        assert wide.cycles <= narrow.cycles * 1.01

    def test_bigger_llc_not_slower(self, mcf_profile):
        from dataclasses import replace
        from repro.caches.cache import CacheConfig
        model = IntervalModel()
        small = model.predict(
            mcf_profile,
            replace(nehalem(), llc=CacheConfig(1 << 21, 16, 64, latency=30)),
        )
        large = model.predict(
            mcf_profile,
            replace(nehalem(), llc=CacheConfig(1 << 23, 16, 64, latency=30)),
        )
        assert large.cycles <= small.cycles * 1.05

    def test_no_mlp_model_is_slowest(self, libquantum_profile,
                                     reference_config):
        # Thesis Fig 4.3: serializing all misses inflates execution time.
        stride = IntervalModel(mlp_model="stride").predict(
            libquantum_profile, reference_config
        )
        none = IntervalModel(mlp_model="none").predict(
            libquantum_profile, reference_config
        )
        assert none.cycles > stride.cycles

    def test_cold_model_runs(self, libquantum_profile, reference_config):
        prediction = IntervalModel(mlp_model="cold").predict(
            libquantum_profile, reference_config
        )
        assert prediction.cycles > 0

    def test_invalid_mlp_model_rejected(self):
        with pytest.raises(ValueError):
            IntervalModel(mlp_model="quantum")

    def test_mlp_at_least_one(self, libquantum_profile, reference_config):
        prediction = IntervalModel().predict(
            libquantum_profile, reference_config
        )
        assert prediction.mlp >= 1.0

    def test_memory_bound_workload_dram_dominated(self, mcf_profile,
                                                  reference_config):
        prediction = IntervalModel().predict(mcf_profile, reference_config)
        stack = prediction.cpi_stack()
        assert stack["dram"] > stack["base"]

    def test_compute_workload_base_dominated(self, gamess_profile,
                                             reference_config):
        prediction = IntervalModel().predict(gamess_profile,
                                             reference_config)
        stack = prediction.cpi_stack()
        assert stack["base"] > stack["branch"]


class TestBranchResolution:
    def make_chains(self, abp=3.0, cp=8.0):
        chains = DependenceChains()
        grid = tuple(range(16, 257, 16))
        chains.abp = ChainProfile(values={g: abp for g in grid})
        chains.cp = ChainProfile(values={g: cp for g in grid})
        chains.ap = ChainProfile(values={g: 2.0 for g in grid})
        return chains

    def test_resolution_at_least_one_latency(self):
        resolution = branch_resolution_time(
            self.make_chains(), 1.0, 1000.0, MachineConfig()
        )
        assert resolution >= 1.0

    def test_terminates_on_huge_intervals(self):
        resolution = branch_resolution_time(
            self.make_chains(), 2.0, 1e7, MachineConfig()
        )
        assert resolution > 0.0

    def test_longer_abp_longer_resolution(self):
        short = branch_resolution_time(
            self.make_chains(abp=2.0), 1.5, 1000.0, MachineConfig()
        )
        long = branch_resolution_time(
            self.make_chains(abp=8.0), 1.5, 1000.0, MachineConfig()
        )
        assert long > short

    def test_default_entropy_model_sane(self):
        assert 0.0 <= DEFAULT_ENTROPY_MODEL.predict(0.5) <= 1.0


class TestAnalyticalModelFacade:
    def test_bundle_fields(self, gcc_profile, reference_config):
        result = AnalyticalModel().predict(gcc_profile, reference_config)
        assert result.cpi > 0
        assert result.power_watts > 0
        assert result.energy_joules > 0
        assert result.edp > 0
        assert result.ed2p > 0

    def test_power_stack_keys(self, gcc_profile, reference_config):
        result = AnalyticalModel().predict(gcc_profile, reference_config)
        stack = result.power_stack()
        assert "llc" in stack and "core_logic" in stack

    def test_activity_scales_with_instructions(self, gcc_profile,
                                               reference_config):
        result = AnalyticalModel().predict(gcc_profile, reference_config)
        assert result.activity.uops == pytest.approx(
            result.performance.uops, rel=0.01
        )
        assert result.activity.l1_accesses > 0


class TestWindowWeighting:
    def test_weights_cover_trace(self, gcc_profile, reference_config):
        model = IntervalModel()
        total = 0.0
        for micro in gcc_profile.micro_traces:
            total += model._window_weight(gcc_profile, micro) * micro.length
        assert total == pytest.approx(gcc_profile.num_instructions,
                                      rel=0.01)

    def test_empty_micro_trace_weight_zero(self, gcc_profile):
        from repro.profiler.profile import MicroTraceProfile
        from repro.profiler.mix import UopMix
        from repro.profiler.dependences import DependenceChains
        from repro.profiler.memory import MicroTraceMemoryProfile
        model = IntervalModel()
        empty = MicroTraceProfile(
            start=0, length=0, mix=UopMix(),
            chains=DependenceChains(),
            memory=MicroTraceMemoryProfile(),
        )
        assert model._window_weight(gcc_profile, empty) == 0.0


class TestComponentToggles:
    def test_all_toggles_off_still_positive(self, gcc_profile,
                                            reference_config):
        model = IntervalModel(
            mlp_model="none",
            enable_llc_chaining=False,
            enable_mshr=False,
            enable_bus=False,
        )
        prediction = model.predict(gcc_profile, reference_config)
        assert prediction.cycles > 0

    def test_bus_toggle_changes_memory_component(self, libquantum_profile,
                                                 reference_config):
        with_bus = IntervalModel(enable_bus=True).predict(
            libquantum_profile, reference_config
        )
        without_bus = IntervalModel(enable_bus=False).predict(
            libquantum_profile, reference_config
        )
        assert with_bus.stack["dram"] >= without_bus.stack["dram"] - 1e-9


class TestPredictionBookkeeping:
    def test_mispredictions_non_negative(self, gcc_profile,
                                         reference_config):
        prediction = IntervalModel().predict(gcc_profile, reference_config)
        assert prediction.branch_mispredictions >= 0.0

    def test_llc_misses_accumulated(self, mcf_profile, reference_config):
        prediction = IntervalModel().predict(mcf_profile, reference_config)
        assert prediction.llc_load_misses > 0.0

    def test_workload_and_config_names_carried(self, gcc_profile,
                                               reference_config):
        prediction = IntervalModel().predict(gcc_profile, reference_config)
        assert prediction.workload == "gcc"
        assert prediction.config_name == reference_config.name
