"""Shared differential-equivalence harness for backend pairs.

The repo keeps two independent implementations of its hot paths -- the
scalar references and the vectorized backends (columnar profiling,
batched model evaluation).  Their contract is *bitwise* equivalence:
same floats, same dict/Counter insertion order (``most_common``
tie-breaking and float-summation order depend on it), same serialized
bytes, same memo-cache state.  This module centralizes the comparers
and the hypothesis strategies that drive them, so profiler tests
(``test_columnar.py``), model tests (``test_model_batch.py``) and
engine tests (``test_engine.py``) all pin the same contract.

Comparers come in two families:

* profile-side -- :func:`assert_profiles_bitwise`,
  :func:`assert_memory_profiles_bitwise` compare scalar vs columnar
  profiling output down to serialization bytes and store fingerprints;
* model-side -- :func:`assert_results_bitwise`,
  :func:`assert_points_identical`, :func:`assert_cache_states_equal`
  compare scalar vs batch model evaluations, sweep points and
  :class:`~repro.core.interval.ModelCache` contents.

Cache-state comparison is only meaningful when both backends saw the
*same profile objects*: cache keys embed ``cache.token(profile)``,
which is the profile's identity for the cache's lifetime.
"""

import json

from hypothesis import strategies as st

from repro.core.machine import config_from_params, design_space
from repro.isa import Instruction, MacroOp
from repro.profiler import SamplingConfig, profile_application
from repro.profiler.serialization import (
    profile_fingerprint,
    profile_to_dict,
)
from repro.workloads import Trace, generate_trace
from repro.workloads.generator import (
    AluSpec,
    BranchSpec,
    KernelSpec,
    LoadSpec,
    WorkloadSpec,
)

# ---------------------------------------------------------------------------
# Comparers: profile side (scalar vs columnar profiling backends).
# ---------------------------------------------------------------------------


def assert_profiles_bitwise(a, b):
    """Two ApplicationProfiles are indistinguishable, bytes included.

    Byte-identical serialization, not just dict equality: the
    non-canonical ``save_profile`` JSON preserves key insertion order,
    so profiles built by different backends must serialize to the same
    bytes to share a :class:`ProfileStore` entry.
    """
    assert profile_to_dict(a) == profile_to_dict(b)
    assert json.dumps(profile_to_dict(a)) == json.dumps(profile_to_dict(b))
    assert profile_fingerprint(a) == profile_fingerprint(b)


def assert_memory_profiles_bitwise(scalar, vectorized):
    """Memory profiles match, including dict/Counter insertion order.

    Insertion order is part of the contract: ``classify_strides``
    breaks ``most_common`` ties by it, and f(l) dict order follows it.
    """
    assert scalar == vectorized
    assert list(scalar.static_loads) == list(vectorized.static_loads)
    assert (list(scalar.load_dependence)
            == list(vectorized.load_dependence))
    for pc, load in scalar.static_loads.items():
        assert (load.strides.most_common()
                == vectorized.static_loads[pc].strides.most_common())


# ---------------------------------------------------------------------------
# Comparers: model side (scalar vs batch evaluation backends).
# ---------------------------------------------------------------------------


def assert_predictions_bitwise(a, b):
    """Two interval-model Predictions match, stack key order included."""
    assert a == b
    assert list(a.stack) == list(b.stack)
    assert len(a.windows) == len(b.windows)
    for wa, wb in zip(a.windows, b.windows):
        assert list(wa.stack) == list(wb.stack)


def assert_results_bitwise(a, b):
    """Two full ModelResults match bitwise, dict key order included.

    Key order matters beyond equality: the power model and downstream
    reporting sum floats over ``.items()``, so a different insertion
    order can change totals in the last ulp.
    """
    assert_predictions_bitwise(a.performance, b.performance)
    assert a.activity == b.activity
    assert (list(a.activity.uop_kind_counts)
            == list(b.activity.uop_kind_counts))
    assert a.power == b.power
    assert list(a.power.static) == list(b.power.static)
    assert list(a.power.dynamic) == list(b.power.dynamic)
    assert a.energy_joules == b.energy_joules
    assert a.edp == b.edp
    assert a.ed2p == b.ed2p


def assert_result_lists_bitwise(a, b):
    """Two ModelResult sequences match element-wise, order included."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert_results_bitwise(ra, rb)


def assert_points_identical(a, b):
    """Two DesignPoint sequences match bitwise, in the same order."""
    assert len(a) == len(b)
    for pa, pb in zip(a, b):
        assert pa.workload == pb.workload
        assert pa.config.name == pb.config.name
        assert pa.cpi == pb.cpi
        assert pa.seconds == pb.seconds
        assert pa.power_watts == pb.power_watts
        assert pa.energy_joules == pb.energy_joules
        assert_results_bitwise(pa.result, pb.result)


def _values_equal(x, y):
    eq = x == y
    if isinstance(eq, bool):
        return eq
    import numpy as np  # array-valued memo entries compare elementwise

    return bool(np.all(eq))


def assert_cache_states_equal(a, b):
    """Two ModelCaches hold the same keys mapping to equal values.

    Keys are compared as *sets*: the backends may populate the memo in
    a different order (the batch path computes one dependency family at
    a time), but a warmed cache must answer exactly the same queries
    with exactly the same values either way.  Only valid when both
    caches were used with the same profile objects (keys embed profile
    identity via ``ModelCache.token``).
    """
    assert set(a._memo) == set(b._memo)
    for key, value in a._memo.items():
        assert _values_equal(value, b._memo[key]), key


# ---------------------------------------------------------------------------
# Strategies: raw instruction streams (profiler-side differentials).
# ---------------------------------------------------------------------------

# Small pools on purpose: collisions (same pc, same line) are where the
# grouping logic can diverge from the scalar dictionaries.
instructions = st.builds(
    Instruction,
    pc=st.integers(0, 40).map(lambda k: 0x1000 + 4 * k),
    op=st.sampled_from(list(MacroOp)),
    dst=st.integers(-1, 15),
    src1=st.integers(-1, 15),
    src2=st.integers(-1, 15),
    addr=st.integers(0, 2048).map(lambda slot: slot * 8),
    taken=st.booleans(),
)
traces = st.lists(instructions, min_size=0, max_size=250)
accesses = st.lists(
    st.tuples(st.integers(0, 4096).map(lambda s: s * 16), st.booleans()),
    min_size=0, max_size=250,
)
line_sizes = st.sampled_from([32, 64, 128])
sample_rates = st.sampled_from([1.0, 0.5, 0.1])
seeds = st.integers(0, 50)


# ---------------------------------------------------------------------------
# Strategies: random-but-realistic workloads and profiles (model-side).
# ---------------------------------------------------------------------------

_alu = st.builds(
    AluSpec,
    op=st.sampled_from([MacroOp.INT_ALU, MacroOp.FP_ALU, MacroOp.FP_MUL]),
    dst=st.integers(1, 12),
    srcs=st.tuples(st.integers(1, 12)),
)
_load = st.builds(
    LoadSpec,
    dst=st.integers(1, 12),
    pattern=st.sampled_from(["stride", "random", "unique"]),
    strides=st.tuples(st.sampled_from([8, 64, 128])),
    region=st.sampled_from([4096, 65536, 1 << 20]),
    base=st.sampled_from([0, 1 << 20]),
)
_body = st.lists(st.one_of(_alu, _load), min_size=1, max_size=8)


@st.composite
def workload_specs(draw):
    """A random small kernel: ALU/load body closed by a loop branch."""
    body = draw(_body)
    body.append(BranchSpec(pattern="loop"))
    iterations = draw(st.integers(5, 40))
    seed = draw(st.integers(0, 1000))
    return WorkloadSpec(
        "prop", [KernelSpec("k", body, iterations=iterations)], seed=seed
    )


@st.composite
def profiles(draw):
    """A real ApplicationProfile of a random workload.

    Profiling happens inside the strategy so each example hands the
    test one profile *object* to feed both backends -- a prerequisite
    for comparing cache states (keys embed profile identity).
    """
    spec = draw(workload_specs())
    trace = generate_trace(spec, max_instructions=2000)
    micro = draw(st.integers(50, 300))
    stretch = draw(st.integers(2, 4))
    sampling = SamplingConfig(micro, micro * stretch)
    return profile_application(trace, sampling)


@st.composite
def micro_profiles(draw):
    """A profile of a raw random instruction stream (degenerate-friendly)."""
    instrs = draw(st.lists(instructions, min_size=1, max_size=120))
    micro = draw(st.integers(10, 60))
    sampling = SamplingConfig(micro, micro * draw(st.integers(1, 3)))
    return profile_application(Trace(instrs, name="micro"), sampling)


# ---------------------------------------------------------------------------
# Strategies: configuration batches (model-side differentials).
# ---------------------------------------------------------------------------

#: Axes stretched past Table 6.3 to the model's extremes, including the
#: degenerate scalar pipeline and saturated-MSHR corners.
EXTREME_AXES = {
    "dispatch_width": (1, 2, 4, 6, 8),
    "rob_size": (16, 32, 128, 512),
    "l1d_kb": (16, 32, 64),
    "l2_kb": (128, 256, 512),
    "llc_mb": (1, 2, 8),
    "frequency_ghz": (1.2, 2.66, 3.4),
    "mshr_entries": (1, 4, 64),
    "prefetch": (False, True),
}

_config_params = st.fixed_dictionaries(
    {},
    optional={
        name: st.sampled_from(values)
        for name, values in EXTREME_AXES.items()
    },
)

_configurations = _config_params.map(config_from_params)

_TABLE_SPACE = None


def _table_space():
    global _TABLE_SPACE
    if _TABLE_SPACE is None:
        _TABLE_SPACE = design_space()  # Table 6.3: 243 configs
    return _TABLE_SPACE


@st.composite
def table_slices(draw):
    """A strided slice of the Table 6.3 design space (may be empty)."""
    space = _table_space()
    start = draw(st.integers(0, len(space)))
    step = draw(st.integers(17, 60))
    return space[start::step]


@st.composite
def config_batches(draw, min_size=0, max_size=8):
    """A batch of configurations over :data:`EXTREME_AXES`.

    ``min_size=0`` keeps the degenerate empty batch in play; duplicate
    configurations are allowed on purpose (the batch kernel groups by
    value, so duplicates stress the gather indices).
    """
    return draw(st.lists(_configurations,
                         min_size=min_size, max_size=max_size))


#: Either flavour of batch: random extreme-axis draws or Table 6.3 slices.
any_config_batch = st.one_of(config_batches(), table_slices())
