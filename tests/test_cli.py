"""CLI tests: every subcommand end-to-end."""

import pytest

from repro.cli import main


class TestWorkloadsCommand:
    def test_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "mcf" in out
        assert len(out.strip().splitlines()) == 29


class TestProfilePredictFlow:
    def test_profile_then_predict(self, tmp_path, capsys):
        path = str(tmp_path / "gamess.profile")
        assert main(["profile", "gamess", "-o", path,
                     "--instructions", "5000"]) == 0
        assert main(["predict", path]) == 0
        out = capsys.readouterr().out
        assert "CPI:" in out and "power:" in out

    def test_predict_with_overrides(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["predict", path, "--width", "2", "--rob", "64",
                     "--llc-mb", "2", "--frequency", "1.6"]) == 0
        out = capsys.readouterr().out
        assert "1.60GHz" in out

    def test_profile_into_store_warms_cache(self, tmp_path, capsys):
        import json
        import os

        store = str(tmp_path / "store")
        report = str(tmp_path / "profiles.json")
        assert main(["profile", "gcc", "mcf", "--store", store,
                     "--instructions", "4000", "--json", report]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "mcf" in out and "store:" in out
        data = json.load(open(report))
        assert [p["workload"] for p in data["profiles"]] == ["gcc",
                                                             "mcf"]
        for entry in data["profiles"]:
            key = entry["fingerprint"]
            assert len(key) == 64
            # Both the profile and its warmed StatStack tables exist.
            assert os.path.exists(
                os.path.join(store, f"{key}.profile.json"))
            assert os.path.exists(
                os.path.join(store, f"{key}.tables.json"))

    def test_profile_store_matches_file_output(self, tmp_path):
        from repro.profiler.serialization import (
            load_profile,
            profile_fingerprint,
        )

        store = str(tmp_path / "store")
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--store", store,
              "--instructions", "4000"])
        profile = load_profile(path)
        key = profile_fingerprint(profile)
        assert main(["profile", "gcc", "--store", store,
                     "--instructions", "4000"]) == 0
        loaded = load_profile(
            str(tmp_path / "store" / f"{key}.profile.json"))
        assert profile_fingerprint(loaded) == key

    def test_profile_duplicate_workloads_rejected(self, tmp_path,
                                                  capsys):
        assert main(["profile", "gcc", "gcc",
                     "--store", str(tmp_path / "store")]) == 2
        err = capsys.readouterr().err
        assert "duplicate workload name" in err and "gcc" in err

    def test_profile_requires_destination(self, capsys):
        assert main(["profile", "gcc"]) == 2
        assert "-o/--output and/or --store" in capsys.readouterr().err

    def test_profile_output_single_workload_only(self, tmp_path,
                                                 capsys):
        assert main(["profile", "gcc", "mcf",
                     "-o", str(tmp_path / "x.profile")]) == 2
        assert "exactly one workload" in capsys.readouterr().err

    def test_profile_sample_rate_alias(self, tmp_path):
        from repro.profiler.serialization import load_profile

        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "4000",
              "--sample-rate", "0.5", "--reuse-seed", "3"])
        profile = load_profile(path)
        assert profile.sampling.reuse_sample_rate == 0.5
        assert profile.sampling.reuse_seed == 3

    def test_predict_mlp_model_choice(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["predict", path, "--mlp-model", "cold"]) == 0


class TestSimulateCommand:
    def test_simulate(self, capsys):
        assert main(["simulate", "gamess",
                     "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out and "MPKI:" in out

    def test_simulate_with_prefetch(self, capsys):
        assert main(["simulate", "libquantum", "--instructions", "3000",
                     "--prefetch"]) == 0


def _write_tiny_space(tmp_path):
    from repro.explore.space import DesignSpace, Parameter

    path = str(tmp_path / "space.json")
    DesignSpace(
        parameters=(Parameter.categorical("dispatch_width", (2, 4)),
                    Parameter.integer("rob_size", 64, 128, 64)),
        name="tiny",
    ).save(path)
    return path


class TestSweepCommand:
    def test_sweep_limited(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["sweep", path, "--limit", "9"]) == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal" in out

    def test_sweep_with_space_file(self, tmp_path, capsys):
        profile = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", profile,
              "--instructions", "5000"])
        space = _write_tiny_space(tmp_path)
        assert main(["sweep", profile, "--space", space]) == 0
        out = capsys.readouterr().out
        assert "4 designs evaluated" in out

    def test_sweep_objective_ranking(self, tmp_path, capsys):
        profile = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", profile,
              "--instructions", "5000"])
        space = _write_tiny_space(tmp_path)
        assert main(["sweep", profile, "--space", space,
                     "--objective", "energy"]) == 0
        out = capsys.readouterr().out
        assert "best average config (energy):" in out

    def test_sweep_objective_choices_are_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", str(tmp_path / "x.profile"),
                  "--objective", "ipc"])

    def test_sweep_duplicate_profile_names_rejected(self, tmp_path,
                                                    capsys):
        # Regression: two profiles of the same workload used to merge
        # silently into one results bucket.
        first = str(tmp_path / "gcc-a.profile")
        second = str(tmp_path / "gcc-b.profile")
        main(["profile", "gcc", "-o", first, "--instructions", "5000"])
        main(["profile", "gcc", "-o", second, "--instructions", "3000"])
        assert main(["sweep", first, second, "--limit", "2"]) == 2
        err = capsys.readouterr().err
        assert "duplicate profile name" in err and "gcc" in err

    def test_sweep_limit_zero_evaluates_nothing(self, tmp_path,
                                                capsys):
        # Regression: --limit 0 used to be treated as "no limit".
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["sweep", path, "--limit", "0"]) == 0
        assert "0 designs evaluated" in capsys.readouterr().out

    def test_sweep_negative_limit_rejected(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["sweep", path, "--limit", "-3"]) == 2
        assert "--limit" in capsys.readouterr().err


class TestSearchCommand:
    @pytest.fixture
    def profile_path(self, tmp_path):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        return path

    def test_search_default_space(self, profile_path, capsys):
        assert main(["search", profile_path, "--budget", "20",
                     "--optimizer", "random", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "table-6.3 (243 valid configurations)" in out
        assert "evaluated:   20 configs" in out
        assert "best edp:" in out
        assert "best config: w" in out

    def test_search_space_file_and_trajectory(self, tmp_path,
                                              profile_path, capsys):
        import json

        space = _write_tiny_space(tmp_path)
        out_path = str(tmp_path / "trajectory.json")
        assert main(["search", profile_path, "--space", space,
                     "--optimizer", "hill", "--budget", "10",
                     "--objective", "seconds",
                     "--trajectory", out_path]) == 0
        data = json.load(open(out_path))
        assert data["optimizer"] == "hill"
        assert data["objective"] == "seconds"
        assert 1 <= len(data["evaluations"]) <= 4
        assert capsys.readouterr().out.count("eval") >= 1

    def test_search_power_cap(self, profile_path, capsys):
        assert main(["search", profile_path, "--budget", "15",
                     "--optimizer", "sa", "--power-cap", "1000"]) == 0
        assert "edp|P<=1000W" in capsys.readouterr().out

    def test_search_is_seed_reproducible(self, profile_path, capsys):
        args = ["search", profile_path, "--budget", "15",
                "--optimizer", "ga", "--seed", "9"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out

        def stable(text):
            return [line for line in text.splitlines()
                    if not line.startswith("evaluated:")]  # wall-clock

        assert stable(first) == stable(second)

    def test_population_rejected_for_non_ga(self, profile_path,
                                            capsys):
        assert main(["search", profile_path, "--optimizer", "sa",
                     "--population", "8"]) == 2
        assert "--population" in capsys.readouterr().err

    def test_batch_size_rejected_for_ga(self, profile_path, capsys):
        assert main(["search", profile_path, "--optimizer", "ga",
                     "--batch-size", "4"]) == 2
        assert "--population" in capsys.readouterr().err


class TestValidateCommand:
    def test_validate_end_to_end(self, tmp_path, capsys):
        import json

        out = str(tmp_path / "report.json")
        assert main(["validate", "gcc", "mcf", "--limit", "4",
                     "--instructions", "3000",
                     "--train-fraction", "0", "--json", out]) == 0
        text = capsys.readouterr().out
        assert "2 workload(s) x 4 configs" in text
        assert "sensitivity" in text and "HVR" in text
        data = json.load(open(out))
        assert [w["workload"] for w in data["workloads"]] == \
            ["gcc", "mcf"]
        assert data["space"] == "table-6.3"

    def test_validate_duplicate_workloads_rejected(self, capsys):
        assert main(["validate", "gcc", "gcc", "--limit", "2"]) == 2
        assert "duplicate" in capsys.readouterr().err

    def test_validate_empty_grid_rejected(self, capsys):
        assert main(["validate", "gcc", "--limit", "0"]) == 2
        assert "empty" in capsys.readouterr().err

    def test_validate_negative_limit_rejected(self, capsys):
        assert main(["validate", "gcc", "--limit", "-1"]) == 2
        assert "--limit" in capsys.readouterr().err

    def test_validate_bad_train_fraction_rejected(self, capsys):
        assert main(["validate", "gcc", "--limit", "2",
                     "--train-fraction", "1.0"]) == 2
        assert "--train-fraction" in capsys.readouterr().err


class TestDVFSCommand:
    @pytest.fixture
    def profile_path(self, tmp_path):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        return path

    def test_dvfs_default_grid(self, profile_path, capsys):
        assert main(["dvfs", profile_path]) == 0
        out = capsys.readouterr().out
        assert "ED2P optimum" in out
        assert out.count("GHz") >= 5  # the Table 7.2 grid

    def test_dvfs_custom_frequencies(self, profile_path, capsys):
        assert main(["dvfs", profile_path,
                     "--frequencies", "1.2,2.66"]) == 0
        out = capsys.readouterr().out
        assert "1.20 GHz" in out and "2.66 GHz" in out
        assert out.count("ED2P") >= 2

    def test_dvfs_power_cap(self, profile_path, capsys):
        assert main(["dvfs", profile_path, "--power-cap", "1000"]) == 0
        assert "fastest under 1000.0 W" in capsys.readouterr().out

    def test_dvfs_malformed_frequencies_rejected(self, profile_path,
                                                 capsys):
        assert main(["dvfs", profile_path,
                     "--frequencies", "1.2,"]) == 2
        assert "--frequencies" in capsys.readouterr().err

    def test_dvfs_power_cap_infeasible(self, profile_path, capsys):
        assert main(["dvfs", profile_path, "--power-cap", "0.001"]) == 0
        assert "no operating point fits" in capsys.readouterr().out

    def test_dvfs_engine_path_matches_local(self, profile_path,
                                            capsys):
        assert main(["dvfs", profile_path]) == 0
        local = capsys.readouterr().out
        assert main(["dvfs", profile_path, "--workers", "2"]) == 0
        engine = capsys.readouterr().out
        assert local == engine


class TestParser:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_raises(self, tmp_path):
        with pytest.raises(KeyError):
            main(["profile", "doom", "-o",
                  str(tmp_path / "x.profile")])
