"""CLI tests: every subcommand end-to-end."""

import pytest

from repro.cli import main


class TestWorkloadsCommand:
    def test_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "mcf" in out
        assert len(out.strip().splitlines()) == 29


class TestProfilePredictFlow:
    def test_profile_then_predict(self, tmp_path, capsys):
        path = str(tmp_path / "gamess.profile")
        assert main(["profile", "gamess", "-o", path,
                     "--instructions", "5000"]) == 0
        assert main(["predict", path]) == 0
        out = capsys.readouterr().out
        assert "CPI:" in out and "power:" in out

    def test_predict_with_overrides(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["predict", path, "--width", "2", "--rob", "64",
                     "--llc-mb", "2", "--frequency", "1.6"]) == 0
        out = capsys.readouterr().out
        assert "1.60GHz" in out

    def test_predict_mlp_model_choice(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["predict", path, "--mlp-model", "cold"]) == 0


class TestSimulateCommand:
    def test_simulate(self, capsys):
        assert main(["simulate", "gamess",
                     "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out and "MPKI:" in out

    def test_simulate_with_prefetch(self, capsys):
        assert main(["simulate", "libquantum", "--instructions", "3000",
                     "--prefetch"]) == 0


def _write_tiny_space(tmp_path):
    from repro.explore.space import DesignSpace, Parameter

    path = str(tmp_path / "space.json")
    DesignSpace(
        parameters=(Parameter.categorical("dispatch_width", (2, 4)),
                    Parameter.integer("rob_size", 64, 128, 64)),
        name="tiny",
    ).save(path)
    return path


class TestSweepCommand:
    def test_sweep_limited(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["sweep", path, "--limit", "9"]) == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal" in out

    def test_sweep_with_space_file(self, tmp_path, capsys):
        profile = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", profile,
              "--instructions", "5000"])
        space = _write_tiny_space(tmp_path)
        assert main(["sweep", profile, "--space", space]) == 0
        out = capsys.readouterr().out
        assert "4 designs evaluated" in out

    def test_sweep_objective_ranking(self, tmp_path, capsys):
        profile = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", profile,
              "--instructions", "5000"])
        space = _write_tiny_space(tmp_path)
        assert main(["sweep", profile, "--space", space,
                     "--objective", "energy"]) == 0
        out = capsys.readouterr().out
        assert "best average config (energy):" in out

    def test_sweep_objective_choices_are_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", str(tmp_path / "x.profile"),
                  "--objective", "ipc"])


class TestSearchCommand:
    @pytest.fixture
    def profile_path(self, tmp_path):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        return path

    def test_search_default_space(self, profile_path, capsys):
        assert main(["search", profile_path, "--budget", "20",
                     "--optimizer", "random", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "table-6.3 (243 valid configurations)" in out
        assert "evaluated:   20 configs" in out
        assert "best edp:" in out
        assert "best config: w" in out

    def test_search_space_file_and_trajectory(self, tmp_path,
                                              profile_path, capsys):
        import json

        space = _write_tiny_space(tmp_path)
        out_path = str(tmp_path / "trajectory.json")
        assert main(["search", profile_path, "--space", space,
                     "--optimizer", "hill", "--budget", "10",
                     "--objective", "seconds",
                     "--trajectory", out_path]) == 0
        data = json.load(open(out_path))
        assert data["optimizer"] == "hill"
        assert data["objective"] == "seconds"
        assert 1 <= len(data["evaluations"]) <= 4
        assert capsys.readouterr().out.count("eval") >= 1

    def test_search_power_cap(self, profile_path, capsys):
        assert main(["search", profile_path, "--budget", "15",
                     "--optimizer", "sa", "--power-cap", "1000"]) == 0
        assert "edp|P<=1000W" in capsys.readouterr().out

    def test_search_is_seed_reproducible(self, profile_path, capsys):
        args = ["search", profile_path, "--budget", "15",
                "--optimizer", "ga", "--seed", "9"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out

        def stable(text):
            return [line for line in text.splitlines()
                    if not line.startswith("evaluated:")]  # wall-clock

        assert stable(first) == stable(second)

    def test_population_rejected_for_non_ga(self, profile_path,
                                            capsys):
        assert main(["search", profile_path, "--optimizer", "sa",
                     "--population", "8"]) == 2
        assert "--population" in capsys.readouterr().err

    def test_batch_size_rejected_for_ga(self, profile_path, capsys):
        assert main(["search", profile_path, "--optimizer", "ga",
                     "--batch-size", "4"]) == 2
        assert "--population" in capsys.readouterr().err


class TestParser:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_raises(self, tmp_path):
        with pytest.raises(KeyError):
            main(["profile", "doom", "-o",
                  str(tmp_path / "x.profile")])
