"""CLI tests: every subcommand end-to-end."""

import pytest

from repro.cli import main


class TestWorkloadsCommand:
    def test_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "mcf" in out
        assert len(out.strip().splitlines()) == 29


class TestProfilePredictFlow:
    def test_profile_then_predict(self, tmp_path, capsys):
        path = str(tmp_path / "gamess.profile")
        assert main(["profile", "gamess", "-o", path,
                     "--instructions", "5000"]) == 0
        assert main(["predict", path]) == 0
        out = capsys.readouterr().out
        assert "CPI:" in out and "power:" in out

    def test_predict_with_overrides(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["predict", path, "--width", "2", "--rob", "64",
                     "--llc-mb", "2", "--frequency", "1.6"]) == 0
        out = capsys.readouterr().out
        assert "1.60GHz" in out

    def test_predict_mlp_model_choice(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["predict", path, "--mlp-model", "cold"]) == 0


class TestSimulateCommand:
    def test_simulate(self, capsys):
        assert main(["simulate", "gamess",
                     "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out and "MPKI:" in out

    def test_simulate_with_prefetch(self, capsys):
        assert main(["simulate", "libquantum", "--instructions", "3000",
                     "--prefetch"]) == 0


class TestSweepCommand:
    def test_sweep_limited(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "5000"])
        assert main(["sweep", path, "--limit", "9"]) == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal" in out


class TestParser:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_raises(self, tmp_path):
        with pytest.raises(KeyError):
            main(["profile", "doom", "-o",
                  str(tmp_path / "x.profile")])
