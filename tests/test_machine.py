"""Machine configuration tests: reference cores, ports, design spaces."""

import pytest

from repro.core.machine import (
    DESIGN_SPACE_AXES,
    MachineConfig,
    design_space,
    dvfs_points,
    dvfs_vdd,
    low_power_core,
    narrow_ports,
    nehalem,
    nehalem_ports,
)
from repro.isa import UopKind


class TestReferenceConfig:
    def test_nehalem_matches_table_6_1(self):
        config = nehalem()
        assert config.dispatch_width == 4
        assert config.rob_size == 128
        assert config.l1d.size_bytes == 32 * 1024
        assert config.l2.size_bytes == 256 * 1024
        assert config.llc.size_bytes == 8 * 1024 * 1024
        assert config.frequency_ghz == pytest.approx(2.66)
        assert config.mshr_entries == 10

    def test_six_ports(self):
        assert len(nehalem_ports()) == 6

    def test_every_uop_kind_servable(self):
        for ports in (nehalem_ports(), narrow_ports()):
            for kind in UopKind:
                assert any(kind in port.kinds for port in ports), (
                    kind, len(ports)
                )

    def test_loads_single_ported_on_nehalem(self):
        assert nehalem().units_of(UopKind.LOAD) == 1

    def test_latency_lookup(self):
        config = nehalem()
        assert config.latency_of(UopKind.DIV) > config.latency_of(
            UopKind.INT_ALU
        )
        assert config.latency_of(UopKind.MOVE) == 1

    def test_level_latencies_ordering(self):
        latencies = nehalem().level_latencies()
        assert latencies == sorted(latencies)

    def test_low_power_core_is_smaller(self):
        small = low_power_core()
        big = nehalem()
        assert small.dispatch_width < big.dispatch_width
        assert small.rob_size < big.rob_size
        assert small.llc.size_bytes < big.llc.size_bytes
        assert small.frequency_ghz < big.frequency_ghz


class TestWithFrequency:
    def test_renames_and_scales(self):
        scaled = nehalem().with_frequency(1.6)
        assert "1.60GHz" in scaled.name
        assert scaled.frequency_ghz == pytest.approx(1.6)
        assert scaled.vdd == pytest.approx(dvfs_vdd(1.6))

    def test_explicit_vdd_respected(self):
        scaled = nehalem().with_frequency(2.0, vdd=0.95)
        assert scaled.vdd == pytest.approx(0.95)

    def test_original_unchanged(self):
        base = nehalem()
        base.with_frequency(3.4)
        assert base.frequency_ghz == pytest.approx(2.66)


class TestDesignSpace:
    def test_full_space_is_243(self):
        assert len(design_space()) == 243

    def test_axes_cover_five_parameters(self):
        assert len(DESIGN_SPACE_AXES) == 5
        assert all(len(v) == 3 for v in DESIGN_SPACE_AXES.values())

    def test_every_axis_value_appears(self):
        space = design_space()
        widths = {c.dispatch_width for c in space}
        robs = {c.rob_size for c in space}
        llcs = {c.llc.size_bytes for c in space}
        assert widths == set(DESIGN_SPACE_AXES["dispatch_width"])
        assert robs == set(DESIGN_SPACE_AXES["rob_size"])
        assert llcs == {
            mb * 1024 * 1024 for mb in DESIGN_SPACE_AXES["llc_mb"]
        }

    def test_narrow_cores_get_narrow_ports(self):
        space = design_space()
        for config in space:
            if config.dispatch_width < 4:
                assert len(config.ports) == 3
            else:
                assert len(config.ports) == 6

    def test_mshrs_scale_with_width(self):
        space = design_space({"dispatch_width": (2, 6)})
        by_width = {c.dispatch_width: c.mshr_entries for c in space}
        assert by_width[6] > by_width[2]


class TestDVFS:
    def test_grid_includes_nominal(self):
        frequencies = [p.frequency_ghz for p in dvfs_points()]
        assert 2.66 in frequencies

    def test_voltage_tracks_frequency(self):
        points = dvfs_points()
        for a, b in zip(points, points[1:]):
            assert b.vdd >= a.vdd


class TestConfigDataclass:
    def test_frozen(self):
        config = nehalem()
        with pytest.raises(Exception):
            config.rob_size = 17

    def test_cache_levels_list(self):
        levels = nehalem().cache_levels()
        assert [c.size_bytes for c in levels] == [
            32 * 1024, 256 * 1024, 8 * 1024 * 1024
        ]
