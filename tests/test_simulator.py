"""Reference simulator tests (the cycle-level ground truth)."""

import pytest
from dataclasses import replace

from repro.core.machine import MachineConfig, nehalem, low_power_core
from repro.isa import Instruction, MacroOp
from repro.simulator import Simulator, simulate
from repro.workloads.trace import Trace


def alu_trace(n, dependent=False):
    instructions = []
    for i in range(n):
        if dependent:
            instructions.append(
                Instruction(pc=4 * i, op=MacroOp.INT_ALU, dst=1, src1=1)
            )
        else:
            instructions.append(
                Instruction(pc=4 * i, op=MacroOp.INT_ALU, dst=i % 8)
            )
    return Trace(instructions, name="alu")


class TestBasicTiming:
    def test_ipc_bounded_by_width(self, gcc_trace):
        result = simulate(gcc_trace, nehalem())
        assert result.ipc <= nehalem().dispatch_width

    def test_independent_alus_near_width_limit(self):
        # Perfect conditions: IPC approaches min(D, ALU ports) = 2.
        result = simulate(alu_trace(4000), nehalem(),
                          perfect_frontend=True, perfect_caches=True)
        assert result.ipc == pytest.approx(2.0, rel=0.05)

    def test_serial_chain_ipc_one(self):
        # A fully serial unit-latency chain commits one per cycle.
        result = simulate(alu_trace(2000, dependent=True), nehalem(),
                          perfect_frontend=True, perfect_caches=True)
        assert result.ipc == pytest.approx(1.0, rel=0.05)

    def test_deterministic(self, gcc_trace):
        first = simulate(gcc_trace, nehalem())
        second = simulate(gcc_trace, nehalem())
        assert first.cycles == second.cycles

    def test_stack_sums_to_cycles(self, gcc_trace):
        result = simulate(gcc_trace, nehalem())
        assert sum(result.stack.values()) == pytest.approx(
            result.cycles, rel=0.05
        )


class TestPerfectModes:
    def test_perfect_caches_not_slower(self, libquantum_trace):
        real = simulate(libquantum_trace, nehalem())
        perfect = simulate(libquantum_trace, nehalem(),
                           perfect_caches=True)
        assert perfect.cycles <= real.cycles

    def test_perfect_frontend_not_slower(self, gcc_trace):
        real = simulate(gcc_trace, nehalem())
        perfect = simulate(gcc_trace, nehalem(), perfect_frontend=True)
        assert perfect.cycles <= real.cycles

    def test_perfect_frontend_no_branch_misses(self, gcc_trace):
        result = simulate(gcc_trace, nehalem(), perfect_frontend=True)
        assert result.branch_mispredictions == 0
        assert result.stack["branch"] == 0.0


class TestMachineSensitivity:
    def test_memory_bound_workload_feels_llc_size(self, mcf_trace):
        from repro.caches.cache import CacheConfig
        small = simulate(mcf_trace, replace(
            nehalem(), llc=CacheConfig(1 << 20, 16, 64, latency=30)
        ))
        large = simulate(mcf_trace, nehalem())
        assert large.cycles <= small.cycles * 1.02

    def test_low_power_core_slower(self, gcc_trace):
        big = simulate(gcc_trace, nehalem())
        small = simulate(gcc_trace, low_power_core())
        assert small.cpi > big.cpi

    def test_prefetcher_helps_streaming(self, libquantum_trace):
        base = simulate(libquantum_trace, nehalem())
        prefetching = simulate(
            libquantum_trace, replace(nehalem(), prefetch=True)
        )
        assert prefetching.cycles <= base.cycles

    def test_narrow_rob_slower_on_mlp_workload(self, libquantum_trace):
        wide = simulate(libquantum_trace, nehalem())
        narrow = simulate(libquantum_trace, replace(nehalem(), rob_size=32))
        assert narrow.cycles >= wide.cycles


class TestAccounting:
    def test_uop_count_matches_trace(self, gcc_trace):
        result = simulate(gcc_trace, nehalem())
        assert result.uops == gcc_trace.stats().num_uops

    def test_branch_counts(self, gcc_trace):
        result = simulate(gcc_trace, nehalem())
        assert result.branches == gcc_trace.stats().num_branches
        assert 0 <= result.branch_mispredictions <= result.branches

    def test_activity_vector_consistent(self, gcc_trace):
        result = simulate(gcc_trace, nehalem())
        activity = result.activity
        assert activity.cycles == result.cycles
        assert activity.uops == result.uops
        assert activity.l1_accesses >= activity.l2_accesses
        assert activity.l2_accesses >= activity.llc_accesses

    def test_window_cpi_trace(self, gcc_trace):
        result = simulate(gcc_trace, nehalem(), window_instructions=2000)
        assert len(result.window_cpi) == len(gcc_trace) // 2000
        for _, cpi in result.window_cpi:
            assert cpi > 0

    def test_mpki_reported_per_level(self, gcc_trace):
        result = simulate(gcc_trace, nehalem())
        assert len(result.mpki) == 3
        assert result.mpki[0] >= result.mpki[2]


class TestMemoryChannels:
    def test_more_channels_help_bandwidth_bound(self, libquantum_trace):
        one = simulate(libquantum_trace, replace(nehalem(),
                                                 memory_channels=1))
        two = simulate(libquantum_trace, replace(nehalem(),
                                                 memory_channels=2))
        assert two.cycles < one.cycles

    def test_channels_neutral_for_compute_bound(self, gamess_trace):
        one = simulate(gamess_trace, nehalem())
        four = simulate(gamess_trace, replace(nehalem(),
                                              memory_channels=4))
        assert four.cycles <= one.cycles
        assert four.cycles > one.cycles * 0.8
