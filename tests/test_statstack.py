"""StatStack tests: reuse profiling, the transform, miss-rate queries.

Includes the thesis Fig 4.1 example and a cross-validation against the
functional fully-associative LRU cache (the approximation StatStack makes,
thesis §4.2).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.cache import Cache, CacheConfig, MissKind
from repro.statstack.model import StatStack
from repro.statstack.reuse import (
    ReuseProfile,
    accesses_from_trace,
    collect_reuse_profile,
)


def stream(lines):
    """Build an (address, is_write) stream from line ids."""
    return [(line * 64, False) for line in lines]


class TestReuseProfiling:
    def test_fig_4_1_reuse_distances(self):
        # Thesis Fig 4.1: between 1st and 2nd use of A there are four
        # accesses (RD = 4); between 2nd and 3rd only one (RD = 1).
        # Stream: A B C B C A C A (arrows: A..A with B,C,B,C between).
        a, b, c = 0, 1, 2
        profile = collect_reuse_profile(
            stream([a, b, c, b, c, a, c, a])
        )
        assert profile.histogram.get(4) == 1  # A's first reuse
        assert profile.histogram.get(1) >= 1  # A's second reuse (C between)

    def test_cold_counts(self):
        profile = collect_reuse_profile(stream([1, 2, 3, 1]))
        assert profile.cold_loads == 3
        assert sum(profile.histogram.values()) == 1

    def test_typed_histograms(self):
        accesses = [(0, False), (64, True), (0, False), (64, True)]
        profile = collect_reuse_profile(accesses)
        assert sum(profile.load_histogram.values()) == 1
        assert sum(profile.store_histogram.values()) == 1

    def test_sampling_reduces_recorded_mass(self):
        lines = list(range(64)) * 20
        full = collect_reuse_profile(stream(lines), sample_rate=1.0)
        sampled = collect_reuse_profile(stream(lines), sample_rate=0.1,
                                        seed=3)
        assert sampled.sampled_total < full.sampled_total
        assert sampled.total_accesses == full.total_accesses

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            collect_reuse_profile(stream([1]), sample_rate=0.0)

    def test_accesses_from_trace(self, gcc_trace):
        accesses = list(accesses_from_trace(gcc_trace))
        mem_count = sum(1 for i in gcc_trace if i.is_mem)
        assert len(accesses) == mem_count


class TestStatStackTransform:
    def test_cyclic_sweep_stack_distance(self):
        # Sweeping K distinct lines cyclically: every reuse has RD = K-1
        # and the stack distance is exactly K-1 (all intervening accesses
        # are unique).
        k = 16
        lines = list(range(k)) * 10
        profile = collect_reuse_profile(stream(lines))
        model = StatStack(profile)
        assert model.expected_stack_distance(k - 1) == pytest.approx(
            k - 1, rel=0.05
        )

    def test_sd_never_exceeds_rd(self):
        lines = [0, 1, 2, 1, 0, 2, 0, 1, 2, 0]
        model = StatStack(collect_reuse_profile(stream(lines)))
        for distance in range(0, 10):
            assert model.expected_stack_distance(distance) <= distance + 1e-9

    def test_sd_monotone_in_rd(self):
        lines = (list(range(8)) + [0, 1] + list(range(20))) * 5
        model = StatStack(collect_reuse_profile(stream(lines)))
        previous = -1.0
        for distance in range(0, 50, 3):
            current = model.expected_stack_distance(distance)
            assert current >= previous - 1e-9
            previous = current


class TestMissRatios:
    def test_fits_in_cache_no_capacity_misses(self):
        lines = list(range(8)) * 50
        model = StatStack(collect_reuse_profile(stream(lines)))
        ratio = model.miss_ratio(16 * 64, include_cold=False)
        assert ratio == pytest.approx(0.0, abs=0.01)

    def test_thrashing_misses_everything(self):
        # 64 lines cycling through a 16-line cache: every reuse misses.
        lines = list(range(64)) * 10
        model = StatStack(collect_reuse_profile(stream(lines)))
        # All 576 reuses miss; the 64 cold accesses stay in the
        # denominator (miss ratio is per access): 576/640 = 0.9.
        ratio = model.miss_ratio(16 * 64, include_cold=False)
        assert ratio == pytest.approx(576 / 640, abs=0.02)
        assert model.miss_ratio(16 * 64, include_cold=True) == (
            pytest.approx(1.0, abs=0.02)
        )

    def test_monotone_in_cache_size(self):
        lines = (list(range(40)) + list(range(10))) * 10
        model = StatStack(collect_reuse_profile(stream(lines)))
        sizes = [4 * 64, 16 * 64, 64 * 64, 256 * 64]
        ratios = [model.miss_ratio(s) for s in sizes]
        for small, large in zip(ratios, ratios[1:]):
            assert large <= small + 1e-9

    def test_ratio_bounds(self):
        lines = [0, 5, 3, 5, 0, 1, 2, 3, 4, 5] * 10
        model = StatStack(collect_reuse_profile(stream(lines)))
        for size in (64, 640, 6400):
            assert 0.0 <= model.miss_ratio(size) <= 1.0

    def test_cold_included_vs_excluded(self):
        lines = list(range(100))
        model = StatStack(collect_reuse_profile(stream(lines)))
        assert model.miss_ratio(64 * 64, include_cold=True) == 1.0
        assert model.miss_ratio(64 * 64, include_cold=False) == 0.0

    def test_against_functional_fully_associative_cache(self):
        """StatStack vs an actual fully-associative LRU simulation."""
        import random
        rng = random.Random(11)
        lines = [rng.randrange(0, 48) for _ in range(4000)]
        capacity = 16
        cache = Cache(CacheConfig(capacity * 64, associativity=capacity,
                                  line_size=64))
        misses = sum(
            1 for line in lines if cache.access(line * 64) is not MissKind.HIT
        )
        model = StatStack(collect_reuse_profile(stream(lines)))
        predicted = model.miss_ratio(capacity * 64) * len(lines)
        assert predicted == pytest.approx(misses, rel=0.15)

    def test_hierarchy_levels_independent(self):
        lines = list(range(64)) * 5
        model = StatStack(collect_reuse_profile(stream(lines)))
        ratios = model.hierarchy_miss_ratios([8 * 64, 32 * 64, 128 * 64])
        assert ratios[0] >= ratios[1] >= ratios[2]

    def test_miss_ratio_of_custom_histogram(self):
        lines = list(range(32)) * 10
        model = StatStack(collect_reuse_profile(stream(lines)))
        # A histogram of only-short distances should hit in a big cache.
        short = {2: 100}
        assert model.miss_ratio_of(short, 0, 64 * 64) == pytest.approx(0.0)
        far = {1000: 100}
        assert model.miss_ratio_of(far, 0, 4 * 64) == pytest.approx(1.0)

    def test_empty_profile(self):
        model = StatStack(ReuseProfile())
        assert model.miss_ratio(1024) == 0.0
        assert model.expected_stack_distance(10) == 0.0


class TestStatStackProperty:
    @given(st.lists(st.integers(0, 30), min_size=20, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_ratio_valid_and_monotone(self, lines):
        model = StatStack(collect_reuse_profile(stream(lines)))
        previous = 1.1
        for size_lines in (1, 4, 16, 64):
            ratio = model.miss_ratio(size_lines * 64)
            assert 0.0 <= ratio <= 1.0
            assert ratio <= previous + 1e-9
            previous = ratio
