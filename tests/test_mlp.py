"""MLP model tests: cold-miss model, stride model, MSHR cap, bus queue."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.machine import MachineConfig
from repro.core.memory_model import bus_queue_cycles, mshr_soft_cap
from repro.core.mlp import (
    MLPResult,
    VirtualLoad,
    VirtualStream,
    _independence_factor,
    build_virtual_stream,
    cold_miss_mlp,
    stride_mlp,
)
from repro.profiler.memory import ColdMissProfile, profile_micro_trace_memory
from repro.statstack.model import StatStack
from repro.statstack.reuse import ReuseProfile, collect_reuse_profile


def make_cold_profile(per_window):
    profile = ColdMissProfile()
    profile.per_window[(64, 128)] = per_window
    profile.window_fraction[(64, 128)] = 0.5
    return profile


class TestIndependenceFactor:
    def test_all_independent(self):
        assert _independence_factor({1: 1.0}, 0.5) == pytest.approx(1.0)

    def test_deep_chains_with_high_missrate(self):
        factor = _independence_factor({10: 1.0}, 0.9)
        assert factor < 1e-8

    def test_mixture(self):
        factor = _independence_factor({1: 0.5, 2: 0.5}, 0.5)
        assert factor == pytest.approx(0.5 + 0.5 * 0.5)

    def test_empty_distribution(self):
        assert _independence_factor({}, 0.5) == 1.0


class TestColdMissMLP:
    def test_hand_computed_case(self):
        # Eq 4.1 with f(1)=1, no conflict misses: MLP = m_cold(ROB).
        result = cold_miss_mlp(
            cold=make_cold_profile(4.0),
            load_dependence={1: 1.0},
            llc_load_miss_rate=0.1,
            cold_fraction=1.0,
            load_fraction=0.3,
            config=MachineConfig(),
        )
        assert result.mlp == pytest.approx(4.0)

    def test_dependent_loads_reduce_mlp(self):
        independent = cold_miss_mlp(
            make_cold_profile(6.0), {1: 1.0}, 0.5, 1.0, 0.3, MachineConfig()
        )
        chained = cold_miss_mlp(
            make_cold_profile(6.0), {4: 1.0}, 0.5, 1.0, 0.3, MachineConfig()
        )
        assert chained.mlp < independent.mlp

    def test_conflict_only_uses_uniform_spread(self):
        # Eq 4.2: conflict MLP = M_cf * loads-per-ROB * independence.
        config = MachineConfig(rob_size=128)
        result = cold_miss_mlp(
            make_cold_profile(0.0),
            {1: 1.0},
            llc_load_miss_rate=0.25,
            cold_fraction=0.0,
            load_fraction=0.25,
            config=config,
        )
        assert result.mlp == pytest.approx(0.25 * 0.25 * 128)

    def test_mlp_floor_is_one(self):
        result = cold_miss_mlp(
            make_cold_profile(0.0), {1: 1.0}, 0.0, 0.0, 0.3, MachineConfig()
        )
        assert result.mlp == 1.0


class TestMSHRSoftCap:
    def test_below_capacity_unchanged(self):
        config = MachineConfig(mshr_entries=10)
        assert mshr_soft_cap(5.0, config) == 5.0

    def test_above_capacity_soft_capped(self):
        config = MachineConfig(mshr_entries=10, dram_latency=200)
        capped = mshr_soft_cap(20.0, config)
        assert 10.0 < capped < 20.0

    def test_eq_4_4_value(self):
        # MLP = M + W * (T - T_free)/T with M=10, T=200, raw=20 (W=10):
        # T_free = (10+1)/2 * 200/10 = 110 -> 10 + 10 * 90/200 = 14.5.
        config = MachineConfig(mshr_entries=10, dram_latency=200)
        assert mshr_soft_cap(20.0, config) == pytest.approx(14.5)

    def test_deep_overflow_approaches_hard_cap(self):
        config = MachineConfig(mshr_entries=6, dram_latency=200)
        assert mshr_soft_cap(60.0, config) == pytest.approx(6.0)

    @given(st.floats(min_value=1.0, max_value=64.0))
    @settings(max_examples=50, deadline=None)
    def test_cap_never_increases(self, mlp):
        config = MachineConfig(mshr_entries=8)
        assert mshr_soft_cap(mlp, config) <= mlp + 1e-9


class TestBusQueue:
    def test_eq_4_5_three_concurrent(self):
        # cbus(3) = (3+1)/2 * c_transfer.
        config = MachineConfig(bus_transfer_cycles=16)
        cycles = bus_queue_cycles(3.0, llc_load_misses=10.0,
                                  llc_store_misses=0.0, config=config)
        assert cycles == pytest.approx(2.0 * 16)

    def test_store_misses_rescale_concurrency(self):
        # Eq 4.6: MLP' = MLP * (loads + stores) / loads.
        config = MachineConfig(bus_transfer_cycles=16)
        loads_only = bus_queue_cycles(2.0, 10.0, 0.0, config)
        with_stores = bus_queue_cycles(2.0, 10.0, 10.0, config)
        assert with_stores > loads_only
        assert with_stores == pytest.approx((4.0 + 1.0) / 2.0 * 16)

    def test_no_misses_min_transfer(self):
        config = MachineConfig(bus_transfer_cycles=16)
        assert bus_queue_cycles(1.0, 0.0, 0.0, config) == 16

    def test_channels_divide_concurrency(self):
        one = bus_queue_cycles(
            8.0, 10.0, 0.0, MachineConfig(memory_channels=1)
        )
        two = bus_queue_cycles(
            8.0, 10.0, 0.0, MachineConfig(memory_channels=2)
        )
        assert two < one


def make_statstack_always_miss():
    """A StatStack whose every reuse is far beyond any cache."""
    profile = ReuseProfile()
    profile.histogram = {10_000_000: 100}
    profile.load_histogram = {10_000_000: 100}
    profile.load_accesses = 100
    profile.sampled_accesses = 100
    return StatStack(profile)


def independent_load_stream(n_loads, spacing=10):
    """n independent static loads, strided, all missing."""
    from repro.isa import Instruction, MacroOp
    stream = []
    for i in range(n_loads * spacing):
        if i % spacing == 0:
            slot = i % (4 * spacing)
            stream.append(Instruction(
                pc=0x100 + slot, op=MacroOp.LOAD,
                dst=1 + (slot // spacing),
                addr=0x10000 * (slot // spacing) + (i // (4 * spacing)) * 64,
            ))
        else:
            stream.append(Instruction(pc=0x500 + (i % 64) * 4,
                                      op=MacroOp.INT_ALU, dst=9))
    return stream


class TestStrideMLP:
    def test_all_missing_independent_loads_high_mlp(self):
        stream_instrs = independent_load_stream(64, spacing=8)
        memory = profile_micro_trace_memory(stream_instrs)
        statstack = make_statstack_always_miss()
        config = MachineConfig(mshr_entries=16)
        stream = build_virtual_stream(memory, statstack, config)
        result = stride_mlp(stream, memory.load_dependence_distribution(),
                            config)
        assert result.mlp > 4.0

    def test_chase_serializes(self):
        from repro.isa import Instruction, MacroOp
        stream_instrs = []
        for i in range(400):
            if i % 5 == 0:
                stream_instrs.append(Instruction(
                    pc=0x100, op=MacroOp.LOAD, dst=1, src1=1,
                    addr=(i * 7919) % (1 << 26),
                ))
            else:
                stream_instrs.append(Instruction(pc=0x200 + (i % 16) * 4,
                                                 op=MacroOp.INT_ALU, dst=9))
        memory = profile_micro_trace_memory(stream_instrs)
        statstack = make_statstack_always_miss()
        config = MachineConfig()
        stream = build_virtual_stream(memory, statstack, config)
        result = stride_mlp(stream, memory.load_dependence_distribution(),
                            config)
        assert result.mlp < 2.5

    def test_empty_stream(self):
        stream = VirtualStream(loads=[], length=0)
        result = stride_mlp(stream, {}, MachineConfig())
        assert result.mlp == 1.0

    def test_no_misses(self):
        stream = VirtualStream(
            loads=[VirtualLoad(position=i, pc=0x10, miss_weight=0.0)
                   for i in range(100)],
            length=1000,
        )
        result = stride_mlp(stream, {1: 1.0}, MachineConfig())
        assert result.mlp == 1.0
        assert result.llc_misses == 0.0

    def test_mlp_at_least_one(self):
        stream = VirtualStream(
            loads=[VirtualLoad(position=0, pc=0x10, miss_weight=1.0,
                               independence=0.0)],
            length=256,
        )
        result = stride_mlp(stream, {1: 1.0}, MachineConfig())
        assert result.mlp >= 1.0

    def test_prefetch_reduces_miss_weight(self):
        from repro.isa import Instruction, MacroOp
        # One strided load with large gaps: prefetchable and timely.
        stream_instrs = []
        for i in range(2000):
            if i % 200 == 0:
                stream_instrs.append(Instruction(
                    pc=0x100, op=MacroOp.LOAD, dst=1, addr=(i // 200) * 64,
                ))
            else:
                stream_instrs.append(Instruction(pc=0x300 + (i % 32) * 4,
                                                 op=MacroOp.INT_ALU, dst=9))
        memory = profile_micro_trace_memory(stream_instrs)
        statstack = make_statstack_always_miss()
        base = MachineConfig(prefetch=False)
        pf = MachineConfig(prefetch=True)
        without = build_virtual_stream(memory, statstack, base)
        with_pf = build_virtual_stream(memory, statstack, pf)
        assert with_pf.total_miss_weight < without.total_miss_weight
