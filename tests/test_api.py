"""The programmatic API: ExperimentSpec, RunResult, RunStore, Session."""

import json
import os

import pytest

from repro.api import (
    EXPERIMENT_KINDS,
    ExperimentSpec,
    RunResult,
    RunStore,
    Session,
    SpecError,
    WorkerPool,
)


def _mp_available() -> bool:
    """Whether this platform can create worker processes."""
    try:
        import multiprocessing

        with multiprocessing.Pool(1):
            pass
        return True
    except (ImportError, OSError, ValueError):
        return False


# ----------------------------------------------------------------------
# ExperimentSpec
# ----------------------------------------------------------------------


class TestExperimentSpec:
    def test_kinds(self):
        assert EXPERIMENT_KINDS == ("dvfs", "predict", "profile",
                                    "search", "sweep", "validate")

    def test_defaults_filled(self):
        spec = ExperimentSpec("sweep", workloads=["gcc"])
        assert spec.params["limit"] is None
        assert spec.params["objective"] is None
        assert spec.params["instructions"] == 50_000

    def test_json_round_trip(self, tmp_path):
        spec = ExperimentSpec("validate", workloads=["gcc", "mcf"],
                              limit=8, train_fraction=0.5)
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.fingerprint == spec.fingerprint

        path = str(tmp_path / "spec.json")
        spec.save(path)
        assert ExperimentSpec.load(path) == spec
        # The file is plain JSON anyone can write by hand.
        data = json.load(open(path))
        assert data["kind"] == "validate"
        assert data["params"]["limit"] == 8

    def test_sparse_and_full_specs_fingerprint_identically(self):
        sparse = ExperimentSpec("predict", workload="gcc")
        full = ExperimentSpec("predict", dict(sparse.params))
        assert sparse.fingerprint == full.fingerprint
        assert len(sparse.fingerprint) == 64

    def test_fingerprint_changes_with_params(self):
        a = ExperimentSpec("sweep", workloads=["gcc"], limit=4)
        b = ExperimentSpec("sweep", workloads=["gcc"], limit=5)
        assert a.fingerprint != b.fingerprint

    def test_workers_are_not_part_of_the_spec(self):
        with pytest.raises(SpecError, match="unknown sweep spec"):
            ExperimentSpec("sweep", workloads=["gcc"], workers=4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown experiment kind"):
            ExperimentSpec("simulate", workload="gcc")

    def test_required_params_enforced(self):
        with pytest.raises(SpecError, match="requires 'workloads'"):
            ExperimentSpec("profile")
        with pytest.raises(SpecError, match="exactly one of"):
            ExperimentSpec("predict")
        with pytest.raises(SpecError, match="exactly one of"):
            ExperimentSpec("dvfs", profile="a.profile", workload="gcc")
        with pytest.raises(SpecError, match="profiles.*workloads"):
            ExperimentSpec("search")

    def test_ranges_validated(self):
        with pytest.raises(SpecError, match="--limit"):
            ExperimentSpec("sweep", workloads=["gcc"], limit=-1)
        with pytest.raises(SpecError, match="--train-fraction"):
            ExperimentSpec("validate", workloads=["gcc"],
                           train_fraction=1.0)
        with pytest.raises(SpecError, match="budget"):
            ExperimentSpec("search", workloads=["gcc"], budget=0)
        with pytest.raises(SpecError, match="optimizer"):
            ExperimentSpec("search", workloads=["gcc"],
                           optimizer="gradient")
        with pytest.raises(SpecError, match="objective"):
            ExperimentSpec("sweep", workloads=["gcc"], objective="ipc")

    def test_string_coerced_to_list(self):
        spec = ExperimentSpec("profile", workloads="gcc")
        assert spec.params["workloads"] == ["gcc"]

    def test_coerce_accepts_plain_mappings(self):
        spec = ExperimentSpec.coerce(
            {"kind": "predict", "params": {"workload": "gcc"}}
        )
        assert spec.kind == "predict"


# ----------------------------------------------------------------------
# RunResult + RunStore
# ----------------------------------------------------------------------


@pytest.fixture()
def sweep_spec():
    return ExperimentSpec("sweep", workloads=["gcc"], limit=4,
                          instructions=3000)


class TestRunResult:
    def test_round_trip(self, tmp_path, sweep_spec):
        result = RunResult(spec=sweep_spec, data={"x": [1, 2], "y": None})
        rebuilt = RunResult.from_dict(result.to_dict())
        assert rebuilt.data == result.data
        assert rebuilt.spec == result.spec
        assert rebuilt.fingerprint == result.fingerprint
        assert rebuilt.spec_fingerprint == sweep_spec.fingerprint

        path = str(tmp_path / "run.json")
        result.save(path)
        assert RunResult.load(path).fingerprint == result.fingerprint

    def test_cached_flag_not_serialized(self, sweep_spec):
        result = RunResult(spec=sweep_spec, data={}, cached=True)
        assert "cached" not in result.to_dict()
        assert RunResult.from_dict(result.to_dict()).cached is False

    def test_version_checked(self, sweep_spec):
        data = RunResult(spec=sweep_spec, data={}).to_dict()
        data["format_version"] = 99
        with pytest.raises(SpecError, match="format version"):
            RunResult.from_dict(data)


class TestRunStore:
    def test_miss_then_hit(self, tmp_path, sweep_spec):
        store = RunStore(str(tmp_path / "runs"))
        assert store.get(sweep_spec) is None
        assert sweep_spec not in store

        result = RunResult(spec=sweep_spec, data={"answer": 42})
        key = store.put(result)
        assert key == sweep_spec.fingerprint
        assert sweep_spec in store
        loaded = store.get(sweep_spec)
        assert loaded.data == {"answer": 42}
        assert loaded.fingerprint == result.fingerprint

    def test_different_spec_misses(self, tmp_path, sweep_spec):
        store = RunStore(str(tmp_path / "runs"))
        store.put(RunResult(spec=sweep_spec, data={}))
        other = ExperimentSpec("sweep", workloads=["gcc"], limit=5,
                               instructions=3000)
        assert store.get(other) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, sweep_spec):
        store = RunStore(str(tmp_path / "runs"))
        store.put(RunResult(spec=sweep_spec, data={}))
        with open(store.path(sweep_spec), "w") as handle:
            handle.write("{not json")
        assert store.get(sweep_spec) is None

    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path,
                                                      sweep_spec):
        store = RunStore(str(tmp_path / "runs"))
        store.put(RunResult(spec=sweep_spec, data={}))
        path = store.path(sweep_spec)
        with open(path, "w") as handle:
            handle.write("{not json")
        assert store.get(sweep_spec) is None
        assert store.corrupt == 1
        assert store.quarantined == 1
        # The broken payload is preserved beside the store for
        # post-mortem inspection; the slot itself is free again.
        assert not os.path.exists(path)
        with open(path + ".corrupt") as handle:
            assert handle.read() == "{not json"
        # A second lookup is a plain miss: nothing left to quarantine.
        assert store.get(sweep_spec) is None
        assert store.quarantined == 1

    def test_put_is_atomic_and_leaves_no_temp_files(self, tmp_path,
                                                    sweep_spec):
        store = RunStore(str(tmp_path / "runs"))
        store.put(RunResult(spec=sweep_spec, data={"answer": 42}))
        entries = os.listdir(tmp_path / "runs")
        assert entries == [os.path.basename(store.path(sweep_spec))]

    def test_session_skips_already_computed_runs(self, tmp_path,
                                                 sweep_spec):
        with Session(run_store=str(tmp_path / "runs")) as session:
            first = session.run(sweep_spec)
            second = session.run(sweep_spec)
        assert first.cached is False
        assert second.cached is True
        assert second.data == first.data

        # A fresh session over the same store also skips the work.
        with Session(run_store=str(tmp_path / "runs")) as session:
            third, fourth = session.run_many([
                sweep_spec,
                ExperimentSpec("sweep", workloads=["gcc"], limit=2,
                               instructions=3000),
            ])
        assert third.cached is True
        assert fourth.cached is False

    def test_edited_input_file_invalidates_cache(self, tmp_path):
        """Specs referencing files key on file *content*, not paths:
        re-profiling a referenced file must miss, not serve stale
        results computed from the old bytes."""
        from repro.cli import main

        path = str(tmp_path / "gcc.profile")
        main(["profile", "gcc", "-o", path, "--instructions", "3000"])
        spec = ExperimentSpec("sweep", profiles=[path], limit=4)
        runs = str(tmp_path / "runs")
        with Session(run_store=runs) as session:
            first = session.run(spec)
            assert session.run(spec).cached is True
        # Same path, different contents.
        main(["profile", "gcc", "-o", path, "--instructions", "4000"])
        with Session(run_store=runs) as session:
            rerun = session.run(spec)
        assert rerun.cached is False
        assert rerun.data != first.data

    def test_profile_runs_always_execute(self, tmp_path):
        spec = ExperimentSpec("profile", workloads=["gcc"],
                              instructions=3000,
                              output=str(tmp_path / "gcc.profile"))
        with Session(run_store=str(tmp_path / "runs")) as session:
            session.run(spec)
            (tmp_path / "gcc.profile").unlink()
            again = session.run(spec)
        assert again.cached is False
        # The side effect happened again: the file was re-written.
        assert (tmp_path / "gcc.profile").exists()


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------


class TestSession:
    def test_registry_profiles_once(self, tmp_path):
        with Session() as session:
            first = session.profile_workload("gcc", instructions=3000)
            second = session.profile_workload("gcc", instructions=3000)
            other = session.profile_workload("gcc", instructions=4000)
        assert first is second
        assert other is not first

    def test_predict_by_workload_matches_profile_file(self, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "gcc.profile")
        assert main(["profile", "gcc", "-o", path,
                     "--instructions", "3000"]) == 0
        with Session() as session:
            by_file = session.run(ExperimentSpec(
                "predict", profile=path)).data
            by_name = session.run(ExperimentSpec(
                "predict", workload="gcc", instructions=3000)).data
        assert by_file == by_name

    def test_unknown_workload_raises_keyerror(self):
        with Session() as session:
            with pytest.raises(KeyError):
                session.run(ExperimentSpec("predict", workload="doom"))

    def test_sweep_duplicate_names_rejected(self, tmp_path):
        from repro.cli import main

        a = str(tmp_path / "a.profile")
        main(["profile", "gcc", "-o", a, "--instructions", "3000"])
        with Session() as session:
            with pytest.raises(SpecError, match="duplicate profile"):
                session.run(ExperimentSpec(
                    "sweep", profiles=[a], workloads=["gcc"],
                    instructions=3000, limit=2))

    def test_validate_empty_grid_rejected(self):
        with Session() as session:
            with pytest.raises(SpecError, match="empty configuration"):
                session.run(ExperimentSpec(
                    "validate", workloads=["gcc"], limit=0,
                    instructions=3000))

    def test_chain_shares_one_pool_and_matches_per_call_results(
        self, tmp_path
    ):
        """The acceptance pipeline: profile -> sweep -> validate on one
        session creates exactly one worker pool (instrumented) while
        every stage's payload matches a fresh serial per-call run."""
        specs = [
            ExperimentSpec("profile", workloads=["gcc"],
                           instructions=3000),
            ExperimentSpec("sweep", workloads=["gcc"],
                           instructions=3000, limit=6),
            ExperimentSpec("validate", workloads=["gcc"],
                           instructions=3000, limit=4,
                           train_fraction=0.0),
            ExperimentSpec("dvfs", workload="gcc", instructions=3000),
        ]
        with Session(workers=2) as session:
            chained = [session.run(spec) for spec in specs]
            if _mp_available():
                assert session.pool.pools_created == 1
            else:
                assert session.pool.pools_created == 0

        fresh = []
        for spec in specs:
            with Session(workers=1) as session:
                fresh.append(session.run(spec))

        def _stable(result):
            data = json.loads(json.dumps(result.data))
            if result.kind == "profile":
                for entry in data["profiles"]:
                    entry["seconds"] = 0.0
            if result.kind == "validate":
                # Worker counts are execution metadata, not results.
                data.pop("model_workers")
                data.pop("sim_workers")
            return data

        for chained_result, fresh_result in zip(chained, fresh):
            assert _stable(chained_result) == _stable(fresh_result)

    def test_search_reuses_session_engine(self, tmp_path):
        spec = ExperimentSpec("search", workloads=["gcc"],
                              instructions=3000, optimizer="random",
                              budget=6, seed=1)
        with Session() as session:
            first = session.run(spec).data
            second = session.run(spec).data
        first["trajectory"].pop("wall_seconds")
        second["trajectory"].pop("wall_seconds")
        assert first == second


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------


def _echo(state, task):
    """Module-level worker function (must pickle)."""
    return (state, task)


class TestWorkerPool:
    def test_serial_pool_is_never_created(self):
        pool = WorkerPool(1)
        assert not pool.parallel
        assert pool.pools_created == 0

    @pytest.mark.skipif(not _mp_available(),
                        reason="platform cannot create processes")
    def test_state_shipped_once_and_reused(self):
        with WorkerPool(2) as pool:
            out = list(pool.imap(_echo, {"k": 1}, [1, 2, 3]))
            assert out == [({"k": 1}, 1), ({"k": 1}, 2), ({"k": 1}, 3)]
            # Second stage on the same OS pool.
            out = list(pool.imap(_echo, "s2", ["a"]))
            assert out == [("s2", "a")]
            assert pool.pools_created == 1

    @pytest.mark.skipif(not _mp_available(),
                        reason="platform cannot create processes")
    def test_close_then_reuse_creates_a_new_pool(self):
        pool = WorkerPool(2)
        list(pool.imap(_echo, None, [1]))
        pool.close()
        list(pool.imap(_echo, None, [2]))
        assert pool.pools_created == 2
        pool.close()

    @pytest.mark.skipif(not _mp_available(),
                        reason="platform cannot create processes")
    def test_large_state_spills_to_file_and_is_cleaned_up(self):
        import os

        pool = WorkerPool(2)
        pool.inline_state_limit = 64  # force the spill path
        state = {"blob": "x" * 4096}
        with pool:
            stream = pool.imap(_echo, state, [1, 2])
            spill_dir = pool._spill_dir
            assert spill_dir is not None and os.listdir(spill_dir)
            out = list(stream)
            assert out == [(state, 1), (state, 2)]
            # Fully-consumed stream reclaims its own spill file.
            assert os.listdir(spill_dir) == []
        assert not os.path.exists(spill_dir)  # close() removed it

    @pytest.mark.skipif(not _mp_available(),
                        reason="platform cannot create processes")
    def test_abandoned_stream_reclaims_spill(self):
        import os

        pool = WorkerPool(2)
        pool.inline_state_limit = 64
        state = {"blob": "y" * 4096}
        with pool:
            stream = pool.imap(_echo, state, [1, 2, 3])
            next(stream)
            spill_dir = pool._spill_dir
            assert os.listdir(spill_dir)
            stream.close()  # consumer walks away mid-stream
            assert os.listdir(spill_dir) == []


# ----------------------------------------------------------------------
# Deprecation shim
# ----------------------------------------------------------------------


class TestDeprecationShim:
    def test_evaluate_design_space_warns(self, gcc_profile):
        import repro
        import repro.explore
        from repro.core import nehalem

        # The shim stays re-exported from both package roots...
        assert repro.evaluate_design_space is \
            repro.explore.evaluate_design_space
        # ...and warns, pointing at the replacements.
        with pytest.warns(DeprecationWarning,
                          match="Session|SweepEngine"):
            results = repro.evaluate_design_space(
                [gcc_profile], [nehalem()]
            )
        assert set(results) == {"gcc"}
