"""Branch predictor simulator tests (thesis §3.5 substrate)."""

import random

import pytest

from repro.frontend.predictors import (
    make_predictor,
    misprediction_rate,
    simulate_predictor,
)
from repro.isa import Instruction, MacroOp
from repro.workloads.trace import Trace

PREDICTORS = ["always-taken", "bimodal", "GAg", "GAp", "PAp", "gshare",
              "tournament"]


def branch_trace(outcomes, pc=0x100):
    return Trace([
        Instruction(pc=pc, op=MacroOp.BRANCH, taken=bool(t))
        for t in outcomes
    ], name="branches")


def multi_branch_trace(outcome_map, length):
    """Interleave several static branches."""
    instructions = []
    rng = random.Random(5)
    pcs = list(outcome_map)
    for i in range(length):
        pc = pcs[i % len(pcs)]
        pattern = outcome_map[pc]
        taken = pattern(i, rng)
        instructions.append(
            Instruction(pc=pc, op=MacroOp.BRANCH, taken=taken)
        )
    return Trace(instructions, name="multi")


class TestBasics:
    @pytest.mark.parametrize("name", PREDICTORS)
    def test_always_taken_stream_learned(self, name):
        trace = branch_trace([True] * 500)
        rate = misprediction_rate(make_predictor(name), trace)
        assert rate < 0.05

    @pytest.mark.parametrize("name", ["bimodal", "GAg", "gshare",
                                      "tournament", "PAp", "GAp"])
    def test_never_taken_stream_learned(self, name):
        trace = branch_trace([False] * 500)
        rate = misprediction_rate(make_predictor(name), trace)
        assert rate < 0.05

    def test_always_taken_predictor_on_never_taken(self):
        trace = branch_trace([False] * 100)
        rate = misprediction_rate(make_predictor("always-taken"), trace)
        assert rate == 1.0

    def test_unknown_predictor_rejected(self):
        with pytest.raises(KeyError):
            make_predictor("perceptron")

    def test_simulate_counts_branches_only(self, gcc_trace):
        predictor = make_predictor("gshare")
        branches, misses = simulate_predictor(predictor, gcc_trace)
        expected = sum(1 for i in gcc_trace if i.is_branch)
        assert branches == expected
        assert 0 <= misses <= branches


class TestPatternLearning:
    @pytest.mark.parametrize("name", ["GAg", "gshare", "PAp", "tournament"])
    def test_alternating_pattern_learned_by_history(self, name):
        # T N T N ... is perfectly predictable with 1 bit of history
        # (thesis Algorithm 3.3 branch 1).
        trace = branch_trace([i % 2 == 0 for i in range(1000)])
        rate = misprediction_rate(make_predictor(name), trace)
        assert rate < 0.05

    def test_alternating_pattern_defeats_bimodal(self):
        trace = branch_trace([i % 2 == 0 for i in range(1000)])
        rate = misprediction_rate(make_predictor("bimodal"), trace)
        assert rate > 0.3  # no history, counter oscillates

    @pytest.mark.parametrize("name", ["GAg", "gshare", "PAp"])
    def test_period_4_pattern_learned(self, name):
        trace = branch_trace([i % 4 == 0 for i in range(2000)])
        rate = misprediction_rate(make_predictor(name), trace)
        assert rate < 0.10

    @pytest.mark.parametrize("name", PREDICTORS)
    def test_random_branches_near_half(self, name):
        # Thesis Algorithm 3.3 branch 2: random outcomes cannot be
        # predicted better than the bias.
        rng = random.Random(13)
        trace = branch_trace([rng.random() < 0.5 for _ in range(2000)])
        rate = misprediction_rate(make_predictor(name), trace)
        assert rate > 0.35

    def test_pap_separates_interleaved_branches(self):
        # Two branches with different periodic patterns: per-branch
        # history (PAp) should learn both.
        outcome_map = {
            0x100: lambda i, rng: (i // 2) % 2 == 0,
            0x200: lambda i, rng: (i // 2) % 3 == 0,
        }
        trace = multi_branch_trace(outcome_map, 3000)
        rate = misprediction_rate(make_predictor("PAp"), trace)
        assert rate < 0.15

    def test_tournament_at_least_as_good_as_parts_on_mixed(self):
        outcome_map = {
            0x100: lambda i, rng: (i // 2) % 2 == 0,
            0x200: lambda i, rng: rng.random() < 0.2,
        }
        trace = multi_branch_trace(outcome_map, 3000)
        tournament = misprediction_rate(make_predictor("tournament"), trace)
        gap = misprediction_rate(make_predictor("GAp"), trace)
        pap = misprediction_rate(make_predictor("PAp"), trace)
        assert tournament <= max(gap, pap) + 0.05
