"""Observability layer: tracer, metrics, piggyback merge, CLI flags.

Pins the telemetry contract from three directions:

* unit -- Tracer/Span determinism under a fake clock, Chrome-format
  export/read round-trip, MetricsRegistry snapshot/merge/diff and the
  null twins' no-op guarantees;
* accounting -- RunStore/ProfileStore corrupt-entry counters with
  their logged warnings, and the flush-delta protocol (including the
  disabled-registry guard that keeps deltas pending);
* integration -- telemetry on vs off must leave results, DesignPoint
  streams, cache states, fingerprints and stored bytes bitwise
  identical at every worker count, while the attached telemetry block
  and the CLI ``--trace`` / ``--metrics`` / ``stats`` surface stay
  well-formed.
"""

import json
import logging

import pytest

from repro import obs
from repro.api import ExperimentSpec, RunResult, RunStore, Session
from repro.core import AnalyticalModel, ModelCache, design_space
from repro.explore.engine import SweepEngine
from repro.obs import (
    METRICS_EVENT,
    MetricsRegistry,
    NULL_METRICS,
    NULL_TELEMETRY,
    NullTracer,
    Telemetry,
    Tracer,
    read_trace,
    span_stats,
)

from equivalence import (
    assert_cache_states_equal,
    assert_points_identical,
)


def _mp_available() -> bool:
    """Whether this platform can create worker processes."""
    try:
        import multiprocessing

        with multiprocessing.Pool(1):
            pass
        return True
    except (ImportError, OSError, ValueError):
        return False


def fake_clock(step_us: int = 10):
    """A deterministic clock advancing ``step_us`` µs per call."""
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step_us * 1e-6
        return state["now"]

    return clock


# ----------------------------------------------------------------------
# Tracer / Span
# ----------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_deterministic_under_fake_clock(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("outer", kind="sweep"):
            with tracer.span("inner", batch=1):
                pass
        # Completion order: children before parents.
        assert [e["name"] for e in tracer.events] == ["inner", "outer"]
        inner, outer = tracer.events
        assert inner["ph"] == outer["ph"] == "X"
        # 10 µs per tick: origin=10, outer 20..50, inner 30..40.
        assert inner["ts"] == pytest.approx(20.0)
        assert inner["dur"] == pytest.approx(10.0)
        assert outer["ts"] == pytest.approx(10.0)
        assert outer["dur"] == pytest.approx(30.0)
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert inner["args"] == {"batch": 1}
        assert outer["args"] == {"kind": "sweep"}

    def test_span_seconds_is_the_measured_duration(self):
        tracer = Tracer(clock=fake_clock(1000))
        with tracer.span("timed") as span:
            pass
        assert span.seconds == pytest.approx(1e-3)

    def test_export_round_trips_and_is_line_parseable(self, tmp_path):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("a"):
            pass
        registry = MetricsRegistry()
        registry.inc("model_cache.hits", 3)
        path = str(tmp_path / "trace.json")
        tracer.export(path, metrics=registry)

        # Whole-file form: a valid JSON array, Chrome-loadable.
        events = json.load(open(path))
        assert events[0]["ph"] == "M"
        assert events[0]["args"] == {"name": "repro"}
        assert events[-1]["name"] == METRICS_EVENT
        assert (events[-1]["args"]["metrics"]["counters"]
                == {"model_cache.hits": 3})
        assert any(e.get("ph") == "X" and e["name"] == "a"
                   for e in events)

        # Line form: every event line parses on its own (JSONL-like).
        assert read_trace(path) == events
        lines = open(path).read().splitlines()
        assert lines[0] == "[" and lines[-1] == "]"
        for line in lines[1:-1]:
            json.loads(line.rstrip(","))

    def test_read_trace_tolerates_unterminated_array(self, tmp_path):
        path = str(tmp_path / "partial.json")
        with open(path, "w") as handle:
            handle.write('[\n{"name": "x", "ph": "X", "ts": 1, '
                         '"dur": 2},\n')
        events = read_trace(path)
        assert events == [{"name": "x", "ph": "X", "ts": 1, "dur": 2}]

    def test_span_stats_aggregates_complete_events_only(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 2000.0},
            {"name": "a", "ph": "X", "ts": 5, "dur": 4000.0},
            {"name": "b", "ph": "X", "ts": 9, "dur": 9000.0},
            {"name": "meta", "ph": "M"},
            {"name": "i", "ph": "i", "ts": 1},
        ]
        stats = span_stats(events)
        assert list(stats) == ["b", "a"]  # descending total time
        assert stats["a"] == {"calls": 2, "total_ms": 6.0,
                              "min_ms": 2.0, "max_ms": 4.0,
                              "mean_ms": 3.0}

    def test_null_tracer_times_but_records_nothing(self, tmp_path):
        tracer = NullTracer()
        with tracer.span("unrecorded") as span:
            sum(range(100))
        assert span.seconds >= 0.0  # still a usable timing source
        assert tracer.events == ()
        assert tracer.enabled is False
        with pytest.raises(RuntimeError, match="disabled tracer"):
            tracer.export(str(tmp_path / "never.json"))


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("b.counter")
        registry.inc("a.counter", 5)
        registry.set_gauge("pool.workers", 2)
        registry.observe("task_seconds", 0.3)
        registry.observe("task_seconds", 0.7)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.counter", "b.counter"]
        assert snapshot["counters"]["a.counter"] == 5
        assert snapshot["gauges"] == {"pool.workers": 2}
        histogram = snapshot["histograms"]["task_seconds"]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(1.0)
        assert histogram["min"] == 0.3 and histogram["max"] == 0.7
        assert sum(histogram["buckets"].values()) == 2
        assert len(registry) == 4  # 2 counters + 1 gauge + 1 histogram

    def test_merge_is_deterministic_and_additive(self):
        deltas = []
        for value in (1, 10):
            source = MetricsRegistry()
            source.inc("tasks", value)
            source.set_gauge("workers", value)
            source.observe("seconds", value * 0.1)
            deltas.append(source.snapshot())

        merged_ab = MetricsRegistry()
        for delta in deltas:
            merged_ab.merge(delta)
        snapshot = merged_ab.snapshot()
        assert snapshot["counters"]["tasks"] == 11
        assert snapshot["gauges"]["workers"] == 10  # last write wins
        histogram = snapshot["histograms"]["seconds"]
        assert histogram["count"] == 2
        assert histogram["min"] == pytest.approx(0.1)
        assert histogram["max"] == pytest.approx(1.0)

        # Same deltas, same order, fresh registry: identical result.
        replay = MetricsRegistry()
        for delta in deltas:
            replay.merge(delta)
        assert replay.snapshot() == snapshot

    def test_diff_drops_zero_deltas(self):
        registry = MetricsRegistry()
        registry.inc("warm", 4)
        baseline = registry.snapshot()
        registry.inc("hot", 2)
        delta = registry.diff(baseline)
        assert delta["counters"] == {"hot": 2}  # unchanged 'warm' gone
        assert registry.diff(None)["counters"] == {"hot": 2, "warm": 4}

    def test_null_metrics_is_a_no_op(self):
        NULL_METRICS.inc("anything")
        NULL_METRICS.set_gauge("g", 1)
        NULL_METRICS.observe("h", 0.5)
        assert NULL_METRICS.enabled is False
        assert len(NULL_METRICS) == 0
        snapshot = NULL_METRICS.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}


# ----------------------------------------------------------------------
# Telemetry activation
# ----------------------------------------------------------------------


class TestTelemetryActivation:
    def test_default_is_the_null_telemetry(self):
        assert obs.current() is NULL_TELEMETRY
        assert NULL_TELEMETRY.enabled is False
        assert obs.metrics() is NULL_METRICS

    def test_activate_nests_and_restores(self):
        outer = Telemetry(trace=True, metrics=True)
        inner = Telemetry(trace=False, metrics=True)
        with obs.activate(outer):
            assert obs.current() is outer
            with obs.activate(inner):
                assert obs.current() is inner
                assert obs.metrics() is inner.metrics
            assert obs.current() is outer
        assert obs.current() is NULL_TELEMETRY

    def test_module_span_records_into_the_active_tracer(self):
        telemetry = Telemetry(trace=True, metrics=True,
                              clock=fake_clock())
        with obs.activate(telemetry):
            with obs.span("stage", n=1):
                pass
        assert [e["name"] for e in telemetry.tracer.events] == ["stage"]

    def test_summary_shape(self):
        telemetry = Telemetry(trace=True, metrics=True,
                              clock=fake_clock())
        with telemetry.span("s"):
            pass
        telemetry.metrics.inc("c")
        summary = telemetry.summary()
        assert set(summary) == {"spans", "metrics"}
        assert summary["spans"]["s"]["calls"] == 1
        assert summary["metrics"]["counters"] == {"c": 1}


# ----------------------------------------------------------------------
# Store accounting: corrupt entries, flush deltas
# ----------------------------------------------------------------------


@pytest.fixture()
def sweep_spec():
    return ExperimentSpec("sweep", workloads=["gcc"], limit=4,
                          instructions=3000)


class TestStoreAccounting:
    def test_run_store_counts_and_warns_on_corrupt_entry(
            self, tmp_path, sweep_spec, caplog):
        store = RunStore(str(tmp_path / "runs"))
        store.put(RunResult(spec=sweep_spec, data={}))
        with open(store.path(sweep_spec), "w") as handle:
            handle.write("{not json")
        with caplog.at_level(logging.WARNING, logger="repro.api.runstore"):
            assert store.get(sweep_spec) is None
        assert store.corrupt == 1 and store.misses == 1
        assert store.puts == 1 and store.hits == 0
        assert any("corrupt run-store entry" in record.message
                   for record in caplog.records)

    def test_run_store_flush_publishes_deltas_once(self, tmp_path,
                                                   sweep_spec):
        store = RunStore(str(tmp_path / "runs"))
        store.get(sweep_spec)  # miss
        store.put(RunResult(spec=sweep_spec, data={}))
        registry = MetricsRegistry()
        store.flush_metrics(registry)
        assert registry.snapshot()["counters"] == {
            "run_store.misses": 1, "run_store.puts": 1}
        store.flush_metrics(registry)  # no new activity: no change
        assert registry.snapshot()["counters"] == {
            "run_store.misses": 1, "run_store.puts": 1}

    def test_flush_into_disabled_registry_keeps_deltas_pending(
            self, tmp_path, sweep_spec):
        store = RunStore(str(tmp_path / "runs"))
        store.get(sweep_spec)  # miss
        store.flush_metrics(NULL_METRICS)  # must NOT consume the delta
        registry = MetricsRegistry()
        store.flush_metrics(registry)
        assert registry.snapshot()["counters"] == {"run_store.misses": 1}

    def test_profile_store_counts_and_warns_on_corrupt_tables(
            self, tmp_path, gcc_profile, caplog):
        from repro.profiler.serialization import ProfileStore

        store = ProfileStore(str(tmp_path / "profiles"))
        key = store.warm(gcc_profile)
        assert store.tables_misses == 1  # cold warm computed them
        with open(store.tables_path(key), "w") as handle:
            handle.write("{broken")
        with caplog.at_level(logging.WARNING,
                             logger="repro.profiler.serialization"):
            assert store.load_tables(key) is None
        assert store.tables_corrupt == 1
        assert any("corrupt StatStack table entry" in record.message
                   for record in caplog.records)
        registry = MetricsRegistry()
        store.flush_metrics(registry)
        counters = registry.snapshot()["counters"]
        assert counters["profile_store.tables_corrupt"] == 1
        assert counters["profile_store.profiles_stored"] == 1

    def test_model_cache_flush(self, gcc_profile, reference_config):
        model = AnalyticalModel(cache=ModelCache())
        model.predict(gcc_profile, reference_config)
        model.predict(gcc_profile, reference_config)
        assert model.cache.misses > 0 and model.cache.hits > 0
        registry = MetricsRegistry()
        model.cache.flush_metrics(registry)
        counters = registry.snapshot()["counters"]
        assert counters["model_cache.misses"] == model.cache.misses
        assert counters["model_cache.hits"] == model.cache.hits


# ----------------------------------------------------------------------
# Session integration: telemetry block, equivalence on/off
# ----------------------------------------------------------------------


class TestSessionTelemetry:
    def test_telemetry_block_attached_and_excluded_from_identity(
            self, tmp_path, sweep_spec):
        telemetry = Telemetry(trace=True, metrics=True)
        runs = str(tmp_path / "runs")
        with Session(run_store=runs, telemetry=telemetry) as session:
            result = session.run(sweep_spec)

        block = result.telemetry
        assert block is not None
        spans = block["spans"]
        assert "session.run" in spans and "run.sweep" in spans
        assert "engine.sweep" in spans
        counters = block["metrics"]["counters"]
        assert counters["engine.points"] == 4
        assert counters["model_cache.misses"] > 0
        assert counters["run_store.misses"] == 1
        assert counters["run_store.puts"] == 1

        # The block is reporting-only: not part of the identity.
        full = result.to_dict()
        bare = result.to_dict(include_telemetry=False)
        assert "telemetry" in full and "telemetry" not in bare
        assert result.fingerprint == RunResult.from_dict(bare).fingerprint
        # And never part of the stored bytes.
        stored = json.load(open(RunStore(runs).path(sweep_spec)))
        assert "telemetry" not in stored

    def test_warm_run_reports_a_run_store_hit(self, tmp_path,
                                              sweep_spec):
        runs = str(tmp_path / "runs")
        with Session(run_store=runs) as session:
            session.run(sweep_spec)
        telemetry = Telemetry(trace=True, metrics=True)
        with Session(run_store=runs, telemetry=telemetry) as session:
            result = session.run(sweep_spec)
        assert result.cached is True
        counters = result.telemetry["metrics"]["counters"]
        assert counters["run_store.hits"] == 1
        assert "run_store.lookup" in result.telemetry["spans"]

    def test_no_block_when_telemetry_disabled(self, tmp_path,
                                              sweep_spec):
        with Session(run_store=str(tmp_path / "runs")) as session:
            result = session.run(sweep_spec)
        assert result.telemetry is None
        assert "telemetry" not in result.to_dict()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_results_bitwise_identical_on_vs_off(self, tmp_path,
                                                 sweep_spec, workers):
        if workers > 1 and not _mp_available():
            pytest.skip("multiprocessing unavailable")

        def run(enabled: bool):
            telemetry = (Telemetry(trace=True, metrics=True)
                         if enabled else None)
            store = str(tmp_path / f"runs-{workers}-{enabled}")
            with Session(run_store=store, workers=workers,
                         telemetry=telemetry) as session:
                return session.run(sweep_spec)

        off = run(False)
        on = run(True)
        assert (json.dumps(on.to_dict(include_telemetry=False),
                           sort_keys=True)
                == json.dumps(off.to_dict(include_telemetry=False),
                              sort_keys=True))
        assert on.fingerprint == off.fingerprint


class TestEngineTelemetryEquivalence:
    def test_design_points_and_caches_identical_on_vs_off(
            self, gcc_profile):
        configs = design_space()[:8]

        def sweep(enabled: bool):
            # Attach an explicit cache so the engine leaves it on the
            # model after the sweep (per-run caches are detached).
            model = AnalyticalModel(cache=ModelCache())
            engine = SweepEngine(model=model, workers=1, batch_size=4)
            if enabled:
                with obs.activate(Telemetry(trace=True, metrics=True)):
                    points = engine.sweep([gcc_profile],
                                          configs)["gcc"]
            else:
                points = engine.sweep([gcc_profile], configs)["gcc"]
            return points, model.cache

        points_off, cache_off = sweep(False)
        points_on, cache_on = sweep(True)
        assert_points_identical(points_off, points_on)
        assert_cache_states_equal(cache_off, cache_on)

    @pytest.mark.skipif(not _mp_available(),
                        reason="multiprocessing unavailable")
    def test_pool_piggyback_merges_worker_deltas(self, gcc_profile):
        from repro.api import WorkerPool

        telemetry = Telemetry(trace=True, metrics=True)
        pool = WorkerPool(2)
        try:
            with obs.activate(telemetry):
                engine = SweepEngine(workers=2, batch_size=4,
                                     pool=pool)
                points = engine.sweep([gcc_profile],
                                      design_space()[:16])["gcc"]
        finally:
            pool.close()
        assert len(points) == 16
        snapshot = telemetry.metrics.snapshot()
        counters = snapshot["counters"]
        # Every submitted task came back with its delta merged.
        assert counters["pool.tasks"] == counters["pool.tasks_submitted"]
        assert counters["pool.tasks"] == counters["engine.batches"] == 4
        assert counters["engine.points"] == 16
        assert counters["model_cache.misses"] > 0  # from the workers
        assert snapshot["gauges"]["pool.workers"] == 2
        histogram = snapshot["histograms"]["pool.task_seconds"]
        assert histogram["count"] == 4


# ----------------------------------------------------------------------
# CLI: --trace / --metrics / repro stats
# ----------------------------------------------------------------------


class TestCliTelemetry:
    def test_run_with_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = str(tmp_path / "spec.json")
        ExperimentSpec("sweep", workloads=["gcc"], limit=4,
                       instructions=3000).save(spec_path)
        trace_path = str(tmp_path / "trace.json")
        runs = str(tmp_path / "runs")

        assert main(["run", spec_path, "--runs", runs,
                     "--trace", trace_path, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert f"trace -> {trace_path}" in out
        assert "-- telemetry" in out
        assert "session.run" in out
        assert "run_store.misses" in out

        events = read_trace(trace_path)
        names = [e["name"] for e in events]
        assert "session.run" in names and "engine.sweep" in names
        metrics_events = [e for e in events
                          if e["name"] == METRICS_EVENT]
        assert len(metrics_events) == 1
        counters = metrics_events[0]["args"]["metrics"]["counters"]
        assert counters["run_store.puts"] == 1

        # Warm pass: the hit shows up in the rendered metrics.
        assert main(["run", spec_path, "--runs", runs,
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "run_store.hits" in out

    def test_flags_accepted_before_the_subcommand(self, capsys):
        from repro.cli import main

        assert main(["--metrics", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "-- telemetry" in out

    def test_stats_reads_a_trace_back(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "trace.json")
        tracer = Tracer(clock=fake_clock())
        with tracer.span("session.run", kind="sweep"):
            pass
        registry = MetricsRegistry()
        registry.inc("model_cache.hits", 7)
        tracer.export(trace_path, metrics=registry)

        assert main(["stats", trace_path]) == 0
        out = capsys.readouterr().out
        assert "session.run" in out
        assert "model_cache.hits" in out

        json_path = str(tmp_path / "stats.json")
        assert main(["stats", trace_path, "--json", json_path]) == 0
        data = json.load(open(json_path))
        assert data["spans"]["session.run"]["calls"] == 1
        assert data["metrics"]["counters"]["model_cache.hits"] == 7

    def test_no_flags_means_no_telemetry_output(self, capsys):
        from repro.cli import main

        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "-- telemetry" not in out
