"""Workload substrate tests: trace container, generator, the suite."""

import pytest

from repro.isa import MacroOp, UopKind
from repro.workloads import (
    Trace,
    generate_trace,
    make_suite,
    make_workload,
    workload_names,
)
from repro.workloads.generator import (
    AluSpec,
    BranchSpec,
    KernelSpec,
    LoadSpec,
    StoreSpec,
    WorkloadSpec,
)


class TestTraceContainer:
    def test_length_and_iteration(self, gcc_trace):
        assert len(gcc_trace) == sum(1 for _ in gcc_trace)

    def test_slicing_returns_trace(self, gcc_trace):
        sub = gcc_trace[100:200]
        assert isinstance(sub, Trace)
        assert len(sub) == 100

    def test_stats_consistency(self, gcc_trace):
        stats = gcc_trace.stats()
        assert stats.num_instructions == len(gcc_trace)
        assert stats.num_uops >= stats.num_instructions
        assert sum(stats.macro_mix.values()) == stats.num_instructions
        assert sum(stats.uop_mix.values()) == stats.num_uops

    def test_windows(self, gcc_trace):
        windows = list(gcc_trace.windows(5000))
        assert sum(len(w) for w in windows) == len(gcc_trace)


class TestGenerator:
    def test_exact_length(self):
        spec = make_workload("gcc")
        trace = generate_trace(spec, max_instructions=12345)
        assert len(trace) == 12345

    def test_deterministic_with_seed(self):
        a = generate_trace(make_workload("gcc", seed=7),
                           max_instructions=5000)
        b = generate_trace(make_workload("gcc", seed=7),
                           max_instructions=5000)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = generate_trace(make_workload("gcc", seed=1),
                           max_instructions=5000)
        b = generate_trace(make_workload("gcc", seed=2),
                           max_instructions=5000)
        assert list(a) != list(b)

    def test_stride_pattern_addresses(self):
        kernel = KernelSpec("k", [
            LoadSpec(dst=1, pattern="stride", strides=(64,),
                     region=1 << 20, base=0x1000),
            BranchSpec(pattern="loop"),
        ], iterations=10)
        trace = generate_trace(WorkloadSpec("w", [kernel]))
        addrs = [i.addr for i in trace if i.is_load]
        assert addrs == [0x1000 + 64 * k for k in range(10)]

    def test_multi_stride_cycles(self):
        kernel = KernelSpec("k", [
            LoadSpec(dst=1, pattern="multi_stride", strides=(4, 12),
                     region=1 << 20, base=0),
            BranchSpec(pattern="loop"),
        ], iterations=5)
        trace = generate_trace(WorkloadSpec("w", [kernel]))
        addrs = [i.addr for i in trace if i.is_load]
        assert addrs == [0, 4, 16, 20, 32]

    def test_chase_loads_self_depend(self):
        kernel = KernelSpec("k", [
            LoadSpec(dst=3, pattern="chase", region=1 << 16, base=0),
            BranchSpec(pattern="loop"),
        ], iterations=5)
        trace = generate_trace(WorkloadSpec("w", [kernel]))
        loads = [i for i in trace if i.is_load]
        assert all(i.src1 == 3 for i in loads)

    def test_loop_branch_taken_until_last(self):
        kernel = KernelSpec("k", [BranchSpec(pattern="loop")], iterations=5)
        trace = generate_trace(WorkloadSpec("w", [kernel]))
        outcomes = [i.taken for i in trace]
        assert outcomes == [True, True, True, True, False]

    def test_periodic_branch(self):
        kernel = KernelSpec("k", [BranchSpec(pattern="periodic", period=3)],
                            iterations=6)
        trace = generate_trace(WorkloadSpec("w", [kernel]))
        outcomes = [i.taken for i in trace]
        assert outcomes == [True, False, False, True, False, False]

    def test_unknown_pattern_rejected(self):
        kernel = KernelSpec("k", [
            LoadSpec(dst=1, pattern="fractal"),
            BranchSpec(pattern="loop"),
        ], iterations=1)
        with pytest.raises(ValueError):
            generate_trace(WorkloadSpec("w", [kernel]))


class TestSuite:
    def test_twenty_nine_workloads(self):
        assert len(workload_names()) == 29

    def test_all_buildable(self):
        for spec in make_suite():
            trace = generate_trace(spec, max_instructions=500)
            assert len(trace) == 500

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_workload("doom")

    def test_uops_per_instruction_in_paper_range(self):
        # Thesis Fig 3.1: SPEC CPU 2006 uop/instruction between ~1.05
        # and ~1.4.
        for name in workload_names():
            trace = generate_trace(make_workload(name),
                                   max_instructions=3000)
            ratio = trace.stats().uops_per_instruction
            assert 1.0 <= ratio <= 1.5, name

    def test_suite_covers_behaviour_classes(self):
        # The suite must include pointer chasing, streaming and compute
        # behaviours for the figures to show spread.
        chase = generate_trace(make_workload("mcf"), max_instructions=2000)
        stream = generate_trace(make_workload("libquantum"),
                                max_instructions=2000)
        compute = generate_trace(make_workload("gamess"),
                                 max_instructions=2000)
        assert any(i.is_load and i.src1 == i.dst for i in chase)
        assert stream.stats().uop_mix.get(UopKind.LOAD, 0) > 0
        assert compute.stats().uop_mix.get(UopKind.FP_ALU, 0) > 0

    def test_phased_workload_has_two_kernels(self):
        spec = make_workload("astar")
        assert len(spec.kernels) == 2
        assert spec.rounds > 1
