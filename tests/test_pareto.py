"""Pareto tooling tests (thesis §7.4): front, metrics, hypervolume."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.explore.pareto import (
    StreamingParetoFront,
    _pareto_front_quadratic,
    hypervolume,
    hvr,
    pareto_front,
    pareto_metrics,
)

# Coordinates drawn from a small pool so random clouds contain ties and
# exact duplicates, the cases where a sort-based sweep can diverge from
# the all-pairs reference.
coordinate = st.one_of(
    st.sampled_from([1.0, 2.0, 3.0, 5.0]),
    st.floats(0.1, 100, allow_nan=False),
)
point_clouds = st.lists(st.tuples(coordinate, coordinate),
                        min_size=0, max_size=80)


class TestParetoFront:
    def test_diagonal_all_optimal(self):
        points = [(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)]
        assert pareto_front(points) == [0, 1, 2, 3, 4]

    def test_dominated_points_excluded(self):
        points = [(1, 1), (2, 2), (3, 3)]
        assert pareto_front(points) == [0]

    def test_mixed(self):
        points = [(1, 5), (2, 4), (3, 3), (3, 4), (4, 4)]
        assert pareto_front(points) == [0, 1, 2]

    def test_duplicates_kept(self):
        points = [(1, 1), (1, 1)]
        assert pareto_front(points) == [0, 1]

    def test_single_point(self):
        assert pareto_front([(3, 7)]) == [0]

    @given(st.lists(
        st.tuples(st.floats(0.1, 100, allow_nan=False),
                  st.floats(0.1, 100, allow_nan=False)),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=50, deadline=None)
    def test_front_points_mutually_non_dominated(self, points):
        front = pareto_front(points)
        assert front  # at least one point is always non-dominated
        for i in front:
            for j in front:
                if i == j:
                    continue
                strictly_dominates = (
                    points[j][0] <= points[i][0]
                    and points[j][1] <= points[i][1]
                    and points[j] != points[i]
                )
                assert not strictly_dominates


class TestParetoFrontEquivalence:
    """The O(n log n) sweep must match the quadratic reference exactly."""

    @given(point_clouds)
    @settings(max_examples=200, deadline=None)
    def test_index_set_matches_quadratic_reference(self, points):
        assert pareto_front(points) == _pareto_front_quadratic(points)

    def test_duplicate_coordinates_all_kept(self):
        points = [(2.0, 2.0), (1.0, 3.0), (2.0, 2.0), (3.0, 1.0),
                  (2.0, 2.0)]
        assert pareto_front(points) == [0, 1, 2, 3, 4]

    def test_equal_x_tie_resolved_within_group(self):
        # (1, 5) dominates (1, 7); (2, 5) is dominated by (1, 5).
        points = [(1.0, 7.0), (1.0, 5.0), (2.0, 5.0)]
        assert pareto_front(points) == [1]

    def test_empty(self):
        assert pareto_front([]) == []

    @given(point_clouds)
    @settings(max_examples=100, deadline=None)
    def test_streaming_front_matches_batch(self, points):
        front = StreamingParetoFront()
        for index, (x, y) in enumerate(points):
            front.add(x, y, index)
        streaming = sorted(payload for _, _, payload in front.frontier())
        assert streaming == pareto_front(points)

    @given(point_clouds, st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_streaming_front_insertion_order_invariant(self, points,
                                                       rng):
        shuffled = list(enumerate(points))
        rng.shuffle(shuffled)
        front = StreamingParetoFront()
        for index, (x, y) in shuffled:
            front.add(x, y, index)
        streaming = sorted(payload for _, _, payload in front.frontier())
        assert streaming == pareto_front(points)


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume([(1, 1)], (2, 2)) == pytest.approx(1.0)

    def test_staircase(self):
        # Two rects [1,4]x[3,4] and [3,4]x[1,4], overlap [3,4]x[3,4]:
        # union area = 3 + 3 - 1 = 5.
        volume = hypervolume([(1, 3), (3, 1)], (4, 4))
        assert volume == pytest.approx(5.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume([(1, 1)], (4, 4))
        extra = hypervolume([(1, 1), (2, 2)], (4, 4))
        assert extra == pytest.approx(base)

    def test_points_beyond_reference_clipped(self):
        assert hypervolume([(5, 5)], (2, 2)) == 0.0

    def test_empty(self):
        assert hypervolume([], (1, 1)) == 0.0


class TestHVR:
    def test_full_selection_ratio_one(self):
        true_front = [(1, 3), (2, 2), (3, 1)]
        assert hvr(true_front, true_front) == pytest.approx(1.0)

    def test_partial_selection_below_one(self):
        true_front = [(1, 10), (5, 5), (10, 1)]
        selected = [(5, 5)]
        ratio = hvr(true_front, selected)
        assert 0.0 < ratio < 1.0

    def test_empty_selection_zero(self):
        true_front = [(1, 2), (2, 1)]
        assert hvr(true_front, []) == 0.0

    def test_reference_spans_selected_points(self):
        # Regression: a selection dominated-but-beyond 1.1x the true
        # front's maxima used to be clipped to zero contribution.
        true_front = [(1.0, 10.0), (10.0, 1.0)]
        far_selected = [(50.0, 50.0)]
        assert hvr(true_front, far_selected) > 0.0

    def test_degenerate_front_not_rewarded(self):
        # Regression: a zero-extent true front made the denominator 0
        # and returned a perfect 1.0 for *any* selection -- including
        # the empty one and dominated far-away picks.
        degenerate = [(0.0, 5.0)]
        assert hvr(degenerate, []) == 0.0
        # A dominated far-away pick widens the union reference, so the
        # ratio is defined again -- and terrible, not perfect.
        assert hvr(degenerate, [(3.0, 7.0)]) < 0.1
        assert hvr(degenerate, [(0.0, 5.0)]) == 1.0

    def test_explicit_reference_still_honored(self):
        true_front = [(1.0, 1.0)]
        assert hvr(true_front, true_front,
                   reference=(2.0, 2.0)) == pytest.approx(1.0)

    @given(point_clouds.filter(len))
    @settings(max_examples=100, deadline=None)
    def test_full_selection_always_one(self, points):
        front = [points[i] for i in pareto_front(points)]
        assert hvr(front, front) == pytest.approx(1.0)


class TestParetoMetrics:
    def test_perfect_prediction(self):
        points = [(1, 5), (2, 4), (3, 3), (4, 4), (5, 5)]
        metrics = pareto_metrics(points, points)
        assert metrics.sensitivity == 1.0
        assert metrics.specificity == 1.0
        assert metrics.accuracy == 1.0
        assert metrics.hvr == pytest.approx(1.0)

    def test_inverted_prediction_poor_sensitivity(self):
        true_points = [(1, 5), (2, 4), (3, 3), (6, 6), (7, 7)]
        # Prediction ranks the dominated designs as best.
        predicted = [(9, 9), (8, 8), (7, 7), (1, 2), (2, 1)]
        metrics = pareto_metrics(true_points, predicted)
        assert metrics.sensitivity < 0.5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            pareto_metrics([(1, 1)], [(1, 1), (2, 2)])

    def test_metrics_in_unit_range(self):
        import random
        rng = random.Random(5)
        true_points = [(rng.random(), rng.random()) for _ in range(40)]
        noisy = [(x + rng.gauss(0, 0.05), y + rng.gauss(0, 0.05))
                 for x, y in true_points]
        metrics = pareto_metrics(true_points, noisy)
        for value in (metrics.sensitivity, metrics.specificity,
                      metrics.accuracy, metrics.hvr):
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_noisy_prediction_keeps_high_hvr(self):
        # The thesis' key claim: even with prediction noise, the selected
        # designs cover the true frontier's hypervolume (HVR ~ 0.97).
        import random
        rng = random.Random(11)
        true_points = []
        for _ in range(100):
            x = rng.uniform(1, 10)
            y = 10.0 / x + rng.uniform(0, 3)
            true_points.append((x, y))
        predicted = [
            (x * (1 + rng.gauss(0, 0.05)), y * (1 + rng.gauss(0, 0.05)))
            for x, y in true_points
        ]
        metrics = pareto_metrics(true_points, predicted)
        assert metrics.hvr > 0.8
        assert metrics.specificity > 0.8
