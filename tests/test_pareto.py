"""Pareto tooling tests (thesis §7.4): front, metrics, hypervolume."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.explore.pareto import (
    hypervolume,
    hvr,
    pareto_front,
    pareto_metrics,
)


class TestParetoFront:
    def test_diagonal_all_optimal(self):
        points = [(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)]
        assert pareto_front(points) == [0, 1, 2, 3, 4]

    def test_dominated_points_excluded(self):
        points = [(1, 1), (2, 2), (3, 3)]
        assert pareto_front(points) == [0]

    def test_mixed(self):
        points = [(1, 5), (2, 4), (3, 3), (3, 4), (4, 4)]
        assert pareto_front(points) == [0, 1, 2]

    def test_duplicates_kept(self):
        points = [(1, 1), (1, 1)]
        assert pareto_front(points) == [0, 1]

    def test_single_point(self):
        assert pareto_front([(3, 7)]) == [0]

    @given(st.lists(
        st.tuples(st.floats(0.1, 100, allow_nan=False),
                  st.floats(0.1, 100, allow_nan=False)),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=50, deadline=None)
    def test_front_points_mutually_non_dominated(self, points):
        front = pareto_front(points)
        assert front  # at least one point is always non-dominated
        for i in front:
            for j in front:
                if i == j:
                    continue
                strictly_dominates = (
                    points[j][0] <= points[i][0]
                    and points[j][1] <= points[i][1]
                    and points[j] != points[i]
                )
                assert not strictly_dominates


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume([(1, 1)], (2, 2)) == pytest.approx(1.0)

    def test_staircase(self):
        # Two rects [1,4]x[3,4] and [3,4]x[1,4], overlap [3,4]x[3,4]:
        # union area = 3 + 3 - 1 = 5.
        volume = hypervolume([(1, 3), (3, 1)], (4, 4))
        assert volume == pytest.approx(5.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume([(1, 1)], (4, 4))
        extra = hypervolume([(1, 1), (2, 2)], (4, 4))
        assert extra == pytest.approx(base)

    def test_points_beyond_reference_clipped(self):
        assert hypervolume([(5, 5)], (2, 2)) == 0.0

    def test_empty(self):
        assert hypervolume([], (1, 1)) == 0.0


class TestHVR:
    def test_full_selection_ratio_one(self):
        true_front = [(1, 3), (2, 2), (3, 1)]
        assert hvr(true_front, true_front) == pytest.approx(1.0)

    def test_partial_selection_below_one(self):
        true_front = [(1, 10), (5, 5), (10, 1)]
        selected = [(5, 5)]
        ratio = hvr(true_front, selected)
        assert 0.0 < ratio < 1.0

    def test_empty_selection_zero(self):
        true_front = [(1, 2), (2, 1)]
        assert hvr(true_front, []) == 0.0


class TestParetoMetrics:
    def test_perfect_prediction(self):
        points = [(1, 5), (2, 4), (3, 3), (4, 4), (5, 5)]
        metrics = pareto_metrics(points, points)
        assert metrics.sensitivity == 1.0
        assert metrics.specificity == 1.0
        assert metrics.accuracy == 1.0
        assert metrics.hvr == pytest.approx(1.0)

    def test_inverted_prediction_poor_sensitivity(self):
        true_points = [(1, 5), (2, 4), (3, 3), (6, 6), (7, 7)]
        # Prediction ranks the dominated designs as best.
        predicted = [(9, 9), (8, 8), (7, 7), (1, 2), (2, 1)]
        metrics = pareto_metrics(true_points, predicted)
        assert metrics.sensitivity < 0.5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            pareto_metrics([(1, 1)], [(1, 1), (2, 2)])

    def test_metrics_in_unit_range(self):
        import random
        rng = random.Random(5)
        true_points = [(rng.random(), rng.random()) for _ in range(40)]
        noisy = [(x + rng.gauss(0, 0.05), y + rng.gauss(0, 0.05))
                 for x, y in true_points]
        metrics = pareto_metrics(true_points, noisy)
        for value in (metrics.sensitivity, metrics.specificity,
                      metrics.accuracy, metrics.hvr):
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_noisy_prediction_keeps_high_hvr(self):
        # The thesis' key claim: even with prediction noise, the selected
        # designs cover the true frontier's hypervolume (HVR ~ 0.97).
        import random
        rng = random.Random(11)
        true_points = []
        for _ in range(100):
            x = rng.uniform(1, 10)
            y = 10.0 / x + rng.uniform(0, 3)
            true_points.append((x, y))
        predicted = [
            (x * (1 + rng.gauss(0, 0.05)), y * (1 + rng.gauss(0, 0.05)))
            for x, y in true_points
        ]
        metrics = pareto_metrics(true_points, predicted)
        assert metrics.hvr > 0.8
        assert metrics.specificity > 0.8
