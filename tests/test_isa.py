"""Unit tests for the ISA substrate (macro ops, cracking, instructions)."""

import pytest

from repro.isa import (
    DEFAULT_UOP_LATENCY,
    Instruction,
    MacroOp,
    UopKind,
    crack,
    uop_count,
)


class TestCracking:
    def test_simple_ops_crack_to_one_uop(self):
        for op in (MacroOp.INT_ALU, MacroOp.LOAD, MacroOp.STORE,
                   MacroOp.BRANCH, MacroOp.DIV, MacroOp.FP_MUL):
            assert uop_count(op) == 1

    def test_load_op_forms_crack_to_two(self):
        assert crack(MacroOp.INT_ALU_LOAD) == (UopKind.LOAD, UopKind.INT_ALU)
        assert crack(MacroOp.FP_ALU_LOAD) == (UopKind.LOAD, UopKind.FP_ALU)

    def test_op_store_form_cracks_to_two(self):
        assert crack(MacroOp.INT_ALU_STORE) == (
            UopKind.INT_ALU, UopKind.STORE
        )

    def test_every_macro_op_has_a_template(self):
        for op in MacroOp:
            assert len(crack(op)) >= 1

    def test_crack_order_puts_load_first(self):
        # Load-op forms must execute the memory part before the ALU part.
        uops = crack(MacroOp.INT_ALU_LOAD)
        assert uops[0] is UopKind.LOAD


class TestInstruction:
    def test_load_classification(self):
        instr = Instruction(pc=0x100, op=MacroOp.LOAD, dst=1, addr=64)
        assert instr.is_load and instr.is_mem and not instr.is_store

    def test_load_op_form_is_load(self):
        instr = Instruction(pc=0x100, op=MacroOp.INT_ALU_LOAD, dst=1, addr=8)
        assert instr.is_load

    def test_store_classification(self):
        instr = Instruction(pc=0x104, op=MacroOp.STORE, src1=2, addr=128)
        assert instr.is_store and instr.is_mem and not instr.is_load

    def test_branch_classification(self):
        instr = Instruction(pc=0x108, op=MacroOp.BRANCH, taken=True)
        assert instr.is_branch and not instr.is_mem

    def test_alu_is_not_memory(self):
        instr = Instruction(pc=0x10c, op=MacroOp.INT_ALU, dst=3, src1=1)
        assert not instr.is_mem and not instr.is_branch

    def test_instructions_are_immutable(self):
        instr = Instruction(pc=0, op=MacroOp.NOP)
        with pytest.raises(AttributeError):
            instr.pc = 4

    def test_uop_count_matches_crack(self):
        instr = Instruction(pc=0, op=MacroOp.FP_ALU_LOAD, dst=1, addr=0)
        assert instr.uop_count() == 2
        assert instr.uops() == crack(MacroOp.FP_ALU_LOAD)


class TestLatencies:
    def test_all_uop_kinds_have_latencies(self):
        for kind in UopKind:
            assert DEFAULT_UOP_LATENCY[kind] >= 1

    def test_divide_is_slowest(self):
        assert DEFAULT_UOP_LATENCY[UopKind.DIV] == max(
            DEFAULT_UOP_LATENCY.values()
        )

    def test_memory_property(self):
        assert UopKind.LOAD.is_memory
        assert UopKind.STORE.is_memory
        assert not UopKind.INT_ALU.is_memory
