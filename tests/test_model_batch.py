"""Batched model backend: bitwise equivalence vs the scalar reference.

``IntervalModel.predict_batch`` / ``PowerModel.evaluate_batch`` must
reproduce the retained scalar prediction loop *bitwise* -- same CPI and
power stacks (values and key order), same window breakdowns, same
:class:`ModelCache` contents, same DesignPoint streams at any chunk
size and worker count.  Hypothesis drives random (profile, config
batch) pairs through both backends via the shared harness in
``equivalence.py``; unit tests pin cache hit/miss behaviour, engine
chunking corners, backend validation and the CLI flag.
"""

import pytest
from hypothesis import given, settings

from equivalence import (
    EXTREME_AXES,
    any_config_batch,
    assert_cache_states_equal,
    assert_points_identical,
    assert_result_lists_bitwise,
    assert_results_bitwise,
    config_batches,
    micro_profiles,
    profiles,
    table_slices,
)
from repro.backends import (
    MODEL_BACKEND_ENV,
    MODEL_BACKENDS,
    default_model_backend,
    resolve_model_backend,
)
from repro.cli import build_parser
from repro.core import AnalyticalModel, BatchConfigs, ModelCache, nehalem
from repro.core.machine import config_from_params
from repro.explore.engine import SweepEngine
from repro.explore.search import SearchProblem, get_objective, make_optimizer
from repro.explore.space import DesignSpace, Parameter
from repro.profiler import profile_application
from repro.workloads import Trace

#: A small mixed batch hitting the model's branchy corners: narrow and
#: wide pipelines, tiny and huge ROBs, prefetch on, saturated MSHRs.
CORNER_CONFIGS = [
    config_from_params({"dispatch_width": 1, "rob_size": 16,
                        "mshr_entries": 1}),
    config_from_params({"dispatch_width": 8, "rob_size": 512,
                        "llc_mb": 1, "frequency_ghz": 3.4}),
    config_from_params({"prefetch": True, "l1d_kb": 16, "l2_kb": 128}),
    nehalem(),
    nehalem(),  # duplicate on purpose: stresses the gather indices
]


def _both(profile, configs, **model_kwargs):
    """Evaluate ``configs`` with both backends on fresh models/caches."""
    scalar_model = AnalyticalModel(cache=ModelCache(), **model_kwargs)
    batch_model = AnalyticalModel(cache=ModelCache(), **model_kwargs)
    scalar = scalar_model.predict_batch(profile, configs,
                                        backend="scalar")
    batch = batch_model.predict_batch(profile, configs, backend="batch")
    return scalar, batch, scalar_model.cache, batch_model.cache


class TestBatchDifferential:
    @given(profile=profiles(), configs=any_config_batch)
    @settings(max_examples=12, deadline=None)
    def test_random_profile_random_batch_bitwise(self, profile,
                                                 configs):
        scalar, batch, scalar_cache, batch_cache = _both(profile,
                                                         configs)
        assert_result_lists_bitwise(scalar, batch)
        assert_cache_states_equal(scalar_cache, batch_cache)

    @given(profile=micro_profiles(), configs=config_batches(max_size=4))
    @settings(max_examples=10, deadline=None)
    def test_degenerate_micro_traces_bitwise(self, profile, configs):
        scalar, batch, scalar_cache, batch_cache = _both(profile,
                                                         configs)
        assert_result_lists_bitwise(scalar, batch)
        assert_cache_states_equal(scalar_cache, batch_cache)

    def test_empty_batch(self, gcc_profile):
        scalar, batch, scalar_cache, batch_cache = _both(gcc_profile,
                                                         [])
        assert scalar == [] and batch == []
        assert_cache_states_equal(scalar_cache, batch_cache)

    def test_single_config_matches_scalar_predict(self, gcc_profile):
        model = AnalyticalModel()
        reference = model.predict(gcc_profile, nehalem())
        for backend in MODEL_BACKENDS:
            (result,) = AnalyticalModel().predict_batch(
                gcc_profile, [nehalem()], backend=backend)
            assert_results_bitwise(result, reference)

    def test_prebuilt_batchconfigs_accepted(self, gcc_profile):
        prebuilt = BatchConfigs(CORNER_CONFIGS)
        scalar, batch, _, _ = _both(gcc_profile, prebuilt)
        assert_result_lists_bitwise(scalar, batch)
        from_list = AnalyticalModel().predict_batch(
            gcc_profile, CORNER_CONFIGS, backend="batch")
        assert_result_lists_bitwise(batch, from_list)

    @pytest.mark.parametrize("mlp_model", ["stride", "cold", "none"])
    def test_mlp_model_variants_bitwise(self, gcc_profile, mlp_model):
        scalar, batch, scalar_cache, batch_cache = _both(
            gcc_profile, CORNER_CONFIGS, mlp_model=mlp_model)
        assert_result_lists_bitwise(scalar, batch)
        assert_cache_states_equal(scalar_cache, batch_cache)

    def test_feature_toggles_bitwise(self, mcf_profile):
        scalar, batch, scalar_cache, batch_cache = _both(
            mcf_profile, CORNER_CONFIGS, enable_llc_chaining=False,
            enable_mshr=False, enable_bus=False)
        assert_result_lists_bitwise(scalar, batch)
        assert_cache_states_equal(scalar_cache, batch_cache)


class TestModelCacheBehaviour:
    """Pin what hits, what misses, and that backends warm identically."""

    def test_second_evaluation_is_all_hits(self, gcc_profile):
        model = AnalyticalModel(cache=ModelCache())
        first = model.predict_batch(gcc_profile, CORNER_CONFIGS)
        warmed = set(model.cache._memo)
        assert warmed  # the batch populated the memo
        second = model.predict_batch(gcc_profile, CORNER_CONFIGS)
        assert set(model.cache._memo) == warmed  # no new keys: all hits
        assert_result_lists_bitwise(first, second)

    def test_frequency_axis_never_misses(self, gcc_profile):
        # No dependency key reads the clock: configs differing only in
        # frequency (and Vdd) must be pure cache hits after the first.
        model = AnalyticalModel(cache=ModelCache())
        base = {"dispatch_width": 4, "llc_mb": 2}
        model.predict_batch(gcc_profile, [config_from_params(base)])
        warmed = set(model.cache._memo)
        retuned = [config_from_params({**base, "frequency_ghz": f})
                   for f in EXTREME_AXES["frequency_ghz"]]
        model.predict_batch(gcc_profile, retuned)
        assert set(model.cache._memo) == warmed

    def test_llc_axis_misses(self, gcc_profile):
        # Miss-ratio queries key on cache geometry: a new LLC size must
        # add memo entries.
        model = AnalyticalModel(cache=ModelCache())
        model.predict_batch(gcc_profile,
                            [config_from_params({"llc_mb": 2})])
        warmed = set(model.cache._memo)
        model.predict_batch(gcc_profile,
                            [config_from_params({"llc_mb": 8})])
        assert set(model.cache._memo) > warmed

    def test_key_families_are_exhaustive(self, gcc_profile):
        # Every memo key names its dependency family first; the set of
        # families is part of the cache contract both backends share.
        model = AnalyticalModel(cache=ModelCache())
        model.predict_batch(gcc_profile, CORNER_CONFIGS)
        families = {key[0] for key in model.cache._memo}
        assert families == {"limits", "branch", "iratios", "dratio",
                            "fl", "stream", "smlp", "activity"}

    @pytest.mark.parametrize("first,second",
                             [("scalar", "batch"), ("batch", "scalar")])
    def test_cross_backend_cache_warming(self, gcc_profile, first,
                                         second):
        # A cache warmed by one backend must serve the other: same
        # results, zero new keys in either direction.
        cache = ModelCache()
        model = AnalyticalModel(cache=cache)
        warm = model.predict_batch(gcc_profile, CORNER_CONFIGS,
                                   backend=first)
        warmed = set(cache._memo)
        reuse = model.predict_batch(gcc_profile, CORNER_CONFIGS,
                                    backend=second)
        assert set(cache._memo) == warmed
        assert_result_lists_bitwise(warm, reuse)


class TestEngineChunking:
    """The sweep stream is chunk- and worker-count invariant."""

    SPACE = {"dispatch_width": (2, 4), "llc_mb": (2, 8),
             "rob_size": (64, 128)}

    def _configs(self):
        from repro.core import design_space

        return design_space(self.SPACE)

    def _reference(self, profiles_):
        return SweepEngine(workers=1, backend="scalar").sweep(
            profiles_, self._configs())

    @pytest.mark.parametrize("batch_size", [1, 3, 10_000])
    def test_any_chunk_size_matches_scalar(self, gcc_profile,
                                           batch_size):
        reference = self._reference([gcc_profile])
        engine = SweepEngine(workers=1, batch_size=batch_size,
                             backend="batch")
        chunked = engine.sweep([gcc_profile], self._configs())
        assert set(chunked) == set(reference)
        for name in reference:
            assert_points_identical(chunked[name], reference[name])

    @pytest.mark.parametrize("workers", [0, 1, 2])
    def test_any_worker_count_matches_scalar(self, gcc_profile,
                                             gamess_profile, workers):
        # workers=0 exercises the serial fallback (clamped to 1).
        profiles_ = [gcc_profile, gamess_profile]
        reference = self._reference(profiles_)
        swept = SweepEngine(workers=workers, backend="batch").sweep(
            profiles_, self._configs())
        assert set(swept) == set(reference)
        for name in reference:
            assert_points_identical(swept[name], reference[name])

    def test_streaming_order_is_grid_order(self, gcc_profile,
                                           gamess_profile):
        configs = self._configs()
        profiles_ = [gcc_profile, gamess_profile]
        stream = list(SweepEngine(workers=2, batch_size=1,
                                  backend="batch")
                      .iter_sweep(profiles_, configs))
        expected = [(p.name, c.name) for p in profiles_
                    for c in configs]
        assert ([(pt.workload, pt.config.name) for pt in stream]
                == expected)

    def test_constrained_space_filtered_to_empty(self, gcc_profile):
        space = DesignSpace(
            parameters=(Parameter.integer("dispatch_width", 2, 6, 2),),
            constraints=("dispatch_width > 100",),
            name="infeasible",
        )
        assert space.configs() == []
        results = SweepEngine(workers=1, backend="batch").sweep(
            [gcc_profile], space.configs())
        assert results == {}

    def test_constrained_space_smaller_than_chunk(self, gcc_profile):
        space = DesignSpace(
            parameters=(Parameter.integer("dispatch_width", 2, 6, 2),
                        Parameter.categorical("llc_mb", (2, 8))),
            constraints=("dispatch_width == 4", "llc_mb == 8"),
            name="singleton",
        )
        configs = space.configs()
        assert len(configs) == 1
        engine = SweepEngine(workers=1, batch_size=64, backend="batch")
        points = engine.sweep([gcc_profile], configs)["gcc"]
        reference = SweepEngine(workers=1, backend="scalar").sweep(
            [gcc_profile], configs)["gcc"]
        assert_points_identical(points, reference)

    def test_search_trajectory_backend_invariant(self, gcc_profile):
        space = DesignSpace(
            parameters=(Parameter.integer("dispatch_width", 2, 6, 2),
                        Parameter.integer("rob_size", 64, 256, 64),
                        Parameter.categorical("llc_mb", (2, 8))),
            name="search-backends",
        )
        trajectories = [
            make_optimizer("ga", seed=7).search(
                SearchProblem([gcc_profile], space,
                              get_objective("edp"), backend=backend),
                20)
            for backend in ("scalar", "batch")
        ]
        signatures = [
            [(e.index, tuple(sorted(e.point.items())), e.fitness)
             for e in t.evaluations]
            for t in trajectories
        ]
        assert signatures[0] == signatures[1]


class TestBackendValidation:
    """Unknown backend names fail fast, before any evaluation."""

    def test_unknown_model_backend_rejected(self, gcc_profile):
        with pytest.raises(ValueError, match="backend"):
            AnalyticalModel().predict_batch(gcc_profile, [nehalem()],
                                            backend="simd")

    def test_model_backend_validated_before_work(self):
        # Validation is centralized up front: a bogus backend errors
        # out before the profile is even touched (None would crash with
        # AttributeError otherwise).
        with pytest.raises(ValueError, match="backend"):
            AnalyticalModel().predict_batch(None, [nehalem()],
                                            backend="simd")

    def test_engine_rejects_unknown_backend_fast(self, gcc_profile):
        engine = SweepEngine(workers=1, backend="simd")
        with pytest.raises(ValueError, match="backend"):
            engine.sweep([gcc_profile], [nehalem()])

    def test_profile_backend_validated_before_work(self):
        # Regression: profile_application used to validate the backend
        # *after* the scalar short-circuit, so typos did a full
        # columnar profiling run before erroring (or none at all).
        with pytest.raises(ValueError, match="backend"):
            profile_application(None, backend="simd")
        with pytest.raises(ValueError, match="backend"):
            profile_application(Trace([], name="x"), backend="simd")

    def test_env_sets_default_backend(self, monkeypatch):
        monkeypatch.setenv(MODEL_BACKEND_ENV, "scalar")
        assert default_model_backend() == "scalar"
        assert resolve_model_backend(None) == "scalar"
        # An explicit argument always wins over the environment.
        assert resolve_model_backend("batch") == "batch"

    def test_env_default_is_batch(self, monkeypatch):
        monkeypatch.delenv(MODEL_BACKEND_ENV, raising=False)
        assert default_model_backend() == "batch"

    def test_invalid_env_backend_rejected(self, monkeypatch,
                                          gcc_profile):
        monkeypatch.setenv(MODEL_BACKEND_ENV, "simd")
        with pytest.raises(ValueError, match="backend"):
            default_model_backend()
        with pytest.raises(ValueError, match="backend"):
            AnalyticalModel().predict_batch(gcc_profile, [nehalem()])

    def test_env_backend_drives_predict_batch(self, monkeypatch,
                                              gcc_profile):
        monkeypatch.setenv(MODEL_BACKEND_ENV, "scalar")
        from_env = AnalyticalModel().predict_batch(gcc_profile,
                                                   [nehalem()])
        explicit = AnalyticalModel().predict_batch(
            gcc_profile, [nehalem()], backend="scalar")
        assert_result_lists_bitwise(from_env, explicit)


class TestCLIFlag:
    @pytest.mark.parametrize("argv", [
        ["sweep", "p.json"],
        ["search", "p.json"],
        ["validate", "gcc"],
        ["dvfs", "p.json"],
    ])
    def test_model_backend_flag_on_subcommands(self, argv):
        parser = build_parser()
        assert parser.parse_args(argv).model_backend is None
        for backend in MODEL_BACKENDS:
            args = parser.parse_args(argv + ["--model-backend",
                                             backend])
            assert args.model_backend == backend

    def test_invalid_choice_rejected(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "p.json",
                               "--model-backend", "simd"])
        capsys.readouterr()  # swallow argparse's usage message
