"""Cross-cutting property-based tests (hypothesis) on model invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AnalyticalModel, nehalem
from repro.core.dispatch import effective_dispatch_rate
from repro.isa import Instruction, MacroOp, UopKind, crack
from repro.profiler.dependences import (
    chain_lengths_exact,
    chain_lengths_stepped,
)
from repro.profiler.mix import profile_mix
from repro.workloads.generator import (
    AluSpec,
    BranchSpec,
    KernelSpec,
    LoadSpec,
    WorkloadSpec,
    generate_trace,
)

# Strategy: random small kernel bodies.
_alu = st.builds(
    AluSpec,
    op=st.sampled_from([MacroOp.INT_ALU, MacroOp.FP_ALU, MacroOp.FP_MUL]),
    dst=st.integers(1, 12),
    srcs=st.tuples(st.integers(1, 12)),
)
_load = st.builds(
    LoadSpec,
    dst=st.integers(1, 12),
    pattern=st.sampled_from(["stride", "random", "unique"]),
    strides=st.tuples(st.sampled_from([8, 64, 128])),
    region=st.sampled_from([4096, 65536, 1 << 20]),
    base=st.sampled_from([0, 1 << 20]),
)
_body = st.lists(st.one_of(_alu, _load), min_size=1, max_size=8)


@st.composite
def workloads(draw):
    body = draw(_body)
    body.append(BranchSpec(pattern="loop"))
    iterations = draw(st.integers(5, 40))
    seed = draw(st.integers(0, 1000))
    return WorkloadSpec(
        "prop", [KernelSpec("k", body, iterations=iterations)], seed=seed
    )


class TestGeneratorProperties:
    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_trace_length_is_body_times_iterations(self, spec):
        trace = generate_trace(spec)
        kernel = spec.kernels[0]
        assert len(trace) == len(kernel.body) * kernel.iterations

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_loads_have_addresses_and_alus_do_not(self, spec):
        trace = generate_trace(spec)
        for instr in trace:
            if instr.is_mem:
                assert instr.addr >= 0
            else:
                assert instr.addr == 0

    @given(workloads(), st.integers(10, 200))
    @settings(max_examples=20, deadline=None)
    def test_truncation_is_prefix(self, spec, limit):
        full = generate_trace(spec)
        cut = generate_trace(spec, max_instructions=limit)
        prefix = min(limit, len(cut), len(full))
        assert list(cut)[:prefix] == list(full)[:prefix]


class TestChainProperties:
    @given(workloads(), st.sampled_from([8, 16, 32]))
    @settings(max_examples=15, deadline=None)
    def test_chain_bounds(self, spec, window):
        trace = generate_trace(spec, max_instructions=200)
        stats = chain_lengths_exact(trace.instructions, window)
        size = min(window, len(trace))
        assert 1.0 <= stats.ap <= size
        assert stats.ap <= stats.cp <= size

    @given(workloads())
    @settings(max_examples=15, deadline=None)
    def test_stepped_within_factor_of_exact(self, spec):
        trace = generate_trace(spec, max_instructions=256)
        exact = chain_lengths_exact(trace.instructions, 16)
        stepped = chain_lengths_stepped(trace.instructions, 16)
        if exact.cp > 0:
            assert stepped.cp <= exact.cp * 1.5 + 1.0
            assert stepped.cp >= exact.cp * 0.4 - 1.0


class TestDispatchProperties:
    @given(st.dictionaries(
        st.sampled_from(list(UopKind)),
        st.integers(1, 200),
        min_size=1,
    ))
    @settings(max_examples=40, deadline=None)
    def test_deff_bounded(self, counts):
        from repro.profiler.dependences import ChainProfile, \
            DependenceChains
        mix = profile_mix([])
        mix.counts = counts
        mix.num_uops = sum(counts.values())
        mix.num_instructions = mix.num_uops
        chains = DependenceChains()
        chains.cp = ChainProfile(values={128: 4.0})
        chains.ap = ChainProfile(values={128: 2.0})
        chains.abp = ChainProfile(values={128: 2.0})
        limits = effective_dispatch_rate(mix, chains, nehalem())
        deff = limits.effective()
        assert 0.0 < deff <= nehalem().dispatch_width


class TestModelInvariants:
    def test_cycles_scale_roughly_with_trace_length(self):
        from repro.profiler import SamplingConfig, profile_application
        from repro.workloads import make_workload
        model = AnalyticalModel()
        spec = make_workload("gamess")
        short = profile_application(
            generate_trace(spec, max_instructions=10_000),
            SamplingConfig(1000, 2000),
        )
        spec2 = make_workload("gamess")
        long = profile_application(
            generate_trace(spec2, max_instructions=20_000),
            SamplingConfig(1000, 2000),
        )
        short_cycles = model.predict_performance(short, nehalem()).cycles
        long_cycles = model.predict_performance(long, nehalem()).cycles
        ratio = long_cycles / short_cycles
        assert 1.3 < ratio < 3.0

    def test_component_toggles_only_reduce_cycles(self, gcc_profile):
        full = AnalyticalModel().predict_performance(
            gcc_profile, nehalem()
        )
        no_chain = AnalyticalModel(
            enable_llc_chaining=False
        ).predict_performance(gcc_profile, nehalem())
        assert no_chain.cycles <= full.cycles + 1e-9

    def test_mshr_toggle_never_speeds_up(self, libquantum_profile):
        with_mshr = AnalyticalModel(
            enable_mshr=True
        ).predict_performance(libquantum_profile, nehalem())
        without = AnalyticalModel(
            enable_mshr=False
        ).predict_performance(libquantum_profile, nehalem())
        # The MSHR cap can only lower MLP, i.e. raise cycles.
        assert with_mshr.cycles >= without.cycles - 1e-9

    @given(st.sampled_from([1.2, 1.6, 2.0, 2.66, 3.4]))
    @settings(max_examples=5, deadline=None)
    def test_power_increases_with_frequency(self, freq):
        from repro.core.power import PowerModel, ActivityVector
        base = PowerModel(nehalem())
        scaled = PowerModel(nehalem().with_frequency(freq + 0.4))
        activity = ActivityVector(cycles=10_000, uops=15_000,
                                  l1_accesses=5000)
        slower = PowerModel(nehalem().with_frequency(freq))
        assert scaled.evaluate(activity).total > (
            slower.evaluate(activity).total
        )
