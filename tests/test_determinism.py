"""Hash-seed independence: fingerprints and stored bytes must not
depend on ``PYTHONHASHSEED``.

Every persistent surface is canonicalized (sorted keys, canonical
JSON), so two interpreters with *different* hash seeds must produce
identical :class:`~repro.api.spec.ExperimentSpec` fingerprints and
bitwise-identical :class:`~repro.api.runstore.RunStore` entries.  The
static-analysis taint rule guards this statically; this test guards it
end-to-end, in real subprocesses, through a real profile + predict run.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The child workload: profile -> predict -> RunStore, then report
#: every persistent artifact's identity on stdout.
CHILD_SCRIPT = '''
import hashlib, json
from repro.api import ExperimentSpec, Session
from repro.api.runstore import RunStore

profile_spec = ExperimentSpec(
    "profile", workloads=["gcc"], output="gcc.profile",
    instructions=4000,
)
predict_spec = ExperimentSpec(
    "predict", profile="gcc.profile", width=2, rob=64, llc_mb=2,
)
with Session() as session:
    session.run(profile_spec)
    result = session.run(predict_spec)
store = RunStore("runs")
key = store.put(result)
with open(store.path(key), "rb") as handle:
    run_blob = handle.read()
with open("gcc.profile", "rb") as handle:
    profile_blob = handle.read()
print(json.dumps({
    "profile_spec_fingerprint": profile_spec.fingerprint,
    "predict_spec_fingerprint": predict_spec.fingerprint,
    "store_key": key,
    "store_sha256": hashlib.sha256(run_blob).hexdigest(),
    "profile_sha256": hashlib.sha256(profile_blob).hexdigest(),
}))
'''


def _run_child(tmp_path: Path, hash_seed: str) -> dict:
    """Run the child workload under one PYTHONHASHSEED; parse stdout."""
    workdir = tmp_path / f"seed-{hash_seed}"
    workdir.mkdir()
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    completed = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT],
        cwd=workdir, env=env, capture_output=True, text=True,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_artifacts_identical_across_hash_seeds(tmp_path):
    """Two interpreters, two hash seeds, identical persistent bytes."""
    first = _run_child(tmp_path, "0")
    second = _run_child(tmp_path, "31337")
    assert first == second
    # The stored run file is bitwise identical, not merely equivalent.
    blob_a = (tmp_path / "seed-0" / "runs"
              / f"{first['store_key']}.run.json").read_bytes()
    blob_b = (tmp_path / "seed-31337" / "runs"
              / f"{second['store_key']}.run.json").read_bytes()
    assert blob_a == blob_b
    assert hashlib.sha256(blob_a).hexdigest() == first["store_sha256"]
