"""Validation-campaign tests (thesis §7.4-§7.5): sweep + report."""

import json

import pytest

from repro.core.machine import design_space
from repro.explore.validate import (
    SimulationSweep,
    ValidationCampaign,
    ValidationCase,
)
from repro.profiler import SamplingConfig, profile_application
from repro.simulator.simulator import STACK_KEYS
from repro.workloads import generate_trace, make_workload

SMALL_AXES = {"dispatch_width": (2, 4), "llc_mb": (2, 8)}


def _small_cases(names, instructions=3000):
    cases = []
    for name in names:
        trace = generate_trace(make_workload(name),
                               max_instructions=instructions)
        profile = profile_application(trace, SamplingConfig(500, 1500))
        cases.append(ValidationCase(profile=profile, trace=trace))
    return cases


@pytest.fixture(scope="module")
def small_campaign_report():
    configs = design_space(SMALL_AXES)
    campaign = ValidationCampaign(
        _small_cases(["gcc", "mcf"]), configs, train_fraction=0.0
    )
    return campaign.run()


class TestSimulationSweep:
    def test_parallel_matches_serial_order_and_values(self):
        configs = design_space(SMALL_AXES)
        traces = [
            generate_trace(make_workload(name), max_instructions=2000)
            for name in ("gcc", "libquantum")
        ]
        serial = list(SimulationSweep(workers=1).iter_sweep(
            traces, configs))
        parallel = list(SimulationSweep(workers=3).iter_sweep(
            traces, configs))
        assert len(serial) == len(parallel) == 2 * len(configs)
        for a, b in zip(serial, parallel):
            assert a.workload == b.workload
            assert a.config.name == b.config.name
            assert a.result.cycles == b.result.cycles
            assert a.power_watts == b.power_watts

    def test_trace_major_order(self):
        configs = design_space({"dispatch_width": (2, 4)})
        traces = [
            generate_trace(make_workload(name), max_instructions=1000)
            for name in ("gcc", "mcf")
        ]
        points = list(SimulationSweep(workers=1).iter_sweep(
            traces, configs))
        assert [p.workload for p in points] == ["gcc"] * 2 + ["mcf"] * 2
        assert [p.config.name for p in points[:2]] == [
            c.name for c in configs
        ]

    def test_power_is_measured_activity(self):
        configs = design_space({"dispatch_width": (4,)})
        trace = generate_trace(make_workload("gcc"),
                               max_instructions=1000)
        (point,) = SimulationSweep(workers=1).iter_sweep(
            [trace], configs)
        assert point.power_watts > 0.0
        assert point.energy_joules == pytest.approx(
            point.power_watts * point.seconds
        )
        assert point.cpi == point.result.cpi


class TestValidationCase:
    def test_name_mismatch_rejected(self):
        gcc = generate_trace(make_workload("gcc"),
                             max_instructions=1000)
        mcf = generate_trace(make_workload("mcf"),
                             max_instructions=1000)
        profile = profile_application(gcc, SamplingConfig(500, 1500))
        with pytest.raises(ValueError, match="does not match"):
            ValidationCase(profile=profile, trace=mcf)


class TestValidationCampaign:
    def test_report_shape(self, small_campaign_report):
        report = small_campaign_report
        assert report.n_configs == 4
        assert [w.workload for w in report.workloads] == ["gcc", "mcf"]
        for w in report.workloads:
            assert w.cpi_error.count == 4
            assert set(w.stack_error) == set(STACK_KEYS)
            m = w.metrics
            for value in (m.sensitivity, m.specificity,
                          m.accuracy, m.hvr):
                assert 0.0 <= value <= 1.0 + 1e-9
            assert w.baseline is None  # train_fraction=0

    def test_report_is_json_serializable(self, small_campaign_report):
        payload = json.dumps(small_campaign_report.as_dict())
        data = json.loads(payload)
        assert data["n_configs"] == 4
        assert {w["workload"] for w in data["workloads"]} == \
            {"gcc", "mcf"}
        assert "pareto" in data["workloads"][0]
        assert "cpi_stack_error" in data["workloads"][0]

    def test_summary_lines_mention_metrics(self, small_campaign_report):
        text = "\n".join(small_campaign_report.summary_lines())
        assert "gcc" in text and "mcf" in text
        assert "sensitivity" in text and "HVR" in text

    def test_baseline_trained_on_held_out_subsample(self):
        configs = design_space({"dispatch_width": (2, 4),
                                "llc_mb": (2, 8),
                                "rob_size": (64, 128),
                                "l1d_kb": (16, 32)})
        campaign = ValidationCampaign(
            _small_cases(["gcc"]), configs, train_fraction=0.25
        )
        report = campaign.run()
        baseline = report.workloads[0].baseline
        assert baseline is not None
        assert baseline.train_size == 4
        assert baseline.train_size + baseline.holdout_size == 16
        assert baseline.mechanistic_cpi_error.count == \
            baseline.holdout_size
        assert baseline.empirical_cpi_error.count == \
            baseline.holdout_size

    def test_deterministic_across_worker_counts(self):
        configs = design_space(SMALL_AXES)
        cases = _small_cases(["libquantum"], instructions=2000)
        reports = []
        for workers in (1, 2):
            campaign = ValidationCampaign(
                cases, configs, model_workers=workers,
                sim_workers=workers, train_fraction=0.0,
            )
            data = campaign.run().as_dict()
            data.pop("model_workers")
            data.pop("sim_workers")
            reports.append(json.dumps(data, sort_keys=True))
        assert reports[0] == reports[1]

    def test_duplicate_workloads_rejected(self):
        cases = _small_cases(["gcc"], instructions=1000) * 2
        with pytest.raises(ValueError, match="duplicate"):
            ValidationCampaign(cases, design_space(SMALL_AXES))

    def test_empty_grid_rejected(self):
        cases = _small_cases(["gcc"], instructions=1000)
        with pytest.raises(ValueError, match="config"):
            ValidationCampaign(cases, [])

    def test_bad_train_fraction_rejected(self):
        cases = _small_cases(["gcc"], instructions=1000)
        with pytest.raises(ValueError, match="train_fraction"):
            ValidationCampaign(cases, design_space(SMALL_AXES),
                               train_fraction=1.0)

    def test_from_workloads_builds_matching_cases(self):
        campaign = ValidationCampaign.from_workloads(
            ["gcc"], design_space(SMALL_AXES), instructions=1000,
            sampling=SamplingConfig(500, 1500),
        )
        (case,) = campaign.cases
        assert case.profile.name == case.trace.name == "gcc"
        assert case.profile.num_instructions == 1000
        assert campaign.space_name == "configs"

    def test_design_space_object_accepted(self):
        from repro.explore.space import DesignSpace, Parameter

        space = DesignSpace(
            parameters=(
                Parameter.categorical("dispatch_width", (2, 4)),
            ),
            name="tiny-validate",
        )
        campaign = ValidationCampaign(
            _small_cases(["gcc"], instructions=1000), space,
            train_fraction=0.0,
        )
        assert campaign.space_name == "tiny-validate"
        assert len(campaign.configs) == 2
