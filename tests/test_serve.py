"""Service-layer tests: protocol units, the sharded store, request
coalescing, sweep batching/streaming determinism, disconnect isolation,
graceful drain, and the chaos leg's bitwise-identity contract.

Counter-exact tests neutralize any externally supplied fault plan (the
autouse fixture, mirroring ``test_faults``) so the CI chaos leg can run
this file; the dedicated chaos test then re-activates the leg's
``REPRO_FAULTS`` spec (captured at import time) explicitly.
"""

import json
import os
import socket
import threading

import pytest

from repro.api import ExperimentSpec, Session
from repro.api.runstore import RunStore
from repro.faults import RetryPolicy, inject
from repro.serve import (
    InflightTable,
    ServeError,
    ServerThread,
    ShardedRunStore,
    get_json,
    request_run,
)
from repro.serve.protocol import (
    STATUS_REASONS,
    HttpRequest,
    ProtocolError,
    render_response,
)

#: The chaos leg's spec/seed, captured before the env-clearing fixture
#: runs (empty locally -- the default below is then used).
CI_CHAOS_SPEC = os.environ.get(inject.ENV_SPEC)
CI_CHAOS_SEED = os.environ.get(inject.ENV_SEED) or "1337"

DEFAULT_CHAOS_SPEC = ("crash:0.15,hang:0.08:0.05,task_error:0.15,"
                      "batch_error:0.25,corrupt_store:0.3")

HOST = "127.0.0.1"

SWEEP = {"kind": "sweep",
         "params": {"workloads": ["gcc"], "limit": 4,
                    "instructions": 3000}}
SWEEP_TWO = {"kind": "sweep",
             "params": {"workloads": ["gcc", "mcf"], "limit": 4,
                        "instructions": 3000}}
PREDICT = {"kind": "predict",
           "params": {"workload": "gcc", "instructions": 3000}}

#: Run-dependent result fields ignored by bitwise comparisons (the
#: same convention as the test_faults chaos campaign).
_WALL_KEYS = ("seconds", "wall_seconds", "telemetry", "cached")


def _strip(obj):
    """Result payload minus wall-clock fields, for bitwise comparison."""
    if isinstance(obj, dict):
        return {k: _strip(v) for k, v in obj.items()
                if k not in _WALL_KEYS}
    if isinstance(obj, list):
        return [_strip(v) for v in obj]
    return obj


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    """Each test starts (and the file ends) with no active fault plan."""
    monkeypatch.delenv(inject.ENV_SPEC, raising=False)
    monkeypatch.delenv(inject.ENV_SEED, raising=False)
    inject.refresh()
    yield
    os.environ.pop(inject.ENV_SPEC, None)
    os.environ.pop(inject.ENV_SEED, None)
    inject.refresh()


def _result(reply):
    """The result payload of one client reply."""
    return reply["result"]["data"]


# ----------------------------------------------------------------------
# Protocol units
# ----------------------------------------------------------------------


class TestProtocol:
    def _request(self, body=b"{}", query=None):
        return HttpRequest("POST", "/run", query or {},
                           {"content-type": "application/json"}, body)

    def test_json_body_parses(self):
        assert self._request(b'{"a": 1}').json() == {"a": 1}

    def test_junk_body_is_a_400(self):
        with pytest.raises(ProtocolError) as err:
            self._request(b"{nope").json()
        assert err.value.status == 400

    def test_flags_accept_truthy_spellings(self):
        for value in ("1", "true", "yes", "on"):
            assert self._request(query={"stream": value}).flag("stream")
        assert not self._request(query={"stream": "0"}).flag("stream")
        assert not self._request().flag("stream")

    def test_render_response_is_wire_complete(self):
        raw = render_response(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert body == b'{"ok": true}'

    def test_every_emitted_status_has_a_reason(self):
        for status in (200, 400, 404, 405, 413, 500, 503, 504):
            assert status in STATUS_REASONS


# ----------------------------------------------------------------------
# Sharded run store
# ----------------------------------------------------------------------


def _make_result(tag):
    """A distinct storable result keyed by ``tag``."""
    from repro.api.results import RunResult

    spec = ExperimentSpec("predict", workload="gcc",
                          instructions=3000 + tag)
    return RunResult(spec=spec, data={"tag": tag})


class TestShardedRunStore:
    def test_put_lands_in_the_shard_directory(self, tmp_path):
        store = ShardedRunStore(str(tmp_path / "runs"))
        result = _make_result(0)
        key = store.put(result)
        assert os.path.exists(os.path.join(
            str(tmp_path / "runs"), key[:2], f"{key}.run.json"))
        assert store.get(result.spec).data == {"tag": 0}
        assert result.spec in store

    def test_legacy_flat_entries_are_read_and_migrated(self, tmp_path):
        root = str(tmp_path / "runs")
        flat = RunStore(root)
        result = _make_result(1)
        key = flat.put(result)
        flat_path = os.path.join(root, f"{key}.run.json")
        assert os.path.exists(flat_path)

        sharded = ShardedRunStore(root)
        assert result.spec in sharded
        fetched = sharded.get(result.spec)
        assert fetched.data == {"tag": 1}
        assert not os.path.exists(flat_path)
        assert os.path.exists(sharded.path(key))
        assert sharded.migrations == 1

    def test_lru_cap_evicts_least_recently_used(self, tmp_path):
        store = ShardedRunStore(str(tmp_path / "runs"), max_entries=2)
        first, second, third = (_make_result(i) for i in range(3))
        store.put(first)
        store.put(second)
        store.get(first.spec)          # first is now most recent
        store.put(third)               # evicts second
        assert store.evictions == 1
        assert len(store) == 2
        assert store.get(second.spec) is None
        assert store.get(first.spec) is not None
        assert store.get(third.spec) is not None

    def test_recency_seed_is_deterministic(self, tmp_path):
        root = str(tmp_path / "runs")
        writer = ShardedRunStore(root)
        keys = [writer.put(_make_result(i)) for i in range(4)]
        reopened = ShardedRunStore(root, max_entries=4)
        assert len(reopened) == 4
        reopened.put(_make_result(99))  # evicts sorted-first key
        survivor_keys = sorted(keys)[1:]
        assert reopened.get(
            _make_result(keys.index(sorted(keys)[0])).spec) is None
        for key in survivor_keys:
            assert key in reopened

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedRunStore(str(tmp_path), shard_width=0)
        with pytest.raises(ValueError):
            ShardedRunStore(str(tmp_path), max_entries=0)


class TestRunStoreCounterSafety:
    def test_concurrent_access_keeps_counters_exact(self, tmp_path):
        """The counter-race regression: N threads hammering one store
        must account every hit/miss/put exactly (lock-guarded
        ``_count``), and every put must land readable."""
        store = ShardedRunStore(str(tmp_path / "runs"))
        per_thread, n_threads = 8, 6
        results = [_make_result(i) for i in range(per_thread)]

        def hammer():
            for result in results:
                store.put(result)
                assert store.get(result.spec) is not None
                store.get(_make_result(500).spec)  # guaranteed miss

        threads = [threading.Thread(target=hammer)
                   for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.puts == per_thread * n_threads
        assert store.hits == per_thread * n_threads
        assert store.misses == per_thread * n_threads
        assert store.corrupt == 0


# ----------------------------------------------------------------------
# Dedup / coalescing
# ----------------------------------------------------------------------


class TestInflightTable:
    def test_identical_keys_share_one_computation(self):
        import asyncio

        async def scenario():
            table = InflightTable()
            calls = []

            async def compute():
                calls.append(1)
                await asyncio.sleep(0.02)
                return "value"

            results = await asyncio.gather(
                *(table.run("k", compute) for _ in range(5)))
            return table, calls, results

        table, calls, results = asyncio.run(scenario())
        assert calls == [1]
        assert results == ["value"] * 5
        assert table.leaders == 1
        assert table.followers == 4
        assert len(table) == 0

    def test_waiter_cancellation_spares_the_computation(self):
        import asyncio

        async def scenario():
            table = InflightTable()

            async def compute():
                await asyncio.sleep(0.05)
                return "done"

            first = asyncio.ensure_future(table.run("k", compute))
            await asyncio.sleep(0.01)
            first.cancel()
            # A second waiter attached to the same computation still
            # gets the value: the cancel killed only the first wait.
            return await table.run("k", compute)

        assert asyncio.run(scenario()) == "done"


@pytest.fixture()
def serve(tmp_path):
    """A server thread over a fresh session + sharded store."""
    store = ShardedRunStore(str(tmp_path / "runs"))
    session = Session(workers=1, run_store=store)
    with ServerThread(session, port=0) as thread:
        yield thread
    session.close()


class TestCoalescing:
    def test_identical_concurrent_requests_compute_once(self, serve):
        n = 8
        replies = [None] * n
        barrier = threading.Barrier(n)

        def fire(i):
            barrier.wait()
            replies[i] = request_run(HOST, serve.port, SWEEP,
                                     timeout=120)

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert all(reply is not None for reply in replies)
        payloads = {json.dumps(_strip(_result(reply)), sort_keys=True)
                    for reply in replies}
        assert len(payloads) == 1
        stats = get_json(HOST, serve.port, "/stats")
        assert stats["server"]["computations"] == 1
        assert stats["server"]["coalesced"] == n - 1
        assert stats["server"]["requests"] >= n

    def test_warm_requests_hit_the_store(self, serve):
        cold = request_run(HOST, serve.port, PREDICT, timeout=120)
        warm = request_run(HOST, serve.port, PREDICT, timeout=120)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert _strip(_result(cold)) == _strip(_result(warm))
        stats = get_json(HOST, serve.port, "/stats")
        assert stats["server"]["store_hits"] == 1
        assert stats["server"]["computations"] == 1

    def test_compatible_sweeps_merge_into_one_engine_pass(self, tmp_path):
        store = ShardedRunStore(str(tmp_path / "runs"))
        session = Session(workers=1, run_store=store)
        # A wide batch window so both arrivals reliably share a round.
        with ServerThread(session, port=0, batch_window=0.75) as thread:
            replies = [None, None]
            barrier = threading.Barrier(2)

            def fire(i, spec):
                barrier.wait()
                replies[i] = request_run(HOST, thread.port, spec,
                                         timeout=120)

            threads = [
                threading.Thread(target=fire, args=(0, SWEEP)),
                threading.Thread(target=fire, args=(1, SWEEP_TWO)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = get_json(HOST, thread.port, "/stats")
        session.close()
        assert stats["batch"]["groups"] == 1
        assert stats["batch"]["merged"] == 1
        # Each reply covers exactly its own workloads.
        assert [w["workload"]
                for w in _result(replies[0])["workloads"]] == ["gcc"]
        assert [w["workload"]
                for w in _result(replies[1])["workloads"]] == ["gcc",
                                                               "mcf"]


# ----------------------------------------------------------------------
# Streaming determinism & batched-vs-solo identity
# ----------------------------------------------------------------------


def _streamed_sweep(tmp_path, tag, spec=SWEEP_TWO, batch_window=0.02):
    """One cold streamed sweep on a fresh server; returns (points, reply)."""
    store = ShardedRunStore(str(tmp_path / f"runs-{tag}"))
    session = Session(workers=1, run_store=store)
    points = []
    with ServerThread(session, port=0,
                      batch_window=batch_window) as thread:
        reply = request_run(HOST, thread.port, spec, stream=True,
                            timeout=120, on_point=points.append)
    session.close()
    return points, reply


class TestStreaming:
    def test_ndjson_point_order_is_deterministic(self, tmp_path):
        first_points, first = _streamed_sweep(tmp_path, "a")
        second_points, second = _streamed_sweep(tmp_path, "b")
        assert first_points == second_points
        assert _strip(_result(first)) == _strip(_result(second))
        # Engine order: profile-major, config order per profile.
        workloads = [p["workload"] for p in first_points]
        assert workloads == ["gcc"] * 4 + ["mcf"] * 4

    def test_served_sweep_matches_direct_session_run(self, tmp_path):
        points, reply = _streamed_sweep(tmp_path, "served")
        with Session(workers=1) as direct:
            solo = direct.run(ExperimentSpec.coerce(SWEEP_TWO))
        assert _strip(_result(reply)) == _strip(solo.to_dict()["data"])

    def test_streamed_warm_hit_sends_result_only(self, serve):
        request_run(HOST, serve.port, SWEEP, timeout=120)
        points = []
        warm = request_run(HOST, serve.port, SWEEP, stream=True,
                           timeout=120, on_point=points.append)
        assert warm["cached"] is True
        assert points == []


class TestDisconnect:
    def test_disconnect_does_not_poison_shared_computation(self, serve):
        # One raw client sends the sweep and vanishes mid-response;
        # the coalesced computation must still complete for others.
        body = json.dumps(SWEEP).encode()
        quitter = socket.create_connection((HOST, serve.port))
        quitter.sendall(
            b"POST /run?stream=1 HTTP/1.1\r\n"
            b"Host: test\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body)
        quitter.close()

        reply = request_run(HOST, serve.port, SWEEP, timeout=120)
        assert "workloads" in _result(reply)
        stats = get_json(HOST, serve.port, "/stats")
        assert stats["server"]["errors"] == 0
        health = get_json(HOST, serve.port, "/health")
        assert health["status"] == "ok"


class TestServiceSurface:
    def test_unknown_route_and_method_errors(self, serve):
        with pytest.raises(ServeError) as err:
            get_json(HOST, serve.port, "/nope")
        assert err.value.status == 404
        conn_err = None
        try:
            request_run(HOST, serve.port, {"kind": "sweep"})
        except ServeError as exc:
            conn_err = exc
        assert conn_err is not None and conn_err.status == 400

    def test_metrics_endpoint_reports_disabled_without_telemetry(
            self, serve):
        assert get_json(HOST, serve.port, "/metrics") == {
            "enabled": False}

    def test_graceful_drain_finishes_inflight_work(self, tmp_path):
        store = ShardedRunStore(str(tmp_path / "runs"))
        session = Session(workers=1, run_store=store)
        thread = ServerThread(session, port=0)
        thread.__enter__()
        reply_box = {}

        def fire():
            reply_box["reply"] = request_run(HOST, thread.port, SWEEP,
                                             timeout=120)

        worker = threading.Thread(target=fire)
        worker.start()
        # Wait until the sweep is admitted before asking for the drain.
        import time
        for _ in range(500):
            if get_json(HOST, thread.port, "/health")["active"] >= 1:
                break
            time.sleep(0.01)
        thread.stop()            # drain waits for the in-flight sweep
        worker.join(timeout=60)
        session.close()
        assert "workloads" in _result(reply_box["reply"])


# ----------------------------------------------------------------------
# Chaos: the serve suite under fault injection stays bitwise identical
# ----------------------------------------------------------------------


class TestChaosServe:
    def test_served_results_match_fault_free_bitwise(self, tmp_path,
                                                     monkeypatch):
        clean_points, clean_reply = _streamed_sweep(tmp_path, "clean")

        monkeypatch.setenv(inject.ENV_SPEC,
                           CI_CHAOS_SPEC or DEFAULT_CHAOS_SPEC)
        monkeypatch.setenv(inject.ENV_SEED, CI_CHAOS_SEED)
        inject.refresh()
        store = ShardedRunStore(str(tmp_path / "runs-chaos"))
        retry = RetryPolicy(max_attempts=6, timeout=30,
                            backoff_base=0.001, backoff_max=0.01)
        session = Session(workers=1, run_store=store, retry=retry)
        chaos_points = []
        with ServerThread(session, port=0,
                          batch_window=0.02) as thread:
            chaos_reply = request_run(HOST, thread.port, SWEEP_TWO,
                                      stream=True, timeout=120,
                                      on_point=chaos_points.append)
            warm = request_run(HOST, thread.port, SWEEP_TWO,
                               timeout=120)
        session.close()

        assert chaos_points == clean_points
        assert _strip(_result(chaos_reply)) == _strip(
            _result(clean_reply))
        # Even through store corruption, a warm re-read either serves
        # the identical artifact or transparently recomputes it.
        assert _strip(_result(warm)) == _strip(_result(clean_reply))
