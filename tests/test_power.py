"""Power model tests (thesis §2.4, §3.6, §6.3)."""

import pytest
from dataclasses import replace

from repro.core.machine import MachineConfig, nehalem, dvfs_vdd
from repro.core.power import (
    ActivityVector,
    PowerBreakdown,
    PowerModel,
)
from repro.isa import UopKind


def sample_activity(cycles=100_000.0):
    return ActivityVector(
        cycles=cycles,
        uops=150_000.0,
        uop_kind_counts={
            UopKind.INT_ALU: 60_000.0,
            UopKind.LOAD: 45_000.0,
            UopKind.STORE: 20_000.0,
            UopKind.BRANCH: 15_000.0,
            UopKind.FP_MUL: 10_000.0,
        },
        l1_accesses=165_000.0,
        l2_accesses=9_000.0,
        llc_accesses=2_500.0,
        dram_accesses=600.0,
        branch_lookups=15_000.0,
    )


class TestStaticPower:
    def test_positive_for_all_structures(self):
        model = PowerModel(nehalem())
        for name, watts in model.static_power().items():
            assert watts > 0, name

    def test_scales_with_llc_size(self):
        from repro.caches.cache import CacheConfig
        small = PowerModel(replace(
            nehalem(), llc=CacheConfig(2 << 20, 16, 64, latency=30)
        ))
        large = PowerModel(replace(
            nehalem(), llc=CacheConfig(8 << 20, 16, 64, latency=30)
        ))
        assert large.static_power()["llc"] > small.static_power()["llc"]

    def test_scales_with_rob(self):
        small = PowerModel(replace(nehalem(), rob_size=64))
        large = PowerModel(replace(nehalem(), rob_size=256))
        assert large.static_power()["rob_rf"] > (
            small.static_power()["rob_rf"]
        )

    def test_scales_with_voltage(self):
        low = PowerModel(replace(nehalem(), vdd=0.9))
        high = PowerModel(replace(nehalem(), vdd=1.2))
        assert sum(high.static_power().values()) > (
            sum(low.static_power().values())
        )


class TestDynamicPower:
    def test_zero_activity_zero_power(self):
        model = PowerModel(nehalem())
        assert model.dynamic_power(ActivityVector()) == {}

    def test_positive_with_activity(self):
        model = PowerModel(nehalem())
        power = model.dynamic_power(sample_activity())
        assert sum(power.values()) > 0

    def test_scales_with_frequency(self):
        activity = sample_activity()
        slow = PowerModel(replace(nehalem(), frequency_ghz=1.33))
        fast = PowerModel(replace(nehalem(), frequency_ghz=2.66))
        # Same cycle count at higher frequency = less time = more watts.
        assert sum(fast.dynamic_power(activity).values()) > sum(
            slow.dynamic_power(activity).values()
        )

    def test_scales_with_vdd_squared(self):
        activity = sample_activity()
        base = PowerModel(nehalem())
        boosted = PowerModel(replace(nehalem(), vdd=nehalem().vdd * 1.2))
        ratio = sum(boosted.dynamic_power(activity).values()) / sum(
            base.dynamic_power(activity).values()
        )
        assert ratio == pytest.approx(1.44, rel=0.01)

    def test_dram_traffic_costs_power(self):
        model = PowerModel(nehalem())
        light = sample_activity()
        heavy = sample_activity()
        heavy.dram_accesses = 50_000.0
        assert model.dynamic_power(heavy)["memctrl"] > (
            model.dynamic_power(light)["memctrl"]
        )


class TestBreakdownAndEnergy:
    def test_reference_core_power_plausible(self):
        # Thesis-era 45 nm quad-issue core: single-core power in the
        # handful-of-watts range with a meaningful static share (§2.4
        # says ~40% static at 45 nm).
        model = PowerModel(nehalem())
        breakdown = model.evaluate(sample_activity())
        assert 3.0 < breakdown.total < 40.0
        static_share = breakdown.static_total / breakdown.total
        assert 0.15 < static_share < 0.7

    def test_stack_merges_static_and_dynamic(self):
        model = PowerModel(nehalem())
        breakdown = model.evaluate(sample_activity())
        stack = breakdown.stack()
        assert sum(stack.values()) == pytest.approx(breakdown.total)

    def test_energy_is_power_times_time(self):
        model = PowerModel(nehalem())
        activity = sample_activity()
        breakdown = model.evaluate(activity)
        seconds = activity.cycles / (nehalem().frequency_ghz * 1e9)
        assert model.energy_joules(activity) == pytest.approx(
            breakdown.total * seconds
        )

    def test_edp_and_ed2p_ordering(self):
        model = PowerModel(nehalem())
        activity = sample_activity()
        seconds = activity.cycles / (nehalem().frequency_ghz * 1e9)
        assert model.edp(activity) == pytest.approx(
            model.energy_joules(activity) * seconds
        )
        assert model.ed2p(activity) == pytest.approx(
            model.edp(activity) * seconds
        )

    def test_merge_scaled(self):
        a = sample_activity()
        b = ActivityVector()
        b.merge_scaled(a, 2.0)
        assert b.cycles == pytest.approx(2 * a.cycles)
        assert b.uop_kind_counts[UopKind.LOAD] == pytest.approx(
            2 * a.uop_kind_counts[UopKind.LOAD]
        )


class TestDVFSRail:
    def test_vdd_monotone_in_frequency(self):
        assert dvfs_vdd(1.2) < dvfs_vdd(2.66) < dvfs_vdd(3.4)

    def test_vdd_floor(self):
        for f in (0.1, 0.5, 1.0, 3.4):
            assert dvfs_vdd(f) >= 0.7


class TestAreaModel:
    def test_areas_positive(self):
        model = PowerModel(nehalem())
        for name, area in model.structure_areas().items():
            assert area > 0, name

    def test_llc_dominates_cache_area(self):
        areas = PowerModel(nehalem()).structure_areas()
        assert areas["llc"] > areas["l2"] > areas["l1"]

    def test_wider_core_more_logic_area(self):
        narrow = PowerModel(replace(nehalem(), dispatch_width=2))
        wide = PowerModel(replace(nehalem(), dispatch_width=6))
        assert wide.structure_areas()["core_logic"] > (
            narrow.structure_areas()["core_logic"]
        )
