"""Sweep engine: parallel/serial identity, caching, streaming, store."""

import json

import pytest

from equivalence import assert_points_identical as _assert_points_identical
from repro.core import AnalyticalModel, design_space, nehalem
from repro.core.interval import ModelCache
from repro.explore.dse import evaluate_design_space
from repro.explore.dvfs import explore_dvfs
from repro.explore.empirical import EmpiricalModel
from repro.explore.engine import SweepEngine
from repro.explore.pareto import StreamingParetoFront, pareto_front
from repro.profiler import SamplingConfig, profile_application
from repro.profiler.serialization import (
    ProfileStore,
    profile_fingerprint,
)
from repro.statstack.model import StatStack
from repro.workloads import generate_trace, make_workload

SPACE = {"dispatch_width": (2, 4), "llc_mb": (2, 8), "rob_size": (64, 128)}


class TestSweepEngine:
    def test_serial_matches_legacy_loop(self, gcc_profile):
        """Engine results are bitwise identical to a plain predict loop."""
        configs = design_space(SPACE)
        model = AnalyticalModel()
        legacy = [model.predict(gcc_profile, c) for c in configs]
        results = SweepEngine(workers=1).sweep([gcc_profile], configs)
        points = results["gcc"]
        assert len(points) == len(configs)
        for point, reference in zip(points, legacy):
            assert point.cpi == reference.cpi
            assert point.power_watts == reference.power_watts
            assert point.result.performance.stack == \
                reference.performance.stack

    def test_parallel_matches_serial(self, gcc_profile, gamess_profile):
        configs = design_space(SPACE)
        profiles = [gcc_profile, gamess_profile]
        serial = SweepEngine(workers=1).sweep(profiles, configs)
        parallel = SweepEngine(workers=2).sweep(profiles, configs)
        assert set(serial) == set(parallel)
        for name in serial:
            _assert_points_identical(serial[name], parallel[name])

    def test_streaming_order_is_grid_order(self, gcc_profile,
                                           gamess_profile):
        configs = design_space(SPACE)
        profiles = [gcc_profile, gamess_profile]
        stream = list(SweepEngine(workers=2).iter_sweep(profiles, configs))
        expected = [
            (p.name, c.name) for p in profiles for c in configs
        ]
        assert [(pt.workload, pt.config.name) for pt in stream] == expected

    def test_streaming_supports_partial_consumption(self, gcc_profile):
        configs = design_space(SPACE)
        stream = SweepEngine(workers=2).iter_sweep([gcc_profile], configs)
        first = next(stream)
        assert first.workload == "gcc"
        assert first.cpi > 0
        stream.close()  # abandoning mid-sweep must not hang or leak

    def test_progress_callback(self, gcc_profile):
        configs = design_space({"dispatch_width": (2, 4)})
        seen = []
        engine = SweepEngine(
            workers=1, progress=lambda done, total: seen.append(
                (done, total))
        )
        engine.sweep([gcc_profile], configs)
        assert seen == [(1, 2), (2, 2)]

    def test_batch_partitioning_covers_grid(self):
        engine = SweepEngine(workers=3, batch_size=4)
        tasks = engine._batches(2, 10)
        covered = set()
        for profile_index, start, stop in tasks:
            for c in range(start, stop):
                covered.add((profile_index, c))
        assert covered == {(p, c) for p in range(2) for c in range(10)}

    def test_caller_model_left_untouched(self, gcc_profile):
        """The engine must not permanently mutate a caller-owned model."""
        model = AnalyticalModel()
        assert model.cache is None
        SweepEngine(model=model, workers=1).sweep(
            [gcc_profile], design_space({"dispatch_width": (2, 4)})
        )
        assert model.cache is None

    def test_caller_attached_cache_is_kept(self, gcc_profile):
        cache = ModelCache()
        model = AnalyticalModel(cache=cache)
        SweepEngine(model=model, workers=1).sweep(
            [gcc_profile], design_space({"dispatch_width": (2, 4)})
        )
        assert model.cache is cache
        assert len(cache) > 0

    def test_prepare_memoized_across_sweeps(self, tmp_path, gcc_profile):
        store = ProfileStore(str(tmp_path))
        engine = SweepEngine(workers=1, store=store)
        keys_first = engine.prepare([gcc_profile])
        statstack = gcc_profile._statstack
        keys_second = engine.prepare([gcc_profile])
        assert keys_first == keys_second
        assert gcc_profile._statstack is statstack  # no rebuild/reload

    def test_shim_matches_engine(self, gcc_profile):
        configs = design_space(SPACE)
        shim = evaluate_design_space([gcc_profile], configs)
        engine = SweepEngine(workers=1).sweep([gcc_profile], configs)
        _assert_points_identical(shim["gcc"], engine["gcc"])


class TestModelCache:
    def test_cached_predictions_identical(self, gcc_profile):
        configs = design_space(SPACE)
        plain = AnalyticalModel()
        cached = AnalyticalModel(cache=ModelCache())
        for config in configs:
            a = plain.predict(gcc_profile, config)
            b = cached.predict(gcc_profile, config)
            assert a.cpi == b.cpi
            assert a.power_watts == b.power_watts
            assert a.performance.stack == b.performance.stack
        assert len(cached.cache) > 0

    def test_cache_hits_across_configs(self, gcc_profile):
        cached = AnalyticalModel(cache=ModelCache())
        for config in design_space(SPACE):
            cached.predict(gcc_profile, config)
        size_after_first = len(cached.cache)
        # Re-evaluating the same grid adds no new entries.
        for config in design_space(SPACE):
            cached.predict(gcc_profile, config)
        assert len(cached.cache) == size_after_first

    def test_clear(self, gcc_profile):
        cached = AnalyticalModel(cache=ModelCache())
        cached.predict(gcc_profile, nehalem())
        assert len(cached.cache) > 0
        cached.cache.clear()
        assert len(cached.cache) == 0


class TestProfileStore:
    def test_fingerprint_stable_and_content_addressed(self, gcc_profile,
                                                      gamess_profile):
        assert profile_fingerprint(gcc_profile) == \
            profile_fingerprint(gcc_profile)
        assert profile_fingerprint(gcc_profile) != \
            profile_fingerprint(gamess_profile)

    def test_put_get_roundtrip(self, tmp_path, gcc_profile):
        store = ProfileStore(str(tmp_path))
        key = store.put(gcc_profile)
        assert key in store
        loaded = store.get(key)
        assert loaded.name == gcc_profile.name
        assert profile_fingerprint(loaded) == key

    def test_warm_cache_identical_queries(self, tmp_path, gcc_profile):
        store = ProfileStore(str(tmp_path))
        reference = StatStack(gcc_profile.reuse)
        store.warm(gcc_profile)  # cold: computes + persists tables

        reloaded = store.get(store.put(gcc_profile))
        store.warm(reloaded)  # warm: tables come from disk
        for size in (32 * 1024, 256 * 1024, 8 * 1024 * 1024):
            assert reloaded.statstack().miss_ratio(size, kind="load") == \
                reference.miss_ratio(size, kind="load")

    def test_stale_tables_fall_back_to_rebuild(self, gcc_profile):
        tables = {"distances": [1, 2, 3], "expected_sd": [0.0, 1.0, 2.0]}
        model = StatStack.from_tables(gcc_profile.reuse, tables)
        reference = StatStack(gcc_profile.reuse)
        assert model.miss_ratio(32 * 1024) == reference.miss_ratio(32 * 1024)

    def test_wrong_version_or_counts_fall_back(self, gcc_profile):
        reference = StatStack(gcc_profile.reuse)
        good = reference.export_tables()

        outdated = dict(good, version=good["version"] - 1)
        corrupted = dict(good, counts=[c + 1 for c in good["counts"]])
        for tables in (outdated, corrupted):
            rebuilt = StatStack.from_tables(gcc_profile.reuse, tables)
            assert rebuilt.miss_ratio(32 * 1024) == \
                reference.miss_ratio(32 * 1024)

    def test_matching_tables_are_used(self, gcc_profile):
        reference = StatStack(gcc_profile.reuse)
        assert reference._tables_match(reference.export_tables())

    def test_engine_with_store(self, tmp_path, gcc_profile):
        configs = design_space({"dispatch_width": (2, 4)})
        store = ProfileStore(str(tmp_path))
        cold = SweepEngine(workers=1, store=store).sweep(
            [gcc_profile], configs
        )
        assert gcc_profile._statstack is not None
        warm = SweepEngine(workers=1, store=store).sweep(
            [gcc_profile], configs
        )
        _assert_points_identical(cold["gcc"], warm["gcc"])


class TestStreamingPareto:
    def test_matches_batch_front(self, gcc_profile):
        configs = design_space(SPACE)
        points = SweepEngine(workers=1).sweep([gcc_profile], configs)["gcc"]
        coordinates = [(p.seconds, p.power_watts) for p in points]
        batch = {coordinates[i] for i in pareto_front(coordinates)}
        streaming = StreamingParetoFront()
        for point in points:
            streaming.add_point(point)
        assert {(x, y) for x, y, _ in streaming.frontier()} == batch

    def test_duplicates_all_kept(self):
        front = StreamingParetoFront()
        assert front.add(1.0, 1.0, "a")
        assert front.add(1.0, 1.0, "b")
        assert len(front) == 2

    def test_dominated_point_rejected(self):
        front = StreamingParetoFront()
        assert front.add(1.0, 1.0)
        assert not front.add(2.0, 2.0)
        assert len(front) == 1

    def test_new_point_evicts_dominated(self):
        front = StreamingParetoFront()
        front.add(2.0, 2.0)
        assert front.add(1.0, 1.0)
        assert [(x, y) for x, y, _ in front.frontier()] == [(1.0, 1.0)]


class TestEngineConsumers:
    def test_dvfs_through_engine(self, gamess_profile):
        direct = explore_dvfs(gamess_profile, nehalem())
        engine = SweepEngine(workers=1)
        via_engine = explore_dvfs(gamess_profile, nehalem(), engine=engine)
        assert len(direct) == len(via_engine)
        for a, b in zip(direct, via_engine):
            assert a.point == b.point
            assert a.seconds == b.seconds
            assert a.power_watts == b.power_watts

    def test_empirical_fit_sweep(self, gcc_profile, gamess_profile):
        configs = design_space({"dispatch_width": (2, 4, 6),
                                "rob_size": (64, 256)})
        model = EmpiricalModel().fit_sweep(
            [gcc_profile, gamess_profile], configs
        )
        prediction = model.predict(gcc_profile, configs[0])
        assert prediction == pytest.approx(
            AnalyticalModel().predict(gcc_profile, configs[0]).cpi,
            rel=0.5, abs=0.5,
        )


class TestSeededReuseSampling:
    def _profile(self, trace, rate, seed):
        return profile_application(
            trace,
            SamplingConfig(1000, 5000, reuse_sample_rate=rate,
                           reuse_seed=seed),
        )

    def test_same_seed_bitwise_identical(self, gcc_trace):
        a = self._profile(gcc_trace, 0.5, seed=7)
        b = self._profile(gcc_trace, 0.5, seed=7)
        assert a.reuse.histogram == b.reuse.histogram
        assert a.reuse.load_histogram == b.reuse.load_histogram
        assert a.reuse.cold_loads == b.reuse.cold_loads
        assert a.reuse.sampled_accesses == b.reuse.sampled_accesses
        assert profile_fingerprint(a) == profile_fingerprint(b)

    def test_different_seed_samples_different_subset(self, gcc_trace):
        a = self._profile(gcc_trace, 0.5, seed=7)
        b = self._profile(gcc_trace, 0.5, seed=8)
        assert a.reuse.histogram != b.reuse.histogram

    def test_full_rate_matches_default(self, gcc_trace):
        sampled = self._profile(gcc_trace, 1.0, seed=123)
        default = profile_application(gcc_trace, SamplingConfig(1000, 5000))
        assert sampled.reuse.histogram == default.reuse.histogram
        assert sampled.reuse.sampled_accesses == \
            default.reuse.sampled_accesses

    def test_sampling_config_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            SamplingConfig(1000, 5000, reuse_sample_rate=0.0)

    def test_sampling_roundtrips_serialization(self, tmp_path, gcc_trace):
        from repro.profiler.serialization import (
            load_profile,
            save_profile,
        )
        profile = self._profile(gcc_trace, 0.5, seed=7)
        path = str(tmp_path / "p.json")
        save_profile(profile, path)
        loaded = load_profile(path)
        assert loaded.sampling.reuse_sample_rate == 0.5
        assert loaded.sampling.reuse_seed == 7
        assert profile_fingerprint(loaded) == profile_fingerprint(profile)
