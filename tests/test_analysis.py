"""Static-analysis tests: every rule fires on its fixture, stays quiet
on compliant code, and the front doors (engine, baseline, CLI) behave.

The fixture packages live in ``tests/fixtures/lint/``: ``badpkg`` is
deliberately broken (one module per rule) and ``cleanpkg`` honors every
contract -- the shared negative control.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineError,
    DOCSTRING_TARGETS,
    LintError,
    RULES,
    run_lint,
)
from repro.analysis.baseline import parse_toml
from repro.analysis.report import Finding
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

#: Rules that need no option overrides to fire on their badpkg module.
ALL_RULES = sorted(RULES)


def lint_bad(rule, paths=("badpkg",), **kwargs):
    """Run one rule over badpkg (or explicit fixture paths)."""
    return run_lint(list(paths), root=FIXTURES, rules=[rule], **kwargs)


class TestDeterminismTaint:
    def test_cross_module_source_reaches_sink(self):
        report = lint_bad("determinism-taint")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "determinism-taint"
        assert finding.path == "badpkg/stamp.py"
        assert finding.symbol == "canonical_fingerprint<-time.time"
        # The message spells out the full source -> sink path.
        assert "badpkg.taint.canonical_fingerprint" in finding.message
        assert ("wall_stamp -> _payload -> canonical_fingerprint"
                in finding.message)

    def test_quiet_on_clean_package(self):
        report = run_lint(["cleanpkg"], root=FIXTURES,
                          rules=["determinism-taint"])
        assert report.findings == []

    def test_sorted_listing_is_not_a_source(self):
        # cleanpkg's fingerprint eats sorted(os.listdir(...)): the
        # sorted() wrapper is exactly what makes it deterministic.
        report = run_lint(["cleanpkg/clean.py"], root=FIXTURES,
                          rules=["determinism-taint"])
        assert report.findings == []

    def test_sink_patterns_are_configurable(self):
        report = lint_bad("determinism-taint",
                          options={"taint_sinks": ["*.no_such_sink"]})
        assert report.findings == []


class TestWorkerState:
    def test_mutating_function_and_lambda_flagged(self):
        report = lint_bad("worker-state", paths=("badpkg/worker.py",))
        symbols = [f.symbol for f in report.findings]
        assert "badpkg.worker._accumulate" in symbols
        assert any(s.endswith(".<lambda>") for s in symbols)
        mutation = next(f for f in report.findings
                        if f.symbol == "badpkg.worker._accumulate")
        assert "_RESULTS.append" in mutation.message

    def test_quiet_on_pure_dispatch(self):
        report = run_lint(["cleanpkg"], root=FIXTURES,
                          rules=["worker-state"])
        assert report.findings == []

    def test_pool_module_itself_is_exempt(self):
        # The real WorkerPool's dispatch shim mutates its worker-side
        # state cache on purpose (the broadcast protocol).
        repo_root = FIXTURES.parents[2]
        report = run_lint(["src/repro/api/pool.py"], root=repo_root,
                          rules=["worker-state"])
        assert report.findings == []


class TestUnseededRng:
    def test_unseeded_and_system_random_flagged(self):
        report = lint_bad("unseeded-rng", paths=("badpkg/rng.py",))
        assert len(report.findings) == 2
        messages = " ".join(f.message for f in report.findings)
        assert "without an explicit seed" in messages
        assert "SystemRandom" in messages

    def test_seeded_construction_not_flagged(self):
        report = lint_bad("unseeded-rng", paths=("badpkg/rng.py",))
        # good_rng's seeded construction sits on line 18.
        assert all(f.line != 18 for f in report.findings)

    def test_quiet_on_clean_package(self):
        report = run_lint(["cleanpkg"], root=FIXTURES,
                          rules=["unseeded-rng"])
        assert report.findings == []


class TestRawTiming:
    def test_import_and_attribute_reads_flagged(self):
        report = lint_bad("raw-timing", paths=("badpkg/timing.py",))
        symbols = {f.symbol for f in report.findings}
        assert symbols == {"time.perf_counter", "time.monotonic"}

    def test_allowed_modules_are_exempt(self):
        report = lint_bad(
            "raw-timing", paths=("badpkg/timing.py",),
            options={"timing_allowed_modules": ["badpkg.timing"]},
        )
        assert report.findings == []

    def test_obs_layer_is_exempt_in_the_real_tree(self):
        repo_root = FIXTURES.parents[2]
        report = run_lint(["src/repro/obs"], root=repo_root,
                          rules=["raw-timing"])
        assert report.findings == []

    def test_quiet_on_clean_package(self):
        report = run_lint(["cleanpkg"], root=FIXTURES,
                          rules=["raw-timing"])
        assert report.findings == []


class TestExports:
    def test_ghost_export_and_missing_export_flagged(self):
        report = lint_bad("exports", paths=("badpkg/exports.py",))
        symbols = {f.symbol for f in report.findings}
        assert symbols == {"missing_name", "unexported"}

    def test_quiet_on_clean_package(self):
        report = run_lint(["cleanpkg"], root=FIXTURES,
                          rules=["exports"])
        assert report.findings == []


class TestDocstrings:
    def test_missing_docstrings_flagged(self):
        report = lint_bad("docstrings", paths=("badpkg/docs.py",),
                          options={"docstring_targets": ["*"]})
        symbols = {f.symbol for f in report.findings}
        assert "badpkg.docs" in symbols          # module docstring
        assert "badpkg.docs.shout" in symbols
        assert "badpkg.docs.Megaphone" in symbols
        assert "badpkg.docs.Megaphone.amplify" in symbols

    def test_default_targets_skip_fixture_paths(self):
        report = lint_bad("docstrings", paths=("badpkg/docs.py",))
        assert report.findings == []

    def test_quiet_on_documented_package(self):
        report = run_lint(["cleanpkg"], root=FIXTURES,
                          rules=["docstrings"],
                          options={"docstring_targets": ["*"]})
        assert report.findings == []

    def test_target_list_matches_lint_docs_shim(self):
        import importlib.util
        repo_root = FIXTURES.parents[2]
        spec = importlib.util.spec_from_file_location(
            "lint_docs", repo_root / "tools" / "lint_docs.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.DEFAULT_TARGETS == list(DOCSTRING_TARGETS)

    def test_faults_package_is_guaranteed(self):
        assert "src/repro/faults" in DOCSTRING_TARGETS


class TestSupervisionExceptions:
    def test_blanket_handlers_flagged(self):
        report = lint_bad(
            "supervision-exceptions",
            paths=("badpkg/supervision.py",),
            options={"supervision_modules": ["badpkg.supervision"]},
        )
        symbols = sorted(f.symbol for f in report.findings)
        assert symbols == ["bare except", "except BaseException",
                           "except Exception"]
        assert all("supervision" in f.message for f in report.findings)

    def test_named_handlers_pass(self):
        # retry_named catches (OSError, TimeoutError): not flagged even
        # with the module in scope (three findings total, none on the
        # named handler's line).
        report = lint_bad(
            "supervision-exceptions",
            paths=("badpkg/supervision.py",),
            options={"supervision_modules": ["badpkg.supervision"]},
        )
        assert len(report.findings) == 3

    def test_out_of_scope_modules_are_quiet(self):
        # Default scope is the real fault layer; fixture modules never
        # match it, so the same file is clean without the override.
        report = lint_bad("supervision-exceptions",
                          paths=("badpkg/supervision.py",))
        assert report.findings == []

    def test_real_supervision_layer_is_clean(self):
        repo_root = FIXTURES.parents[2]
        report = run_lint(
            ["src/repro/faults", "src/repro/api/pool.py"],
            root=repo_root, rules=["supervision-exceptions"],
        )
        assert report.findings == []


class TestAsyncSafety:
    def test_blocking_calls_reachable_from_coroutine_flagged(self):
        report = lint_bad(
            "async-safety",
            paths=("badpkg/asyncblock.py",),
            options={"async_modules": ["badpkg.asyncblock"]},
        )
        symbols = {f.symbol for f in report.findings}
        assert symbols == {"handle<-time.sleep", "handle<-open()",
                           "handle<-*.imap()"}
        hidden = next(f for f in report.findings
                      if f.symbol == "handle<-open()")
        # The message spells out the coroutine -> helper route.
        assert "handle -> _work -> _flush" in hidden.message
        assert "run_in_executor" in hidden.message

    def test_executor_route_is_exempt(self):
        # cleanpkg.service hands the same blocking helper to
        # loop.run_in_executor: a function argument is not a call
        # edge, so nothing is reachable and nothing fires.
        report = run_lint(
            ["cleanpkg/service.py"], root=FIXTURES,
            rules=["async-safety"],
            options={"async_modules": ["cleanpkg.*"]},
        )
        assert report.findings == []

    def test_out_of_scope_modules_are_quiet(self):
        # Default scope is repro.serve*; fixture modules never match.
        report = lint_bad("async-safety",
                          paths=("badpkg/asyncblock.py",))
        assert report.findings == []

    def test_real_serve_layer_is_clean(self):
        # Linted at full-tree scope (the CI gate's scope): method-name
        # fallback edges need the whole tree in view -- scoping to
        # serve/ alone would make every dict '.get' resolve to the one
        # analyzed class defining 'get' (ShardedRunStore).
        repo_root = FIXTURES.parents[2]
        report = run_lint(["src/repro"], root=repo_root,
                          rules=["async-safety"])
        assert report.findings == []


class TestBaseline:
    def test_suppresses_matching_findings(self):
        baseline = Baseline(["unseeded-rng:badpkg/rng.py:*"])
        report = lint_bad("unseeded-rng", paths=("badpkg/rng.py",),
                          baseline=baseline)
        assert report.findings == []
        assert len(report.suppressed) == 2
        assert report.ok

    def test_stale_entries_are_reported(self):
        baseline = Baseline(["raw-timing:nowhere.py:gone"])
        report = lint_bad("unseeded-rng", paths=("badpkg/rng.py",),
                          baseline=baseline)
        assert report.unused_baseline == ["raw-timing:nowhere.py:gone"]
        assert any("stale" in line for line in report.render_lines())

    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "base.toml"
        path.write_text(
            "# reviewed exceptions\n"
            "[baseline]\n"
            "entries = [\n"
            '    "unseeded-rng:badpkg/rng.py:random.Random",  # ok\n'
            "]\n"
        )
        baseline = Baseline.load(str(path))
        assert baseline.entries == [
            "unseeded-rng:badpkg/rng.py:random.Random"
        ]

    def test_shipped_baseline_is_empty(self):
        repo_root = FIXTURES.parents[2]
        baseline = Baseline.load(
            str(repo_root / "tools" / "lint_baseline.toml"))
        assert len(baseline) == 0

    def test_parse_rejects_garbage(self):
        with pytest.raises(BaselineError):
            parse_toml("entries no equals sign")
        with pytest.raises(BaselineError):
            parse_toml('[baseline]\nentries = [ "unterminated ]')

    def test_matches_uses_fnmatch_keys(self):
        finding = Finding("raw-timing", "src/x.py", 7, "stamp", "...")
        assert Baseline(["raw-timing:src/*.py:stamp"]).matches(finding)
        assert not Baseline(["exports:src/x.py:stamp"]).matches(finding)


class TestEngine:
    def test_unknown_rule_raises(self):
        with pytest.raises(LintError):
            run_lint(["badpkg"], root=FIXTURES, rules=["nope"])

    def test_missing_path_raises(self):
        with pytest.raises(LintError):
            run_lint(["no/such/dir"], root=FIXTURES)

    def test_report_is_deterministic(self):
        first = run_lint(["badpkg"], root=FIXTURES, rules=ALL_RULES)
        second = run_lint(["badpkg"], root=FIXTURES, rules=ALL_RULES)
        assert first.to_json_dict() == second.to_json_dict()

    def test_real_tree_is_clean(self):
        repo_root = FIXTURES.parents[2]
        report = run_lint(["src/repro"], root=repo_root)
        assert report.findings == []


class TestLintCommand:
    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(FIXTURES / "badpkg")]) == 1
        out = capsys.readouterr().out
        assert "[determinism-taint]" in out
        assert "finding(s)" in out

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "cleanpkg")]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_json_report_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["lint", str(FIXTURES / "badpkg"),
                     "--json", str(out_path)]) == 1
        data = json.loads(out_path.read_text())
        assert data["ok"] is False
        assert data["format_version"] == 1
        assert any(f["rule"] == "worker-state"
                   for f in data["findings"])
        assert all("key" in f for f in data["findings"])

    def test_rule_selection(self, capsys):
        assert main(["lint", str(FIXTURES / "badpkg"),
                     "--rules", "exports"]) == 1
        out = capsys.readouterr().out
        assert "[exports]" in out
        assert "[raw-timing]" not in out

    def test_baseline_flag(self, tmp_path, capsys):
        base = tmp_path / "base.toml"
        # CLI paths are cwd-relative, so match any prefix of badpkg/.
        base.write_text('[baseline]\nentries = ["*:*badpkg/*:*"]\n')
        assert main(["lint", str(FIXTURES / "badpkg"),
                     "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "suppressed by baseline" in out

    def test_unknown_rule_is_a_usage_error(self, capsys):
        assert main(["lint", str(FIXTURES / "badpkg"),
                     "--rules", "nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err
