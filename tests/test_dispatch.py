"""Effective dispatch rate tests, including the thesis Table 3.1 mixes.

Thesis §3.4 works through two 100-uop instruction mixes on a Nehalem-like
machine (D = 4, ROB = 64, CP = 8, average latency 2): the first is
load-port limited (Deff = 2.5, Eq 3.11), the second divide-unit limited
(Deff = 2.0, Eq 3.12).  §3.3's Eq 3.8 gives Deff = 2.67 for a 16-entry
ROB with a 6-deep critical path and unit latencies.
"""

import pytest

from repro.core.dispatch import (
    DispatchLimits,
    effective_dispatch_rate,
    schedule_ports,
)
from repro.core.machine import MachineConfig, nehalem_ports
from repro.isa import UopKind
from repro.profiler.dependences import ChainProfile, DependenceChains
from repro.profiler.mix import UopMix


def make_mix(counts):
    mix = UopMix()
    mix.counts = dict(counts)
    mix.num_uops = sum(counts.values())
    mix.num_instructions = mix.num_uops
    return mix


def make_chains(cp, abp=2.0, ap=2.0):
    chains = DependenceChains()
    grid = tuple(range(16, 257, 16))
    chains.cp = ChainProfile(values={g: cp for g in grid})
    chains.abp = ChainProfile(values={g: abp for g in grid})
    chains.ap = ChainProfile(values={g: ap for g in grid})
    return chains


def thesis_config(divide_latency=5):
    """Table 3.1 machine: loads/stores latency 2, FP mul 5, div 5."""
    return MachineConfig(
        dispatch_width=4,
        rob_size=64,
        ports=nehalem_ports(),
        uop_latencies=(
            (UopKind.INT_ALU, 1),
            (UopKind.INT_MUL, 3),
            (UopKind.FP_ALU, 3),
            (UopKind.FP_MUL, 5),
            (UopKind.DIV, divide_latency),
            (UopKind.LOAD, 2),
            (UopKind.STORE, 2),
            (UopKind.BRANCH, 1),
            (UopKind.MOVE, 1),
        ),
    )


class TestThesisTable31:
    """The two worked instruction mixes of thesis §3.4."""

    MIX1 = {
        UopKind.LOAD: 40,
        UopKind.STORE: 20,
        UopKind.INT_ALU: 20,
        UopKind.FP_MUL: 10,
        UopKind.BRANCH: 10,
    }
    MIX2 = {
        UopKind.LOAD: 40,
        UopKind.STORE: 20,
        UopKind.INT_ALU: 20,
        UopKind.DIV: 10,
        UopKind.BRANCH: 10,
    }

    def test_mix1_port_schedule(self):
        # Thesis activity vector [15, 15, 40, 20, 20, 10]: loads on P2,
        # stores on P3/P4, FP mul on P0, branch on P5, ALU balanced over
        # P0/P1 (our scheduler splits the 20 stores evenly over P3/P4
        # where the thesis charges both ports per store; the binding port
        # -- loads at 40 -- is identical).
        activity = schedule_ports(self.MIX1, nehalem_ports())
        assert activity[2] == pytest.approx(40)   # loads
        assert activity[3] + activity[4] == pytest.approx(20)  # stores
        assert activity[0] == pytest.approx(15)   # 10 FP mul + 5 ALU
        assert activity[1] == pytest.approx(15)
        assert activity[5] == pytest.approx(10)   # branches
        assert max(activity) == pytest.approx(40)

    def test_mix1_deff_is_2_5(self):
        limits = effective_dispatch_rate(
            make_mix(self.MIX1), make_chains(cp=8.0), thesis_config()
        )
        assert limits.effective() == pytest.approx(2.5, abs=0.05)

    def test_mix1_limited_by_load_port(self):
        limits = effective_dispatch_rate(
            make_mix(self.MIX1), make_chains(cp=8.0), thesis_config()
        )
        assert limits.limiter() in ("functional_port", "functional_unit")

    def test_mix2_deff_is_2_0(self):
        # The non-pipelined divider drops Deff to 100*1/(10*5) = 2.
        limits = effective_dispatch_rate(
            make_mix(self.MIX2), make_chains(cp=8.0), thesis_config()
        )
        assert limits.effective() == pytest.approx(2.0, abs=0.05)

    def test_mix2_limited_by_divider(self):
        limits = effective_dispatch_rate(
            make_mix(self.MIX2), make_chains(cp=8.0), thesis_config()
        )
        assert limits.limiter() == "functional_unit"


class TestEquation38:
    def test_rob16_cp6_unit_latency(self):
        # Thesis Eq 3.8: Deff = min(4, 16 / (1 * 6)) = 2.67.
        config = MachineConfig(
            dispatch_width=4,
            rob_size=16,
            uop_latencies=tuple((k, 1) for k in UopKind),
        )
        mix = make_mix({UopKind.INT_ALU: 16})
        limits = effective_dispatch_rate(mix, make_chains(cp=6.0), config)
        assert limits.dependences == pytest.approx(16 / 6, abs=0.01)


class TestScheduleProperties:
    def test_total_activity_is_conserved(self):
        counts = {UopKind.INT_ALU: 33, UopKind.LOAD: 21, UopKind.STORE: 11}
        activity = schedule_ports(counts, nehalem_ports())
        assert sum(activity) == pytest.approx(sum(counts.values()))

    def test_single_port_kinds_fixed(self):
        activity = schedule_ports({UopKind.LOAD: 50}, nehalem_ports())
        assert activity[2] == pytest.approx(50)
        assert sum(activity) == pytest.approx(50)

    def test_multi_port_kind_balances(self):
        # INT_ALU can go to P0 and P1: 30 uops -> 15 each.
        activity = schedule_ports({UopKind.INT_ALU: 30}, nehalem_ports())
        for port in (0, 1):
            assert activity[port] == pytest.approx(15.0)

    def test_balancing_respects_existing_load(self):
        # FP muls (P0 only among these) first, then ALU balances around.
        counts = {UopKind.FP_MUL: 10, UopKind.INT_ALU: 40}
        activity = schedule_ports(counts, nehalem_ports())
        assert activity[0] == pytest.approx(25.0)
        assert activity[1] == pytest.approx(25.0)

    def test_empty_mix(self):
        activity = schedule_ports({}, nehalem_ports())
        assert sum(activity) == 0.0


class TestDeffBounds:
    def test_never_exceeds_dispatch_width(self):
        mix = make_mix({UopKind.INT_ALU: 100})
        limits = effective_dispatch_rate(
            mix, make_chains(cp=1.0), MachineConfig()
        )
        assert limits.effective() <= MachineConfig().dispatch_width

    def test_deff_positive(self):
        mix = make_mix({UopKind.DIV: 100})
        limits = effective_dispatch_rate(
            mix, make_chains(cp=100.0), MachineConfig()
        )
        assert limits.effective() > 0.0

    def test_longer_cp_lowers_dependence_limit(self):
        mix = make_mix({UopKind.INT_ALU: 100})
        config = MachineConfig()
        short = effective_dispatch_rate(mix, make_chains(cp=4.0), config)
        long = effective_dispatch_rate(mix, make_chains(cp=40.0), config)
        assert long.dependences < short.dependences
