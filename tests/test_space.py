"""Declarative design spaces: parameters, constraints, JSON, default."""

import random

import pytest

from repro.core.machine import config_from_params, design_space
from repro.explore.space import DesignSpace, Parameter


def small_space(constraints=()):
    return DesignSpace(
        parameters=(
            Parameter.integer("dispatch_width", 2, 6, 2),
            Parameter.integer("rob_size", 64, 256, 64),
            Parameter.categorical("llc_mb", (2, 8)),
            Parameter.real("frequency_ghz", 1.66, 3.66, 1.0),
        ),
        constraints=tuple(constraints),
        name="small",
    )


class TestParameter:
    def test_integer_values(self):
        p = Parameter.integer("rob_size", 64, 256, 64)
        assert p.values() == (64, 128, 192, 256)

    def test_real_values_are_stable(self):
        p = Parameter.real("frequency_ghz", 1.2, 3.6, 0.3)
        values = p.values()
        assert len(values) == 9
        assert values[0] == 1.2 and values[-1] == 3.6
        assert values == p.values()  # no accumulation drift

    def test_categorical_values_verbatim(self):
        p = Parameter.categorical("l1d_kb", (16, 32, 64))
        assert p.values() == (16, 32, 64)

    @pytest.mark.parametrize("bad", [
        dict(name="x", kind="bool"),
        dict(name="x", kind="categorical", choices=()),
        dict(name="x", kind="int", low=4, high=2, step=1),
        dict(name="x", kind="int", low=2, high=4, step=0),
        dict(name="x", kind="float", low=None, high=4.0, step=1.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            Parameter(**bad)

    def test_sample_in_grid(self):
        p = Parameter.integer("rob_size", 64, 256, 64)
        rng = random.Random(0)
        for _ in range(50):
            assert p.sample(rng) in p.values()

    def test_mutate_moves_to_nearby_grid_value(self):
        p = Parameter.integer("rob_size", 64, 256, 64)
        rng = random.Random(0)
        for _ in range(50):
            mutated = p.mutate(128, rng)
            assert mutated in p.values()
            assert mutated != 128
            assert abs(p.values().index(mutated) - 1) <= 2

    def test_mutate_categorical_always_differs(self):
        p = Parameter.categorical("llc_mb", (2, 4, 8))
        rng = random.Random(1)
        assert all(p.mutate(4, rng) != 4 for _ in range(20))

    def test_mutate_single_value_parameter(self):
        p = Parameter.categorical("llc_mb", (8,))
        assert p.mutate(8, random.Random(0)) == 8

    def test_mutate_off_grid_redraws(self):
        p = Parameter.integer("rob_size", 64, 256, 64)
        assert p.mutate(100, random.Random(0)) in p.values()

    def test_dict_round_trip(self):
        for p in (Parameter.integer("a", 1, 9, 2),
                  Parameter.real("b", 0.5, 2.5, 0.5),
                  Parameter.categorical("c", ("x", "y"))):
            assert Parameter.from_dict(p.to_dict()) == p


class TestDesignSpace:
    def test_grid_size_and_enumeration(self):
        space = small_space()
        assert space.grid_size() == 3 * 4 * 2 * 3
        points = space.points()
        assert len(points) == space.size() == space.grid_size()
        assert len({space.key(p) for p in points}) == len(points)

    def test_constraints_filter_enumeration(self):
        space = small_space(["rob_size >= 32 * dispatch_width"])
        points = space.points()
        assert points and all(
            p["rob_size"] >= 32 * p["dispatch_width"] for p in points
        )
        assert space.size() < space.grid_size()

    def test_sample_and_mutate_respect_constraints(self):
        space = small_space(["rob_size >= 32 * dispatch_width"])
        rng = random.Random(7)
        for _ in range(30):
            point = space.sample(rng)
            assert space.satisfies(point)
            mutated = space.mutate(point, rng)
            assert space.satisfies(mutated)
            assert mutated != point

    def test_crossover_mixes_parents(self):
        space = small_space()
        rng = random.Random(3)
        a, b = space.sample(rng), space.sample(rng)
        child = space.crossover(a, b, rng)
        assert space.satisfies(child)
        for name, value in child.items():
            assert value in (a[name], b[name])

    def test_unsatisfiable_sampling_raises(self):
        space = small_space(["rob_size > 10000"])
        with pytest.raises(ValueError):
            space.sample(random.Random(0), max_tries=50)

    @pytest.mark.parametrize("expression", [
        "__import__('os').system('true')",          # call
        "().__class__.__base__.__subclasses__()",   # dunder escape
        "rob_size.__class__",                       # attribute access
        "[x for x in (1,)]",                        # comprehension
        "rob >= 16",                                # unknown name
        "rob_size >=",                              # syntax error
    ])
    def test_malicious_or_invalid_constraints_rejected(self,
                                                       expression):
        """Constraints are validated at construction, not mid-search."""
        with pytest.raises(ValueError):
            small_space([expression])

    def test_invalid_constraint_rejected_at_load_time(self, tmp_path):
        text = small_space().to_json().replace(
            '"constraints": []',
            '"constraints": ["__import__(\'os\')"]')
        with pytest.raises(ValueError):
            DesignSpace.from_json(text)

    def test_arithmetic_boolean_constraints_allowed(self):
        space = small_space([
            "rob_size >= 32 * dispatch_width and llc_mb in (2, 8)",
            "not (frequency_ghz > 3.66)",
        ])
        assert space.size() > 0

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace(parameters=(
                Parameter.categorical("llc_mb", (2,)),
                Parameter.categorical("llc_mb", (4,)),
            ))

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace(parameters=())

    def test_config_construction(self):
        space = small_space()
        point = space.points()[0]
        config = space.config(point)
        assert config.dispatch_width == point["dispatch_width"]
        assert config.rob_size == point["rob_size"]
        assert config == config_from_params(point)

    def test_unknown_parameter_name_rejected_at_construction(self):
        """Typos fail when the space is declared/loaded, not mid-search."""
        with pytest.raises(ValueError, match="not_a_knob"):
            DesignSpace(
                parameters=(Parameter.categorical("not_a_knob", (1,)),)
            )

    def test_duplicate_categorical_choices_rejected(self):
        with pytest.raises(ValueError, match="duplicate choices"):
            Parameter.categorical("llc_mb", (2, 2))

    def test_from_dict_missing_field_is_value_error(self):
        with pytest.raises(ValueError, match="missing"):
            Parameter.from_dict({"name": "frequency_ghz",
                                 "kind": "float",
                                 "low": 1.2, "high": 3.6})


class TestSerialization:
    def test_json_round_trip(self, tmp_path):
        space = small_space(["rob_size >= 32 * dispatch_width"])
        assert DesignSpace.from_json(space.to_json()) == space
        path = str(tmp_path / "space.json")
        space.save(path)
        loaded = DesignSpace.load(path)
        assert loaded == space
        assert loaded.configs() == space.configs()

    def test_unsupported_version_rejected(self):
        text = small_space().to_json().replace(
            '"version": 1', '"version": 999')
        with pytest.raises(ValueError):
            DesignSpace.from_json(text)


class TestDefaultSpace:
    def test_default_reproduces_design_space_bitwise(self):
        """DesignSpace.default() == the historical Table 6.3 grid."""
        assert DesignSpace.default().configs() == design_space()

    def test_default_round_trips_and_still_matches(self):
        reloaded = DesignSpace.from_json(DesignSpace.default().to_json())
        assert reloaded.configs() == design_space()

    def test_default_size(self):
        assert DesignSpace.default().size() == 243
