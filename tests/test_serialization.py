"""Profile serialization round-trip tests."""

import io

import pytest

from repro.core import AnalyticalModel, nehalem
from repro.profiler.serialization import (
    FORMAT_VERSION,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)


class TestRoundTrip:
    def test_dict_round_trip_preserves_scalars(self, gcc_profile):
        restored = profile_from_dict(profile_to_dict(gcc_profile))
        assert restored.name == gcc_profile.name
        assert restored.num_instructions == gcc_profile.num_instructions
        assert restored.sampling == gcc_profile.sampling
        assert restored.mix.num_uops == gcc_profile.mix.num_uops

    def test_round_trip_preserves_chains(self, gcc_profile):
        restored = profile_from_dict(profile_to_dict(gcc_profile))
        for rob in (64, 128, 256):
            assert restored.chains.cp.at(rob) == pytest.approx(
                gcc_profile.chains.cp.at(rob)
            )

    def test_round_trip_preserves_reuse(self, gcc_profile):
        restored = profile_from_dict(profile_to_dict(gcc_profile))
        assert restored.reuse.histogram == gcc_profile.reuse.histogram
        assert restored.reuse.cold_loads == gcc_profile.reuse.cold_loads

    def test_round_trip_preserves_micro_traces(self, gcc_profile):
        restored = profile_from_dict(profile_to_dict(gcc_profile))
        assert len(restored.micro_traces) == len(gcc_profile.micro_traces)
        original = gcc_profile.micro_traces[0]
        copy = restored.micro_traces[0]
        assert copy.load_reuse == original.load_reuse
        assert copy.memory.load_dependence == (
            original.memory.load_dependence
        )
        assert set(copy.memory.static_loads) == (
            set(original.memory.static_loads)
        )

    def test_predictions_identical_after_round_trip(self, gcc_profile):
        """The acid test: model output must not change."""
        restored = profile_from_dict(profile_to_dict(gcc_profile))
        model = AnalyticalModel()
        original = model.predict(gcc_profile, nehalem())
        replayed = model.predict(restored, nehalem())
        assert replayed.cpi == pytest.approx(original.cpi, rel=1e-9)
        assert replayed.power_watts == pytest.approx(
            original.power_watts, rel=1e-9
        )

    def test_file_round_trip(self, gcc_profile, tmp_path):
        path = str(tmp_path / "gcc.profile")
        save_profile(gcc_profile, path)
        restored = load_profile(path)
        assert restored.name == gcc_profile.name

    def test_stream_round_trip(self, gcc_profile):
        buffer = io.StringIO()
        save_profile(gcc_profile, buffer)
        buffer.seek(0)
        restored = load_profile(buffer)
        assert restored.mix.num_instructions == (
            gcc_profile.mix.num_instructions
        )

    def test_version_check(self, gcc_profile):
        data = profile_to_dict(gcc_profile)
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            profile_from_dict(data)

    def test_json_serializable(self, gcc_profile):
        import json
        text = json.dumps(profile_to_dict(gcc_profile))
        assert len(text) > 100
