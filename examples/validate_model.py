#!/usr/bin/env python3
"""Validate the analytical model against the cycle-level simulator.

Produces the Fig 6.1-style comparison table for a chosen slice of the
workload suite: per-benchmark simulated vs predicted CPI, the error, the
predicted MLP and the limiting dispatch factor.  Use this script when
changing the model to see where accuracy moves.  (The simulator is the
slow side here; model-only sweeps go through the SweepEngine instead --
see examples/parallel_sweep.py.)

Run:  python examples/validate_model.py [workload ...]
"""

import sys

from repro import (
    AnalyticalModel,
    SamplingConfig,
    generate_trace,
    make_workload,
    nehalem,
    profile_application,
    simulate,
    workload_names,
)

TRACE_LENGTH = 30_000
SAMPLING = SamplingConfig(1000, 5000)


def main() -> None:
    names = sys.argv[1:] or workload_names()
    model = AnalyticalModel()
    config = nehalem()

    print(f"{'benchmark':<14s} {'sim CPI':>8s} {'model CPI':>10s} "
          f"{'error':>8s} {'MLP':>6s}  limiter")
    errors = []
    for name in names:
        trace = generate_trace(make_workload(name),
                               max_instructions=TRACE_LENGTH)
        sim = simulate(trace, config)
        profile = profile_application(trace, SAMPLING)
        prediction = model.predict_performance(profile, config)
        error = (prediction.cpi - sim.cpi) / sim.cpi
        errors.append(abs(error))
        limiter = (
            prediction.windows[0].limiter if prediction.windows else "-"
        )
        print(f"{name:<14s} {sim.cpi:8.3f} {prediction.cpi:10.3f} "
              f"{error:+8.1%} {prediction.mlp:6.1f}  {limiter}")
    print(f"\nmean |CPI error| over {len(errors)} workloads: "
          f"{sum(errors) / len(errors):.1%}")
    print("(paper reference-core figure: 7.6% at 1000x longer traces)")


if __name__ == "__main__":
    main()
