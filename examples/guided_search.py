#!/usr/bin/env python3
"""Guided design-space search vs exhaustive sweep.

The paper's one-profile/many-evaluations economics make *search* the
natural consumer of the analytical model once spaces outgrow a grid
sweep.  This example:

1. declares an ~18k-configuration :class:`DesignSpace` (integer, float
   and categorical parameters with a constraint), far beyond the 243
   point grid of Table 6.3, and round-trips it through JSON;
2. computes the ground-truth optimum by exhaustive sweep (still cheap,
   thanks to the SweepEngine + ModelCache -- that is the paper's
   point);
3. runs the four seeded optimizers (random / hill / simulated
   annealing / genetic) under a budget of <= 3% of the space and
   compares their best-found EDP against the true optimum,
   archgym-style;
4. re-runs the winner under a power cap to show objective composition.

Run:  PYTHONPATH=src python examples/guided_search.py
"""

import tempfile

from repro import SamplingConfig, generate_trace, make_workload, \
    profile_application
from repro.explore import (
    DesignSpace,
    Parameter,
    SearchProblem,
    SweepEngine,
    get_objective,
    make_optimizer,
)

BUDGET = 500
SEED = 0


def big_space() -> DesignSpace:
    """An ~18k-point space mixing int, float and categorical axes."""
    return DesignSpace(
        parameters=(
            Parameter.integer("dispatch_width", 2, 6),
            Parameter.integer("rob_size", 32, 288, 32),
            Parameter.categorical("l1d_kb", (16, 32, 64)),
            Parameter.categorical("l2_kb", (128, 256, 512)),
            Parameter.categorical("llc_mb", (1, 2, 4, 8, 16)),
            Parameter.real("frequency_ghz", 1.2, 3.6, 0.3),
        ),
        constraints=("rob_size >= 16 * dispatch_width",),
        name="guided-search-demo",
    )


def main() -> None:
    # 1. Declare the space; prove it survives JSON round-tripping.
    space = big_space()
    with tempfile.NamedTemporaryFile("w", suffix=".json") as handle:
        space.save(handle.name)
        space = DesignSpace.load(handle.name)
    size = space.size()
    print(f"space: {space.name} -- {size} valid configurations "
          f"({space.grid_size()} grid points, "
          f"{len(space.constraints)} constraint)")

    # One-time profiling (the paper's only expensive step).
    trace = generate_trace(make_workload("gcc"),
                           max_instructions=10_000)
    profile = profile_application(trace, SamplingConfig(1000, 5000))

    objective = get_objective("edp")
    problem = SearchProblem([profile], space, objective,
                            engine=SweepEngine(workers=1))

    # 2. Ground truth: the whole space, exhaustively.
    best_point, best_fitness = problem.exhaustive_best()
    print(f"\nexhaustive optimum ({size} evaluations): "
          f"edp = {best_fitness:.4e}")
    print("  " + " ".join(f"{k}={v}" for k, v in best_point.items()))

    # 3. Guided search: <= 3% of the evaluations, fresh problem per
    #    optimizer so nobody inherits another's fitness cache.
    print(f"\noptimizer comparison (budget {BUDGET} = "
          f"{100.0 * BUDGET / size:.1f}% of the space, seed {SEED}):")
    print(f"  {'optimizer':<10s} {'evals':>6s} {'best edp':>12s} "
          f"{'vs optimum':>10s} {'wall':>8s}")
    for name in ("random", "hill", "sa", "ga"):
        fresh = SearchProblem([profile], space, objective,
                              engine=SweepEngine(workers=1))
        trajectory = make_optimizer(name, seed=SEED).search(fresh, BUDGET)
        gap = trajectory.best_fitness / best_fitness - 1.0
        print(f"  {name:<10s} {len(trajectory):>6d} "
              f"{trajectory.best_fitness:>12.4e} "
              f"{100.0 * gap:>9.2f}% "
              f"{trajectory.wall_seconds:>7.2f}s")

    # 4. Composable objectives: the same search under a 10 W cap.
    capped = get_objective("edp", power_cap_watts=10.0)
    fresh = SearchProblem([profile], space, capped,
                          engine=SweepEngine(workers=1))
    trajectory = make_optimizer("ga", seed=SEED).search(fresh, BUDGET)
    best = trajectory.best
    config = space.config(best.point)
    print(f"\npower-capped search ({capped.name}): "
          f"best edp = {best.fitness:.4e}")
    print(f"  {config.name} "
          f"(found at evaluation {best.index + 1}/{len(trajectory)})")


if __name__ == "__main__":
    main()
