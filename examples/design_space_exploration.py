#!/usr/bin/env python3
"""Design-space exploration: Pareto frontiers from one profile per app.

Reproduces the paper's headline use case (thesis Chapter 7): sweep a
design space with the analytical model -- hundreds of configurations in
seconds because the profile was collected once -- and extract the
performance/power Pareto frontier to shortlist interesting cores.

The sweep runs on the SweepEngine, which memoizes per-profile
intermediates across configurations; see examples/parallel_sweep.py for
its multiprocessing, on-disk-cache and streaming modes.

Run:  python examples/design_space_exploration.py
"""

import time

from repro import (
    AnalyticalModel,
    SamplingConfig,
    SweepEngine,
    generate_trace,
    make_workload,
    profile_application,
)
from repro.core.machine import design_space
from repro.explore.pareto import pareto_front

WORKLOADS = ["bzip2", "calculix"]  # the thesis' Fig 7.4 pair


def main() -> None:
    # One-time profiling (the only workload-dependent cost).
    profiles = []
    for name in WORKLOADS:
        trace = generate_trace(make_workload(name),
                               max_instructions=30_000)
        profiles.append(
            profile_application(trace, SamplingConfig(1000, 5000))
        )

    # The full 243-core space of thesis Table 6.3.
    configs = design_space()
    print(f"evaluating {len(configs)} configurations x "
          f"{len(WORKLOADS)} workloads ...")
    started = time.time()
    engine = SweepEngine(model=AnalyticalModel())
    results = engine.sweep(profiles, configs)
    elapsed = time.time() - started
    total = len(configs) * len(WORKLOADS)
    print(f"done: {total} model evaluations in {elapsed:.1f} s "
          f"({total / elapsed:.0f} evaluations/s)\n")

    for name, points in results.items():
        coordinates = [(p.seconds, p.power_watts) for p in points]
        frontier = pareto_front(coordinates)
        print(f"=== {name}: {len(frontier)} Pareto-optimal of "
              f"{len(points)} designs ===")
        frontier.sort(key=lambda i: coordinates[i][0])
        for index in frontier[:10]:
            point = points[index]
            print(f"  {point.config.name:<30s} "
                  f"{point.seconds * 1e6:8.1f} us  "
                  f"{point.power_watts:6.2f} W  "
                  f"CPI {point.cpi:5.2f}")
        if len(frontier) > 10:
            print(f"  ... and {len(frontier) - 10} more")
        print()


if __name__ == "__main__":
    main()
