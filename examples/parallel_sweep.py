#!/usr/bin/env python3
"""Parallel design-space sweeps with the SweepEngine.

Demonstrates the evaluation layer added on top of the paper's model:

1. profile several workloads once (the only expensive step);
2. warm an on-disk, content-addressed profile store so repeated sweeps
   skip the StatStack stack-distance conversion;
3. sweep the (profiles x configs) grid on a multiprocessing pool --
   results are bitwise identical to the serial path;
4. consume the sweep as a STREAM, folding Pareto frontiers while later
   design points are still being evaluated.

Run:  PYTHONPATH=src python examples/parallel_sweep.py
"""

import tempfile
import time

from repro import SamplingConfig, generate_trace, make_workload, \
    profile_application
from repro.core.machine import design_space
from repro.explore import StreamingParetoFront, SweepEngine
from repro.profiler.serialization import ProfileStore

WORKLOADS = ["gcc", "gamess", "mcf", "libquantum"]


def main() -> None:
    # 1. One-time profiling.
    profiles = []
    for name in WORKLOADS:
        trace = generate_trace(make_workload(name),
                               max_instructions=30_000)
        profiles.append(
            profile_application(trace, SamplingConfig(1000, 5000))
        )

    configs = design_space()  # the 243-core space of Table 6.3
    grid = len(profiles) * len(configs)

    with tempfile.TemporaryDirectory() as cache_dir:
        store = ProfileStore(cache_dir)

        # 2. First sweep: cold store (tables are computed and persisted).
        engine = SweepEngine(workers=1, store=store)
        started = time.time()
        engine.sweep(profiles, configs)
        cold = time.time() - started

        # 3. Second sweep: warm store + parallel workers.  Bitwise
        #    identical to the first; just faster.
        engine = SweepEngine(workers=4, store=store)

        # 4. Stream: frontiers update point by point, so the interesting
        #    designs are known long before the sweep finishes.
        frontiers = {name: StreamingParetoFront() for name in WORKLOADS}
        started = time.time()
        for point in engine.iter_sweep(profiles, configs):
            frontiers[point.workload].add_point(point)
        warm = time.time() - started

    print(f"grid: {len(WORKLOADS)} workloads x {len(configs)} configs "
          f"= {grid} evaluations")
    print(f"cold sweep (serial):          {cold:6.2f} s "
          f"({grid / cold:7.0f} evals/s)")
    print(f"warm sweep (4 workers):       {warm:6.2f} s "
          f"({grid / warm:7.0f} evals/s)\n")

    for name in WORKLOADS:
        frontier = frontiers[name].frontier()
        print(f"=== {name}: {len(frontier)} Pareto-optimal designs ===")
        for seconds, watts, point in frontier[:5]:
            print(f"  {point.config.name:<30s} {seconds * 1e6:8.1f} us  "
                  f"{watts:6.2f} W  CPI {point.cpi:5.2f}")
        if len(frontier) > 5:
            print(f"  ... and {len(frontier) - 5} more")
        print()


if __name__ == "__main__":
    main()
