#!/usr/bin/env python3
"""Example: close the accuracy loop with a validation campaign.

Runs the analytical model and the cycle-level reference simulator over
the same small (workloads x configurations) grid and prints the thesis
§7.4-style report: per-design CPI/time/power errors, CPI-stack
component errors, the Pareto filtering metrics (sensitivity,
specificity, accuracy, HVR) and the §7.5 mechanistic-vs-empirical
baseline comparison.

Run:  PYTHONPATH=src python examples/validation_campaign.py
"""

from repro.core.machine import design_space
from repro.explore.validate import ValidationCampaign

# A deliberately tiny grid so the example runs in seconds; scale the
# axes (or pass DesignSpace.default()) for a real campaign.
CONFIGS = design_space({
    "dispatch_width": (2, 4),
    "llc_mb": (2, 8),
    "rob_size": (64, 128),
    "l1d_kb": (16, 32),
})


def main() -> int:
    campaign = ValidationCampaign.from_workloads(
        ["gcc", "libquantum"],
        CONFIGS,
        instructions=4_000,
        train_fraction=0.25,
        seed=0,
        space_name="example-grid",
    )
    report = campaign.run()
    print("\n".join(report.summary_lines()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
