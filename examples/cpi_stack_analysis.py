#!/usr/bin/env python3
"""CPI stacks and phase analysis: where do the cycles go?

Reproduces the understanding-oriented applications of thesis §6.4-6.5 and
§7.1: build CPI stacks for different workload classes, track CPI phases
over time, and use the stack to pick a targeted optimization (the
libquantum discussion of Fig 7.1: the DRAM component dominates, so a
bigger LLC does nothing -- more MSHRs / channels do).

To chase a candidate optimization across a whole configuration space
instead of hand-picked variants, feed the profiles to the SweepEngine
(examples/parallel_sweep.py).

Run:  python examples/cpi_stack_analysis.py
"""

from dataclasses import replace

from repro import (
    AnalyticalModel,
    SamplingConfig,
    generate_trace,
    make_workload,
    nehalem,
    profile_application,
)

WORKLOADS = ["gamess", "gcc", "libquantum", "mcf"]


def bar(fraction: float, width: int = 40) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    model = AnalyticalModel()
    config = nehalem()

    # --- CPI stacks across workload classes ------------------------------
    print("=== CPI stacks (reference core) ===")
    profiles = {}
    for name in WORKLOADS:
        trace = generate_trace(make_workload(name),
                               max_instructions=30_000)
        profiles[name] = profile_application(
            trace, SamplingConfig(1000, 5000)
        )
        prediction = model.predict_performance(profiles[name], config)
        stack = prediction.cpi_stack()
        print(f"\n{name}: CPI {prediction.cpi:.3f}")
        for component, value in stack.items():
            share = value / prediction.cpi if prediction.cpi else 0.0
            print(f"  {component:<10s} {value:6.3f}  {bar(share)}")

    # --- Phase analysis ----------------------------------------------------
    print("\n=== Phase analysis (astar: compute/memory rounds) ===")
    trace = generate_trace(make_workload("astar"), max_instructions=30_000)
    profile = profile_application(trace, SamplingConfig(1000, 5000))
    prediction = model.predict_performance(profile, config)
    for window in prediction.windows:
        print(f"  @{window.start:>6d}: CPI {window.cpi:6.3f} "
              f"{bar(min(window.cpi / 4.0, 1.0), 30)}  "
              f"(limited by {window.limiter})")

    # --- Targeted optimization (the Fig 7.1 story) -------------------------
    print("\n=== Optimizing libquantum: what actually helps? ===")
    base = model.predict_performance(profiles["libquantum"], config)
    variants = {
        "baseline": config,
        "2x LLC": replace(config, llc=replace(config.llc,
                                              size_bytes=16 << 20)),
        "2x MSHRs": replace(config, mshr_entries=20),
        "2x memory channels": replace(config, memory_channels=2),
    }
    for label, variant in variants.items():
        prediction = model.predict_performance(
            profiles["libquantum"], variant
        )
        speedup = base.cycles / prediction.cycles
        print(f"  {label:<20s} CPI {prediction.cpi:6.3f}  "
              f"speedup {speedup:5.2f}x")


if __name__ == "__main__":
    main()
