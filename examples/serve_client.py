"""The experiment service end to end: one warm server, many clients.

Starts an in-process ``ServerThread`` over a single Session with a
sharded run store, then exercises the three things the service layer
buys:

1. request dedup -- four concurrent identical sweeps coalesce into
   exactly one engine computation;
2. warm cache hits -- a repeat request is served from the sharded run
   store without touching the engine;
3. streaming -- a sweep with ``stream=True`` yields design points as
   NDJSON lines while the engine produces them.

Run with:  PYTHONPATH=src python examples/serve_client.py
"""

import json
import tempfile
import threading

from repro.api import Session
from repro.serve import ServerThread, ShardedRunStore, get_json, request_run

HOST = "127.0.0.1"

SWEEP = {
    "kind": "sweep",
    "params": {"workloads": ["gcc"], "limit": 8, "instructions": 4000},
}
N_CLIENTS = 4

with tempfile.TemporaryDirectory(prefix="serve_example_") as workdir:
    store = ShardedRunStore(f"{workdir}/runs")
    session = Session(workers=1, run_store=store)
    with ServerThread(session, port=0) as server:
        print(f"== serving on {HOST}:{server.port}")

        # 1. Four clients fire the identical sweep at once; the server
        #    runs the engine once and fans the result out.
        barrier = threading.Barrier(N_CLIENTS)
        replies = [None] * N_CLIENTS

        def fire(index):
            barrier.wait()
            replies[index] = request_run(HOST, server.port, SWEEP,
                                         timeout=120)

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(N_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = get_json(HOST, server.port, "/stats")
        payloads = {json.dumps(r["result"]["data"], sort_keys=True)
                    for r in replies}
        print(f"== dedup: {N_CLIENTS} identical requests -> "
              f"{stats['server']['computations']} computation(s), "
              f"{stats['server']['coalesced']} coalesced, "
              f"{len(payloads)} distinct payload(s)")

        # 2. The computation warmed the sharded run store: a repeat
        #    request is a pure store hit.
        warm = request_run(HOST, server.port, SWEEP, timeout=60)
        print(f"== warm repeat: cached={warm['cached']}")

        # 3. Streaming: design points arrive one NDJSON line at a
        #    time, in the same deterministic order a direct engine
        #    run produces.
        points = []
        streamed = request_run(
            HOST, server.port,
            {"kind": "sweep",
             "params": {"workloads": ["gcc", "mcf"], "limit": 4,
                        "instructions": 4000}},
            stream=True, timeout=120,
            on_point=lambda point: points.append(point))
        print(f"== stream: {len(points)} points "
              f"({[p['workload'] for p in points]}), "
              f"cached={streamed['cached']}")
    session.close()
    print("== drained cleanly")
