"""The programmatic front door: one warm Session for a whole pipeline.

Runs the paper's end-to-end loop -- profile once, sweep the design
space, validate the model against the cycle-level simulator -- as three
declarative ExperimentSpecs on a single Session.  Every stage shares
the same worker pool (created at most once), the same ModelCache, and
the same lazily-profiled workload registry, so the profile is collected
exactly once and every later stage starts warm.

Run with:  PYTHONPATH=src python examples/session_api.py
"""

from repro.api import ExperimentSpec, Session

WORKLOADS = ["gcc", "mcf"]
INSTRUCTIONS = 6000

specs = [
    # 1. Profile both workloads into the session registry (no files
    #    needed -- later stages reference the workloads by name).
    ExperimentSpec("profile", workloads=WORKLOADS,
                   instructions=INSTRUCTIONS),
    # 2. Sweep the first 24 configs of the Table 6.3 grid and rank the
    #    best average configuration by energy-delay product.
    ExperimentSpec("sweep", workloads=WORKLOADS,
                   instructions=INSTRUCTIONS, limit=24,
                   objective="edp"),
    # 3. Close the accuracy loop: model vs cycle-level simulator over
    #    the first 6 configs of the same grid.
    ExperimentSpec("validate", workloads=WORKLOADS,
                   instructions=INSTRUCTIONS, limit=6,
                   train_fraction=0.0),
]

with Session(workers=2) as session:
    profile, sweep, validate = session.run_many(specs)

    print("== profile")
    for entry in profile.data["profiles"]:
        print(f"  {entry['workload']}: {entry['instructions']} "
              f"instructions, {entry['micro_traces']} micro-traces "
              f"({entry['seconds']:.2f} s)")

    print("== sweep")
    for w in sweep.data["workloads"]:
        front = w["frontier"]
        print(f"  {w['workload']}: {len(w['points'])} designs, "
              f"{len(front)} Pareto-optimal")
    best = sweep.data["best_average"]
    print(f"  best average config ({best['objective']}): "
          f"{best['config']}")

    print("== validate")
    for w in validate.data["workloads"]:
        print(f"  {w['workload']}: mean CPI error "
              f"{w['cpi_error']['mean']:.1%}, Pareto accuracy "
              f"{w['pareto']['accuracy']:.2f}")

    # The whole pipeline shared one worker pool (0 when this platform
    # cannot spawn processes and every stage fell back to serial).
    print(f"== worker pools created: {session.pool.pools_created}")
    print("== spec fingerprints (run-store keys):")
    for result in (profile, sweep, validate):
        print(f"  {result.kind:<9} {result.spec_fingerprint[:16]}")
