#!/usr/bin/env python3
"""DVFS exploration and power-constrained core selection.

Reproduces the application studies of thesis §7.2-7.3: find the ED^2P-
optimal DVFS operating point for a workload (Table 7.2 / Fig 7.3) and
pick the fastest core under a power budget (Table 7.1).

For large DVFS grids or many workloads, explore_dvfs accepts an
``engine=SweepEngine(...)`` argument to share the sweep engine's
worker pool and caches (see examples/parallel_sweep.py).

Run:  python examples/dvfs_and_power_budget.py
"""

from repro import (
    AnalyticalModel,
    SamplingConfig,
    generate_trace,
    make_workload,
    nehalem,
    profile_application,
)
from repro.core.machine import design_space
from repro.explore.dvfs import (
    best_under_power_cap,
    explore_dvfs,
    optimal_ed2p,
)


def main() -> None:
    trace = generate_trace(make_workload("gamess"),
                           max_instructions=30_000)
    profile = profile_application(trace, SamplingConfig(1000, 5000))
    model = AnalyticalModel()

    # --- DVFS sweep on the reference core --------------------------------
    print("=== DVFS exploration (gamess on the Nehalem-like core) ===")
    print(f"{'GHz':>5s} {'Vdd':>5s} {'ms':>8s} {'W':>7s} "
          f"{'EDP':>10s} {'ED2P':>10s}")
    results = explore_dvfs(profile, nehalem(), model=model)
    for point in results:
        print(f"{point.point.frequency_ghz:5.2f} {point.point.vdd:5.2f} "
              f"{point.seconds * 1e3:8.3f} {point.power_watts:7.2f} "
              f"{point.edp:10.3e} {point.ed2p:10.3e}")
    best = optimal_ed2p(results)
    print(f"ED^2P-optimal operating point: "
          f"{best.point.frequency_ghz:.2f} GHz\n")

    # --- Power-constrained core selection --------------------------------
    print("=== Fastest core under a power budget (gamess) ===")
    space = design_space({
        "dispatch_width": (2, 4, 6),
        "rob_size": (64, 128, 256),
        "llc_mb": (2, 8),
    })
    candidates = [(config, model.predict(profile, config))
                  for config in space]
    for cap in (6.0, 9.0, 14.0):
        chosen = best_under_power_cap(candidates, cap)
        if chosen is None:
            print(f"cap {cap:5.1f} W: no feasible design")
        else:
            config, result = chosen
            print(f"cap {cap:5.1f} W: {config.name:<30s} "
                  f"{result.seconds * 1e3:7.3f} ms at "
                  f"{result.power_watts:5.2f} W")


if __name__ == "__main__":
    main()
