#!/usr/bin/env python3
"""Quickstart: profile a workload once, predict performance and power.

Demonstrates the paper's core flow:

1. generate (or load) a workload trace;
2. run the micro-architecture independent profiler ONCE;
3. evaluate the analytical model for any machine configuration in
   milliseconds;
4. cross-check against the cycle-level reference simulator.

Next steps: examples/design_space_exploration.py sweeps whole design
spaces, and examples/parallel_sweep.py shows the SweepEngine's
parallel, cached and streaming sweep modes.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalyticalModel,
    SamplingConfig,
    generate_trace,
    make_workload,
    nehalem,
    low_power_core,
    profile_application,
    simulate,
)


def main() -> None:
    # 1. A gcc-like workload trace (synthetic SPEC CPU 2006 stand-in).
    trace = generate_trace(make_workload("gcc"), max_instructions=50_000)
    print(f"workload: {trace.name}, {len(trace)} instructions, "
          f"{trace.stats().uops_per_instruction:.2f} uops/instruction")

    # 2. One micro-architecture independent profiling pass (the slow
    #    step -- done once, reused for every configuration below).
    profile = profile_application(
        trace, SamplingConfig(micro_trace_length=1000, window_length=5000)
    )
    print(f"profiled {len(profile.micro_traces)} micro-traces "
          f"({profile.sample_fraction:.0%} of the trace)")
    print(f"branch entropy (8-bit history): "
          f"{profile.branch_entropy.at(8):.3f}")
    print(f"critical path at ROB=128: {profile.chains.cp.at(128):.1f}")

    # 3. Model evaluation: two very different cores, same profile.
    model = AnalyticalModel()
    for config in (nehalem(), low_power_core()):
        result = model.predict(profile, config)
        stack = result.cpi_stack()
        print(f"\n--- {config.name} ---")
        print(f"predicted CPI:   {result.cpi:.3f}")
        print(f"predicted power: {result.power_watts:.2f} W "
              f"(static {result.power.static_total:.2f} W)")
        print(f"CPI stack:       " + "  ".join(
            f"{key}={value:.2f}" for key, value in stack.items()
        ))

    # 4. Ground truth: the cycle-level simulator on the reference core.
    reference = simulate(trace, nehalem())
    predicted = model.predict(profile, nehalem())
    error = (predicted.cpi - reference.cpi) / reference.cpi
    print(f"\nsimulated CPI on {nehalem().name}: {reference.cpi:.3f} "
          f"(model error {error:+.1%})")


if __name__ == "__main__":
    main()
