"""Package metadata for the ISPASS 2015 reproduction.

Installs the ``repro`` package from ``src/`` and the ``repro`` console
script (the same entry point as ``python -m repro.cli``).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

ROOT = Path(__file__).resolve().parent

# Single-source the version from the package (no import at build time).
VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    (ROOT / "src" / "repro" / "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro-ispass2015",
    version=VERSION,
    description=(
        "Micro-architecture independent analytical processor "
        "performance and power modeling (ISPASS 2015 reproduction)"
    ),
    long_description=(ROOT / "README.md").read_text(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": ["repro = repro.cli:main"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Intended Audience :: Science/Research",
    ],
)
