"""The multi-tenant experiment service front door.

:class:`ExperimentServer` exposes one warm
:class:`~repro.api.session.Session` -- its loaded profiles, model
caches, worker pool and run store -- to many concurrent clients over a
small HTTP/JSON surface:

``POST /run``
    Body: an :class:`~repro.api.spec.ExperimentSpec` JSON document.
    Answers ``{"cached": ..., "result": ...}``; with ``?stream=1`` the
    response is chunked NDJSON -- ``{"event": "point", ...}`` partials
    as design points are computed, then one ``{"event": "result", ...}``
    line.
``GET /health``
    Liveness plus drain state.
``GET /stats``
    The server's plain-int counters (dedup, batching, shedding) next to
    the session's store/pool counters.
``GET /metrics``
    The session telemetry's metrics snapshot (when enabled).

Three layers keep N clients cheaper than N sessions: warm requests are
answered straight from the run store (off-loop, before any queueing);
identical cold requests coalesce onto one in-flight computation
(:class:`~repro.serve.dedup.InflightTable`); compatible concurrent
sweeps merge into shared engine passes
(:class:`~repro.serve.batch.SweepBatcher`).  Overload is shed with
``503`` at ``max_queue`` in-flight requests, per-request deadlines
answer ``504`` (the shielded computation still completes and lands in
the store), and ``SIGTERM``/``SIGINT`` trigger a graceful drain: stop
accepting, finish in-flight work, then exit.

The event loop never blocks: every session/store/engine call runs on a
small thread-pool executor (the ``async-safety`` lint rule keeps it
that way), and the executor threads serialize on the session lock.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import signal
import socket
from typing import Any, Dict, Optional

from repro.api.session import Session
from repro.api.spec import ExperimentSpec, SpecError
from repro.serve.batch import SweepBatcher
from repro.serve.dedup import InflightTable
from repro.serve.protocol import (HttpRequest, NdjsonStream,
                                  ProtocolError, read_request,
                                  write_json)

__all__ = ["ExperimentServer", "ServerThread"]

_SERVER_COUNTERS = ("requests", "store_hits", "shed", "timeouts",
                    "errors", "disconnects", "streams")


class ExperimentServer:
    """Async HTTP service over one shared warm session.

    Parameters
    ----------
    session:
        The session every request runs against.  The server serializes
        engine work on ``session.lock``; the caller keeps ownership
        (closing the session after :meth:`drain` is the caller's job).
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    max_queue:
        In-flight request cap; excess requests are shed with ``503``.
    request_timeout:
        Per-request deadline in seconds for non-streaming requests
        (``504`` on expiry; the underlying computation finishes and
        warms the store).  ``None`` disables the deadline.
    batch_window / max_batch:
        Sweep micro-batching knobs (see
        :class:`~repro.serve.batch.SweepBatcher`).
    drain_timeout:
        Seconds :meth:`drain` waits for in-flight requests.
    executor_workers:
        Thread-pool size for blocking session/store work.
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        max_queue: int = 32,
        request_timeout: Optional[float] = None,
        batch_window: float = 0.05,
        max_batch: int = 16,
        drain_timeout: float = 10.0,
        executor_workers: int = 4,
    ) -> None:
        self.session = session
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="repro-serve",
        )
        self.inflight = InflightTable()
        self.batcher = SweepBatcher(session, self.executor,
                                    window=batch_window,
                                    max_batch=max_batch)
        self.requests = 0
        self.store_hits = 0
        self.shed = 0
        self.timeouts = 0
        self.errors = 0
        self.disconnects = 0
        self.streams = 0
        self._active = 0
        self._draining = False
        self._flushed: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._shutdown = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._client, self.host, self.port)
        for sock in self._server.sockets or ():
            if sock.family in (socket.AF_INET, socket.AF_INET6):
                self.port = sock.getsockname()[1]
                break

    async def serve_forever(self) -> None:
        """Run until ``SIGTERM``/``SIGINT`` (or :meth:`shutdown`), then drain."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.shutdown)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        try:
            await self._shutdown.wait()
            await self.drain()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    def shutdown(self) -> None:
        """Request a graceful drain (signal-handler safe)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, release workers.

        In-flight requests get :attr:`drain_timeout` seconds to finish;
        the executor is then shut down.  The session itself stays open
        (the owner closes it).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._idle is not None and self._active:
            try:
                await asyncio.wait_for(self._idle.wait(),
                                       self.drain_timeout)
            except asyncio.TimeoutError:
                pass
        await self.batcher.close()
        self.executor.shutdown(wait=False)

    # -- accounting ----------------------------------------------------

    @property
    def computations(self) -> int:
        """Engine passes actually executed for ``/run`` requests."""
        return self.inflight.leaders + self.batcher.groups

    @property
    def coalesced(self) -> int:
        """Requests answered without their own engine pass."""
        return (self.inflight.followers + self.batcher.followers
                + self.batcher.merged + self.store_hits)

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` document (plain ints, JSON-clean)."""
        server: Dict[str, Any] = {
            name: getattr(self, name) for name in _SERVER_COUNTERS
        }
        server["active"] = self._active
        server["draining"] = self._draining
        server["computations"] = self.computations
        server["coalesced"] = self.coalesced
        payload: Dict[str, Any] = {
            "server": server,
            "dedup": {"leaders": self.inflight.leaders,
                      "followers": self.inflight.followers,
                      "inflight": len(self.inflight)},
            "batch": {"groups": self.batcher.groups,
                      "computed": self.batcher.computed,
                      "merged": self.batcher.merged,
                      "followers": self.batcher.followers},
        }
        store = self.session.run_store
        if store is not None:
            payload["store"] = {
                attr: getattr(store, attr)
                for attr in store._COUNTER_ATTRS
            }
        return payload

    def flush_metrics(self) -> None:
        """Publish ``serve.*`` counter deltas into the session metrics."""
        metrics = self.session.telemetry.metrics
        if not metrics.enabled:
            return
        values = {name: getattr(self, name)
                  for name in _SERVER_COUNTERS}
        values["dedup_leaders"] = self.inflight.leaders
        values["dedup_followers"] = self.inflight.followers
        values["batch_groups"] = self.batcher.groups
        values["batch_merged"] = self.batcher.merged
        values["batch_followers"] = self.batcher.followers
        for name, value in values.items():
            delta = value - self._flushed.get(name, 0)
            if delta:
                metrics.inc(f"serve.{name}", delta)
                self._flushed[name] = value

    # -- connection handling -------------------------------------------

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Serve one connection: requests until close or stream end."""
        try:
            while True:
                request = await read_request(reader)
                if request is None:
                    break
                self.requests += 1
                with self.session.telemetry.span(
                        "serve.request", method=request.method,
                        path=request.path):
                    keep = await self._dispatch(request, writer)
                self.flush_metrics()
                if not keep or not request.keep_alive():
                    break
        except ProtocolError as exc:
            try:
                await write_json(writer, exc.status,
                                 {"error": str(exc)})
            except (ConnectionError, OSError):
                self.disconnects += 1
        except (ConnectionError, OSError):
            self.disconnects += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; True when the connection may persist."""
        if request.path == "/health":
            if request.method != "GET":
                return await self._method_not_allowed(writer)
            status = "draining" if self._draining else "ok"
            await write_json(writer, 200, {"status": status,
                                           "active": self._active})
            return True
        if request.path == "/stats":
            if request.method != "GET":
                return await self._method_not_allowed(writer)
            await write_json(writer, 200, self.stats())
            return True
        if request.path == "/metrics":
            if request.method != "GET":
                return await self._method_not_allowed(writer)
            metrics = self.session.telemetry.metrics
            if metrics.enabled:
                self.flush_metrics()
                payload: Dict[str, Any] = {"enabled": True,
                                           **metrics.snapshot()}
            else:
                payload = {"enabled": False}
            await write_json(writer, 200, payload)
            return True
        if request.path == "/run":
            if request.method != "POST":
                return await self._method_not_allowed(writer)
            return await self._run_route(request, writer)
        await write_json(writer, 404,
                         {"error": f"no such route: {request.path}"})
        return True

    async def _method_not_allowed(self,
                                  writer: asyncio.StreamWriter) -> bool:
        """Answer 405 (the route exists, the verb is wrong)."""
        await write_json(writer, 405, {"error": "method not allowed"})
        return True

    # -- /run ----------------------------------------------------------

    async def _run_route(self, request: HttpRequest,
                         writer: asyncio.StreamWriter) -> bool:
        """Admission control + error envelope around :meth:`_execute`."""
        if self._draining:
            self.shed += 1
            await write_json(writer, 503, {"error": "server draining"})
            return False
        if self._active >= self.max_queue:
            self.shed += 1
            await write_json(
                writer, 503,
                {"error": f"overloaded ({self._active} in flight)"})
            return True
        self._active += 1
        self._idle.clear()
        try:
            return await self._execute(request, writer)
        except ProtocolError as exc:
            await write_json(writer, exc.status, {"error": str(exc)})
            return True
        except SpecError as exc:
            await write_json(writer, 400, {"error": str(exc)})
            return True
        except asyncio.TimeoutError:
            self.timeouts += 1
            await write_json(
                writer, 504,
                {"error": "request deadline exceeded (the computation "
                          "continues and will warm the store)"})
            return True
        except (ConnectionError, OSError):
            self.disconnects += 1
            return False
        except Exception as exc:  # noqa: BLE001 -- service boundary
            self.errors += 1
            try:
                await write_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"})
            except (ConnectionError, OSError):
                self.disconnects += 1
            return False
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    async def _execute(self, request: HttpRequest,
                       writer: asyncio.StreamWriter) -> bool:
        """Parse, answer warm from the store, else compute (coalesced)."""
        loop = asyncio.get_running_loop()
        try:
            spec = ExperimentSpec.coerce(request.json())
        except SpecError:
            raise
        stream = request.flag("stream")

        # Warm path: the store answers off-loop, before any queueing.
        cached = await loop.run_in_executor(
            self.executor, self.session.lookup, spec)
        if cached is not None:
            self.store_hits += 1
            return await self._respond(writer, cached, stream)

        key = await loop.run_in_executor(
            self.executor, Session.run_key, spec)
        if spec.kind == "sweep":
            return await self._run_sweep(spec, key, stream, writer)
        return await self._run_solo(spec, key, stream, writer)

    async def _run_solo(self, spec: ExperimentSpec, key: str,
                        stream: bool,
                        writer: asyncio.StreamWriter) -> bool:
        """Non-sweep kinds: dedup identical requests, run on a worker."""
        loop = asyncio.get_running_loop()

        async def compute():
            return await loop.run_in_executor(
                self.executor, self.session.run, spec)

        waiter = self.inflight.run(key, compute)
        if self.request_timeout is not None:
            result = await asyncio.wait_for(waiter,
                                            self.request_timeout)
        else:
            result = await waiter
        return await self._respond(writer, result, stream)

    async def _run_sweep(self, spec: ExperimentSpec, key: str,
                         stream: bool,
                         writer: asyncio.StreamWriter) -> bool:
        """Sweeps: micro-batch compatible specs, stream partials."""
        ticket = self.batcher.submit(spec, key, want_points=stream)
        if not stream:
            waiter = asyncio.shield(ticket.future)
            if self.request_timeout is not None:
                result = await asyncio.wait_for(waiter,
                                                self.request_timeout)
            else:
                result = await waiter
            return await self._respond(writer, result, False)

        self.streams += 1
        ndjson = NdjsonStream(writer)
        await ndjson.start()
        while True:
            kind, payload = await ticket.queue.get()
            if kind == "end":
                break
            await ndjson.send(payload)
        result = await asyncio.shield(ticket.future)
        await ndjson.send({"event": "result", "cached": result.cached,
                           "result": result.to_dict(
                               include_telemetry=False)})
        await ndjson.close()
        return False

    async def _respond(self, writer: asyncio.StreamWriter,
                       result, stream: bool) -> bool:
        """Write one final result (plain JSON or a one-line stream)."""
        document = result.to_dict(include_telemetry=False)
        if stream:
            self.streams += 1
            ndjson = NdjsonStream(writer)
            await ndjson.start()
            await ndjson.send({"event": "result",
                               "cached": result.cached,
                               "result": document})
            await ndjson.close()
            return False
        await write_json(writer, 200, {"cached": result.cached,
                                       "result": document})
        return True


class ServerThread:
    """An :class:`ExperimentServer` on a background thread's event loop.

    For tests, benchmarks and notebook use: enter the context manager,
    talk to ``127.0.0.1:<thread.port>``, leave to drain and join.

    Examples
    --------
    >>> with ServerThread(session, port=0) as server:    # doctest: +SKIP
    ...     reply = request_run("127.0.0.1", server.port, spec)
    """

    def __init__(self, session: Session, host: str = "127.0.0.1",
                 port: int = 0, **kwargs: Any) -> None:
        import threading

        self.server = ExperimentServer(session, host, port, **kwargs)
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._main,
                                        name="repro-serve-loop",
                                        daemon=True)

    @property
    def port(self) -> int:
        """The bound port (valid once the context manager has entered)."""
        return self.server.port

    def _main(self) -> None:
        """Thread body: run the server's loop until drained."""
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 -- reported to owner
            self._failure = exc
        finally:
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_forever()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._failure is not None:
            raise RuntimeError("server failed to start") \
                from self._failure
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 30s")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Request a drain and join the loop thread.

        The shutdown event lives on the server's loop, so the request
        hops through ``call_soon_threadsafe`` (events are not
        thread-safe to set directly).
        """
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.shutdown)
        self._thread.join(timeout=timeout)

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
