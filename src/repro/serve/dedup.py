"""In-flight request coalescing keyed by spec fingerprint.

Many clients asking one warm server the same question at the same time
is the normal case for a cache-fronted service -- a popular sweep goes
out in a dashboard, every viewer's browser POSTs the identical spec
within a second.  Computing it N times would be pure waste *and* a
worker-pool stampede.

:class:`InflightTable` collapses that: the first arrival for a run key
becomes the **leader** and starts the computation as an independent
task; every later arrival with the same key while that task is still
running becomes a **follower** and simply awaits the same task.  All
waiters get the same result object; the computation ran once.

Two properties matter for the service contract:

* waiters await through :func:`asyncio.shield`, so a client that
  disconnects mid-wait cancels only *its own* wait -- the shared
  computation (and the followers still attached to it) is unaffected;
* the table entry is removed the moment the task finishes, so a key
  becomes coalescible again immediately (later identical requests are
  then served by the run store instead).

Keys are :meth:`Session.run_key` values -- the spec's canonical
fingerprint, content-extended for file-referencing specs -- the same
key the :class:`~repro.api.runstore.RunStore` uses, so "identical
request" means exactly "would hit the same store entry".
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict

__all__ = ["InflightTable"]


class InflightTable:
    """Coalesces concurrent identical computations onto one task.

    Examples
    --------
    >>> table = InflightTable()                        # doctest: +SKIP
    >>> result = await table.run(key, compute)         # doctest: +SKIP

    The plain-int counters ``leaders`` / ``followers`` account every
    admission: ``leaders`` computations actually started,
    ``followers`` were answered by an already-running one.
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Task] = {}
        self.leaders = 0
        self.followers = 0

    def __len__(self) -> int:
        """Number of computations currently in flight."""
        return len(self._inflight)

    def _finish(self, key: str, task: asyncio.Task) -> None:
        """Drop a finished task from the table and mark it observed.

        Reading the exception here keeps asyncio from logging
        "exception was never retrieved" when a leader fails after its
        own client already disconnected.
        """
        if self._inflight.get(key) is task:
            del self._inflight[key]
        if not task.cancelled():
            task.exception()

    async def run(
        self,
        key: str,
        compute: Callable[[], Awaitable[Any]],
    ) -> Any:
        """Await the computation for ``key``, starting it if absent.

        ``compute`` is only called when no computation for ``key`` is
        in flight; either way the caller awaits the shared task through
        a shield, so cancelling this coroutine (client disconnect)
        never cancels the shared computation.
        """
        task = self._inflight.get(key)
        if task is None:
            self.leaders += 1
            task = asyncio.get_running_loop().create_task(compute())
            task.add_done_callback(
                lambda done, key=key: self._finish(key, done)
            )
            self._inflight[key] = task
        else:
            self.followers += 1
        return await asyncio.shield(task)
