"""Micro-batching of compatible sweep requests onto one engine pass.

Sweeps dominate service traffic and parallelize per *(profile, config)*
cell, so two concurrent sweep requests that differ only in their
workload lists are one merged grid, not two: :class:`SweepBatcher`
holds arriving sweep specs for a bounded window (``window`` seconds,
``max_batch`` specs), groups the arrivals by **compatibility key** --
the spec with its ``workloads`` field blanked, so profiling parameters,
file profiles, space, limit and objective all must match -- and runs
each group as a single
:meth:`~repro.explore.engine.SweepEngine.iter_sweep` over the union of
the group's profiles on the shared session.

As the merged grid streams, every :class:`~repro.explore.dse.DesignPoint`
is demultiplexed back to each client that asked for its workload:
streaming clients receive NDJSON partials in engine order (profile-major,
config order per workload -- deterministic for a given batch), and each
spec's final payload is assembled by the same
:func:`~repro.api.session.sweep_payload` routine the session uses, in
the spec's own workload order, so a batched result is **bitwise
identical** to the same spec run solo and lands in the run store under
the spec's own key.

Identical specs coalesce entirely: a submission whose run key is
already pending or executing attaches to the existing entry instead of
creating work (streaming late-joiners get the final result without the
partial prefix that already streamed past).  All engine work runs on
the server's thread-pool executor under the session lock -- the event
loop only routes events.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.api.results import RunResult
from repro.api.session import Session, _point_dict, sweep_payload
from repro.api.spec import ExperimentSpec, SpecError
from repro.profiler.serialization import canonical_fingerprint

__all__ = ["BatchTicket", "SweepBatcher"]


def _consume_exception(future: "asyncio.Future") -> None:
    """Mark a failed future observed (its waiter may have vanished)."""
    if not future.cancelled() and future.exception() is not None:
        pass


class _Entry:
    """One admitted spec: its identity, waiters and event fan-out."""

    __slots__ = ("spec", "params", "key", "group_key", "future",
                 "queues", "executing")

    def __init__(self, spec: ExperimentSpec, key: str, group_key: str,
                 future: "asyncio.Future") -> None:
        self.spec = spec
        self.params = spec.params
        self.key = key
        self.group_key = group_key
        self.future = future
        self.queues: List["asyncio.Queue"] = []
        self.executing = False

    def push_point(self, payload: Dict[str, Any]) -> None:
        """Fan one partial point out to every attached stream."""
        for queue in self.queues:
            queue.put_nowait(("point", payload))

    def resolve(self, result: RunResult) -> None:
        """Deliver the final result to every waiter (idempotent)."""
        if self.future.done():
            return
        for queue in self.queues:
            queue.put_nowait(("end", None))
        self.future.set_result(result)

    def resolve_error(self, exc: BaseException) -> None:
        """Fail every waiter with one exception (idempotent)."""
        if self.future.done():
            return
        for queue in self.queues:
            queue.put_nowait(("end", None))
        self.future.set_exception(exc)


class BatchTicket:
    """A submitted spec's handle: the result future + optional stream.

    ``future`` resolves to the spec's :class:`RunResult`;  ``queue``
    (present only for streaming submissions) yields ``("point",
    payload)`` events followed by one ``("end", None)`` sentinel.
    Await the future through :func:`asyncio.shield` -- it may be shared
    with other clients.
    """

    __slots__ = ("future", "queue")

    def __init__(self, future: "asyncio.Future",
                 queue: Optional["asyncio.Queue"]) -> None:
        self.future = future
        self.queue = queue


class SweepBatcher:
    """Bounded micro-batching queue over one session's engine.

    Parameters
    ----------
    session:
        The shared warm :class:`~repro.api.session.Session`.
    executor:
        The server's thread-pool executor; all blocking engine/store
        work runs there (never on the event loop).
    window:
        Seconds the first arrival waits for compatible company.
    max_batch:
        Specs per collection round; a full round executes immediately.

    Plain-int counters: ``groups`` (merged engine passes), ``computed``
    (specs computed fresh), ``merged`` (specs that shared another
    spec's pass), ``followers`` (submissions coalesced onto an
    identical in-flight spec).
    """

    def __init__(
        self,
        session: Session,
        executor,
        window: float = 0.05,
        max_batch: int = 16,
    ) -> None:
        self.session = session
        self.executor = executor
        self.window = window
        self.max_batch = max_batch
        self.groups = 0
        self.computed = 0
        self.merged = 0
        self.followers = 0
        self._arrivals: "asyncio.Queue[_Entry]" = asyncio.Queue()
        self._waiters: Dict[str, _Entry] = {}
        self._worker: Optional["asyncio.Task"] = None

    @staticmethod
    def group_key(spec: ExperimentSpec) -> str:
        """The compatibility key: the spec with workloads blanked.

        Two sweep specs merge exactly when everything except their
        ``workloads`` lists agrees (kind, file profiles, space,
        objective, limit and all profiling parameters).
        """
        params = dict(spec.params)
        params["workloads"] = None
        return canonical_fingerprint({"kind": spec.kind,
                                      "params": params})

    def submit(self, spec: ExperimentSpec, key: str,
               want_points: bool = False) -> BatchTicket:
        """Admit one sweep spec; coalesce onto an identical in-flight one.

        ``key`` is the spec's :meth:`Session.run_key` (computed by the
        caller off the event loop -- it may hash referenced files).
        """
        loop = asyncio.get_running_loop()
        existing = self._waiters.get(key)
        if existing is not None:
            self.followers += 1
            queue: Optional[asyncio.Queue] = None
            if want_points:
                queue = asyncio.Queue()
                if existing.executing:
                    # The partial prefix already streamed past; the
                    # late joiner gets the final result only.
                    queue.put_nowait(("end", None))
                else:
                    existing.queues.append(queue)
            return BatchTicket(existing.future, queue)
        future = loop.create_future()
        future.add_done_callback(_consume_exception)
        entry = _Entry(spec, key, self.group_key(spec), future)
        queue = None
        if want_points:
            queue = asyncio.Queue()
            entry.queues.append(queue)
        self._waiters[key] = entry
        future.add_done_callback(
            lambda _done, key=key, entry=entry: self._forget(key, entry)
        )
        self._arrivals.put_nowait(entry)
        if self._worker is None or self._worker.done():
            self._worker = loop.create_task(self._run())
        return BatchTicket(future, queue)

    def _forget(self, key: str, entry: _Entry) -> None:
        """Drop a finished entry so its key becomes coalescible again."""
        if self._waiters.get(key) is entry:
            del self._waiters[key]

    async def _run(self) -> None:
        """Collect arrival rounds and execute their groups in order."""
        loop = asyncio.get_running_loop()
        while True:
            entry = await self._arrivals.get()
            batch = [entry]
            deadline = loop.time() + self.window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._arrivals.get(), remaining))
                except asyncio.TimeoutError:
                    break
            groups: Dict[str, List[_Entry]] = {}
            for item in batch:
                groups.setdefault(item.group_key, []).append(item)
            for group in groups.values():
                for item in group:
                    item.executing = True
                self.groups += 1
                self.computed += len(group)
                self.merged += len(group) - 1
                try:
                    await loop.run_in_executor(
                        self.executor, _run_group, self.session, group,
                        loop,
                    )
                except Exception as exc:  # noqa: BLE001 -- waiter boundary
                    for item in group:
                        item.resolve_error(exc)

    async def close(self) -> None:
        """Stop the collector and fail anything still queued."""
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        for entry in list(self._waiters.values()):
            entry.resolve_error(
                ConnectionError("server shutting down"))


def _route_points(session: Session, group: List[_Entry],
                  profiles: List[Any], configs: List[Any],
                  wanting: Mapping[str, List[_Entry]],
                  emit: Callable[[_Entry, Dict[str, Any]], None],
                  ) -> Tuple[Dict[str, list], Dict[str, Any]]:
    """Stream the merged grid, demultiplexing points per entry."""
    from repro.explore.pareto import StreamingParetoFront

    results: Dict[str, list] = {name: [] for name in wanting}
    frontiers: Dict[str, Any] = {
        name: StreamingParetoFront() for name in wanting
    }
    for point in session.engine.iter_sweep(profiles, configs):
        name = point.workload
        results[name].append(point)
        frontiers[name].add_point(point)
        payload = {"event": "point", "workload": name,
                   **_point_dict(point)}
        for entry in wanting[name]:
            if entry.queues:
                emit(entry, payload)
    return results, frontiers


def _entry_names(session: Session, entry: _Entry) -> List[str]:
    """The entry's workload names in spec order (validated)."""
    profiles = session._gather_profiles(entry.params)
    names = [profile.name for profile in profiles]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise SpecError(
            "duplicate profile name(s): " + ", ".join(duplicates)
            + " (results are keyed by workload name; profiles "
            "would silently merge)"
        )
    return names


def _run_group(session: Session, group: List[_Entry], loop) -> None:
    """Execute one compatible group on the executor thread.

    Runs under the session lock with the session's telemetry active;
    every waiter is resolved through the event loop, never directly
    from this thread.
    """
    def resolve(entry: _Entry, result: RunResult) -> None:
        loop.call_soon_threadsafe(entry.resolve, result)

    def fail(entry: _Entry, exc: BaseException) -> None:
        loop.call_soon_threadsafe(entry.resolve_error, exc)

    def emit(entry: _Entry, payload: Dict[str, Any]) -> None:
        loop.call_soon_threadsafe(entry.push_point, payload)

    with session.lock, obs.activate(session.telemetry):
        live: List[Tuple[_Entry, List[str]]] = []
        profiles: List[Any] = []
        seen: Dict[int, Any] = {}
        for entry in group:
            try:
                names = _entry_names(session, entry)
                for profile in session._gather_profiles(entry.params):
                    if id(profile) not in seen:
                        seen[id(profile)] = profile
                        profiles.append(profile)
            except Exception as exc:  # noqa: BLE001 -- waiter boundary
                fail(entry, exc)
                continue
            live.append((entry, names))
        if not live:
            return
        try:
            with obs.span("serve.batch", specs=len(live),
                          profiles=len(profiles)):
                params = live[0][0].params
                space = session._space(params)
                configs = space.configs()
                if params["limit"] is not None:
                    configs = configs[:params["limit"]]
                wanting: Dict[str, List[_Entry]] = {}
                for entry, names in live:
                    for name in names:
                        wanting.setdefault(name, []).append(entry)
                results, frontiers = _route_points(
                    session, group, profiles, configs, wanting, emit)
                for entry, names in live:
                    payload = sweep_payload(
                        names, results, frontiers, space.name,
                        len(configs), params["objective"])
                    result = RunResult(spec=entry.spec, data=payload)
                    if session.run_store is not None:
                        with obs.span("run_store.put",
                                      kind=entry.spec.kind):
                            session.run_store.put(result,
                                                  key=entry.key)
                    resolve(entry, result)
            session._flush_collectors()
        except Exception as exc:  # noqa: BLE001 -- waiter boundary
            for entry, _names in live:
                fail(entry, exc)
