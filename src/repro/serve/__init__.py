"""``repro serve`` -- the multi-tenant async experiment service.

One warm :class:`~repro.api.session.Session` -- loaded profiles, model
caches, worker pool, run store -- shared by many clients over a
zero-dependency asyncio HTTP front door.  The layers, front to back:

* :mod:`repro.serve.protocol` -- minimal HTTP/1.1 + chunked NDJSON on
  :func:`asyncio.start_server` streams;
* :mod:`repro.serve.server` -- :class:`ExperimentServer` routing
  (``POST /run``, ``/health``, ``/stats``, ``/metrics``), admission
  control, deadlines and graceful drain;
* :mod:`repro.serve.dedup` -- identical in-flight requests coalesce
  onto one computation;
* :mod:`repro.serve.batch` -- compatible concurrent sweeps merge into
  one engine pass, streamed points demultiplexed per client;
* :mod:`repro.serve.shards` -- a fingerprint-sharded
  :class:`~repro.api.runstore.RunStore` that stays fast as the service
  accumulates runs (legacy flat stores are read and migrated in place);
* :mod:`repro.serve.client` -- blocking stdlib client helpers
  (``repro request`` and the tests use these).

The package invariant, enforced by the ``async-safety`` lint rule: the
event loop never blocks.  Session, engine and store work runs on a
thread-pool executor; coroutines only parse, route and fan out.
"""

from repro.serve.batch import SweepBatcher
from repro.serve.client import ServeError, get_json, request_run
from repro.serve.dedup import InflightTable
from repro.serve.server import ExperimentServer, ServerThread
from repro.serve.shards import ShardedRunStore

__all__ = [
    "ExperimentServer",
    "InflightTable",
    "ServeError",
    "ServerThread",
    "ShardedRunStore",
    "SweepBatcher",
    "get_json",
    "request_run",
]
