"""Blocking client helpers for the ``repro serve`` HTTP surface.

A thin synchronous convenience layer over :mod:`http.client` (stdlib,
like everything else here) used by ``repro request``, the test suite
and the benchmark harness.  Everything speaks the JSON surface of
:class:`~repro.serve.server.ExperimentServer`; streamed NDJSON
responses are decoded line-by-line (``http.client`` undoes the chunked
transfer encoding transparently) so partial design points can be
observed as the server computes them.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Callable, Dict, Mapping, Optional

__all__ = ["ServeError", "get_json", "request_run"]


class ServeError(RuntimeError):
    """A non-2xx answer from the experiment service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        #: The HTTP status the server answered with.
        self.status = status


def _error_message(body: bytes) -> str:
    """The server's ``error`` field, or the raw body as a fallback."""
    try:
        payload = json.loads(body.decode("utf-8"))
        return str(payload.get("error", payload))
    except (UnicodeDecodeError, ValueError):
        return body.decode("utf-8", "replace").strip()


def get_json(host: str, port: int, path: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
    """GET one JSON document (``/health``, ``/stats``, ``/metrics``)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        if response.status != 200:
            raise ServeError(response.status, _error_message(body))
        return json.loads(body.decode("utf-8"))
    finally:
        conn.close()


def request_run(
    host: str,
    port: int,
    spec: Mapping[str, Any],
    stream: bool = False,
    timeout: Optional[float] = None,
    on_point: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """POST one experiment spec and return the final answer.

    Parameters
    ----------
    spec:
        The experiment spec as a JSON-clean mapping (``{"kind": ...,
        "params": {...}}``).
    stream:
        Ask for chunked NDJSON; every partial ``point`` event is passed
        to ``on_point`` as it arrives.
    timeout:
        Socket timeout in seconds (``None`` waits indefinitely).

    Returns
    -------
    dict
        ``{"cached": bool, "result": {...}}`` -- identical shape for
        streamed and plain requests.
    """
    body = json.dumps(dict(spec), sort_keys=True).encode("utf-8")
    path = "/run?stream=1" if stream else "/run"
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("POST", path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        if response.status != 200:
            raise ServeError(response.status,
                             _error_message(response.read()))
        if not stream:
            payload = json.loads(response.read().decode("utf-8"))
            return payload
        final: Optional[Dict[str, Any]] = None
        while True:
            line = response.readline()
            if not line:
                break
            event = json.loads(line.decode("utf-8"))
            if event.get("event") == "result":
                final = {"cached": event["cached"],
                         "result": event["result"]}
            elif on_point is not None:
                on_point(event)
        if final is None:
            raise ServeError(502, "stream ended without a result event")
        return final
    finally:
        conn.close()
