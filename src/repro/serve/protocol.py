"""Minimal HTTP/1.1 parsing and NDJSON streaming over asyncio streams.

The service layer speaks just enough HTTP for its job -- JSON request
bodies in, JSON (or chunked NDJSON) responses out -- implemented
directly on :func:`asyncio.start_server` streams so the server stays
zero-dependency.  This module is pure protocol: it never touches the
session, stores or the worker pool, and every function here is safe to
call from the event loop (no blocking IO -- the ``async-safety`` lint
rule enforces that for the whole package).

Requests are parsed into :class:`HttpRequest` (request line, lowercased
headers, ``Content-Length``-delimited body, decoded query string).
Responses are either one-shot JSON documents (:func:`write_json`) or a
chunked ``application/x-ndjson`` stream (:class:`NdjsonStream`) in
which every chunk is exactly one JSON line -- clients can read
line-by-line through any chunked-decoding HTTP client and see partial
results as they are computed.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpRequest",
    "NdjsonStream",
    "ProtocolError",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "STATUS_REASONS",
    "read_request",
    "render_response",
    "write_json",
]

#: Upper bound on one request body (an ExperimentSpec JSON document is
#: well under a kilobyte; anything near this limit is abuse).
MAX_BODY_BYTES = 1 << 20

#: Upper bound on the request line plus all headers.
MAX_HEADER_BYTES = 32 * 1024

#: Reason phrases for the status codes the server emits.
STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ValueError):
    """A request violates the subset of HTTP/1.1 the server speaks."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        #: The HTTP status the server should answer with.
        self.status = status


class HttpRequest:
    """One parsed HTTP request.

    Attributes
    ----------
    method:
        Uppercased request method (``GET``, ``POST``, ...).
    path:
        Decoded path component of the request target.
    query:
        Decoded query parameters (last value wins per name).
    headers:
        Header mapping with lowercased names.
    body:
        Raw request body bytes (empty without ``Content-Length``).
    """

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The body parsed as JSON (:class:`ProtocolError` 400 on junk)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from exc

    def flag(self, name: str) -> bool:
        """Whether a query parameter is set to a truthy value."""
        return self.query.get(name, "").lower() in ("1", "true", "yes",
                                                    "on")

    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Read one request off the stream.

    Returns ``None`` on a clean end-of-stream before any request bytes
    (the client closed an idle keep-alive connection).  Raises
    :class:`ProtocolError` for anything outside the supported subset --
    the caller answers with the error's status and closes.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError) as exc:
        raise ProtocolError(400, f"unreadable request line: {exc}") from exc
    if not line:
        return None
    if len(line) > MAX_HEADER_BYTES:
        raise ProtocolError(413, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise ProtocolError(400, f"malformed request line: {line!r}")
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise ProtocolError(413, "header section too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise ProtocolError(400, "chunked request bodies not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise ProtocolError(400, "bad Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError(
                    400, "request body ended early") from exc

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(method, unquote(split.path or "/"), query,
                       headers, body)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one complete (non-chunked) HTTP response."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


async def write_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Write one JSON response and drain the transport."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    writer.write(render_response(status, body,
                                 extra_headers=extra_headers))
    await writer.drain()


class NdjsonStream:
    """A chunked ``application/x-ndjson`` response in progress.

    Each :meth:`send` emits one JSON document as one line inside one
    HTTP chunk, then drains -- clients observe every partial result as
    soon as it exists.  :meth:`close` terminates the chunked body.

    Examples
    --------
    >>> stream = NdjsonStream(writer)                  # doctest: +SKIP
    >>> await stream.start()                           # doctest: +SKIP
    >>> await stream.send({"event": "point"})          # doctest: +SKIP
    >>> await stream.close()                           # doctest: +SKIP
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._started = False
        self._closed = False

    async def start(self, status: int = 200) -> None:
        """Write the response head announcing a chunked NDJSON body."""
        reason = STATUS_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1"))
        await self._writer.drain()
        self._started = True

    async def send(self, payload: Any) -> None:
        """Emit one JSON line as one chunk and drain."""
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        chunk = f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"
        self._writer.write(chunk)
        await self._writer.drain()

    async def close(self) -> None:
        """Terminate the chunked body (idempotent)."""
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
