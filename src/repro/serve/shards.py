"""Fingerprint-sharded :class:`~repro.api.runstore.RunStore`.

The flat run-store layout (``<root>/<fingerprint>.run.json``) is fine
for campaign checkpoints but degrades once a long-lived service caches
millions of runs: every lookup scans one giant directory and most
filesystems handle huge flat directories badly.  The service layer uses
:class:`ShardedRunStore` instead:

* entries live under fingerprint-prefix shard directories --
  ``<root>/<fp[:width]>/<fp>.run.json`` -- so each directory stays
  small and lookups stay O(1) as the store grows;
* the **legacy flat layout is read transparently**: a lookup that
  misses the sharded path falls back to the flat path and migrates the
  entry into its shard on first touch (``os.replace``, atomic on one
  filesystem), so pointing ``repro serve`` at an existing campaign
  store just works and upgrades itself incrementally;
* an optional **LRU size cap** (``max_entries``) bounds the disk
  footprint: when a put grows the store past the cap, the
  least-recently-used entries are deleted (and counted as
  ``run_store.evictions``).  Recency is tracked per process and seeded
  deterministically from a sorted directory scan, so eviction order is
  a pure function of the operation sequence -- no mtimes, no clock.

All bookkeeping shares the base store's lock, so the sharded store is
safe for the multi-threaded ``repro serve`` executor path.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Optional, Union

from repro.api.results import RunResult
from repro.api.runstore import RunStore
from repro.api.spec import ExperimentSpec

__all__ = ["ShardedRunStore"]


class ShardedRunStore(RunStore):
    """A :class:`RunStore` with prefix sharding and an LRU size cap.

    Parameters
    ----------
    root:
        Store directory (created on first write).  May hold a legacy
        flat-layout store: flat entries are served and migrated into
        shards as they are touched.
    shard_width:
        Fingerprint-prefix length used as the shard directory name.
        The default ``2`` yields up to 256 shards (hex fingerprints),
        which keeps per-directory entry counts small into the millions.
    max_entries:
        Optional cap on stored entries.  ``None`` (default) never
        evicts; otherwise every :meth:`put` evicts least-recently-used
        entries down to the cap.

    Examples
    --------
    >>> store = ShardedRunStore(".runs", max_entries=10_000)  # doctest: +SKIP
    >>> store.put(result)                                     # doctest: +SKIP
    >>> store.get(result.spec).cached                         # doctest: +SKIP
    False
    """

    _COUNTER_ATTRS = RunStore._COUNTER_ATTRS + ("evictions",
                                                "migrations")

    def __init__(
        self,
        root: str,
        shard_width: int = 2,
        max_entries: Optional[int] = None,
    ) -> None:
        if shard_width < 1:
            raise ValueError("shard_width must be >= 1")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.shard_width = shard_width
        self.max_entries = max_entries
        self.evictions = 0
        self.migrations = 0
        super().__init__(root)
        #: Recency order, least-recent first: fingerprint -> None.
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        self._seed_lru()

    # -- layout --------------------------------------------------------

    def _fingerprint(self, key: Union[str, ExperimentSpec]) -> str:
        """The fingerprint string of a spec-or-fingerprint key."""
        if isinstance(key, ExperimentSpec):
            return key.fingerprint
        return key

    def path(self, key: Union[str, ExperimentSpec]) -> str:
        """Sharded path of the stored run for a spec/fingerprint."""
        fingerprint = self._fingerprint(key)
        shard = fingerprint[:self.shard_width]
        return os.path.join(self.root, shard,
                            f"{fingerprint}.run.json")

    def _flat_path(self, fingerprint: str) -> str:
        """Legacy flat-layout path of one fingerprint."""
        return os.path.join(self.root, f"{fingerprint}.run.json")

    def __contains__(self, key: Union[str, ExperimentSpec]) -> bool:
        """Whether a result is stored (sharded or legacy layout)."""
        fingerprint = self._fingerprint(key)
        return (os.path.exists(self.path(fingerprint))
                or os.path.exists(self._flat_path(fingerprint)))

    def _seed_lru(self) -> None:
        """Adopt pre-existing entries in sorted-fingerprint order.

        A fresh process has no usage history, so the deterministic
        sorted scan *is* the recency order until lookups reorder it --
        eviction decisions never depend on filesystem enumeration
        order or timestamps.
        """
        if not os.path.isdir(self.root):
            return
        suffix = ".run.json"
        found = []
        for name in sorted(os.listdir(self.root)):
            if name.endswith(suffix):
                found.append(name[:-len(suffix)])
                continue
            shard_dir = os.path.join(self.root, name)
            if len(name) == self.shard_width and os.path.isdir(shard_dir):
                for entry in sorted(os.listdir(shard_dir)):
                    if entry.endswith(suffix):
                        found.append(entry[:-len(suffix)])
        with self._lock:
            for fingerprint in sorted(found):
                self._lru[fingerprint] = None

    # -- operations ----------------------------------------------------

    def _promote(self, fingerprint: str) -> None:
        """Migrate a legacy flat entry into its shard, if present."""
        sharded = self.path(fingerprint)
        flat = self._flat_path(fingerprint)
        migrated = False
        with self._lock:
            if not os.path.exists(sharded) and os.path.exists(flat):
                os.makedirs(os.path.dirname(sharded), exist_ok=True)
                try:
                    os.replace(flat, sharded)
                    migrated = True
                except OSError:
                    pass
        if migrated:
            self._count("migrations")

    def get(
        self,
        spec: ExperimentSpec,
        key: Optional[str] = None,
    ) -> Optional[RunResult]:
        """The stored result (sharded or legacy flat layout), or None.

        A hit refreshes the entry's recency; a flat-layout hit first
        migrates the entry into its shard so the legacy directory
        drains as it is used.  Miss/corruption semantics are inherited
        from :class:`RunStore` (corrupt entries quarantine and read as
        misses).
        """
        fingerprint = self._fingerprint(key if key is not None
                                        else spec)
        self._promote(fingerprint)
        result = super().get(spec, key=fingerprint)
        with self._lock:
            if result is not None:
                self._lru[fingerprint] = None
                self._lru.move_to_end(fingerprint)
            else:
                self._lru.pop(fingerprint, None)
        return result

    def put(self, result: RunResult, key: Optional[str] = None) -> str:
        """Store one result in its shard, then enforce the size cap."""
        fingerprint = super().put(result, key=key)
        evict = []
        with self._lock:
            self._lru[fingerprint] = None
            self._lru.move_to_end(fingerprint)
            if self.max_entries is not None:
                while len(self._lru) > self.max_entries:
                    victim, _ = self._lru.popitem(last=False)
                    evict.append(victim)
        for victim in evict:
            for path in (self.path(victim), self._flat_path(victim)):
                try:
                    os.remove(path)
                except OSError:
                    pass
            self._count("evictions")
        return fingerprint

    def __len__(self) -> int:
        """Number of entries the store currently tracks."""
        with self._lock:
            return len(self._lru)
