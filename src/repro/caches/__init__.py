"""Functional cache hierarchy substrate.

Set-associative LRU caches, an inclusive multi-level hierarchy, MSHRs and a
PC-indexed stride prefetcher.  The reference simulator uses these for
timing; validation experiments (Fig 4.2, 4.4) use them as the ground truth
StatStack is compared against.
"""

from repro.caches.cache import (
    Cache,
    CacheAccessResult,
    CacheConfig,
    CacheHierarchy,
    MissKind,
)
from repro.caches.mshr import MSHRFile
from repro.caches.prefetcher import StridePrefetcher, PrefetchStats

__all__ = [
    "Cache",
    "CacheAccessResult",
    "CacheConfig",
    "CacheHierarchy",
    "MissKind",
    "MSHRFile",
    "StridePrefetcher",
    "PrefetchStats",
]
