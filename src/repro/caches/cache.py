"""Set-associative LRU caches and an inclusive hierarchy (functional).

This is the simulation ground truth the statistical StatStack model is
validated against (thesis Fig 4.2) and the memory substrate of the
reference simulator.  Misses are classified cold vs capacity/conflict
(thesis Fig 4.4): a miss is *cold* when the line was never resident before.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class MissKind(enum.Enum):
    HIT = "hit"
    COLD = "cold"
    CAPACITY = "capacity"  # capacity or conflict; not distinguished


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int = 8
    line_size: int = 64
    latency: int = 4  # access latency in cycles (hit at this level)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise ValueError(
                f"size {self.size_bytes} not divisible by "
                f"assoc*line ({self.associativity}*{self.line_size})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)


@dataclass
class CacheStats:
    """Per-level access statistics, split by access type."""

    load_accesses: int = 0
    load_misses: int = 0
    load_cold_misses: int = 0
    store_accesses: int = 0
    store_misses: int = 0
    store_cold_misses: int = 0
    prefetch_accesses: int = 0
    prefetch_misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.load_accesses + self.store_accesses

    @property
    def misses(self) -> int:
        return self.load_misses + self.store_misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def load_miss_rate(self) -> float:
        return (
            self.load_misses / self.load_accesses if self.load_accesses else 0.0
        )


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheConfig, name: str = "L?") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # One OrderedDict per set: line tag -> True, in LRU order
        # (first = LRU, last = MRU).
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._ever_resident: Set[int] = set()

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.config.line_size
        return line, line % self.config.num_sets

    def lookup(self, addr: int) -> bool:
        """Check residency without updating state."""
        line, set_index = self._locate(addr)
        return line in self._sets[set_index]

    def access(self, addr: int, is_write: bool = False,
               is_prefetch: bool = False) -> MissKind:
        """Access one address; update LRU state and statistics."""
        line, set_index = self._locate(addr)
        ways = self._sets[set_index]
        if is_prefetch:
            self.stats.prefetch_accesses += 1
        elif is_write:
            self.stats.store_accesses += 1
        else:
            self.stats.load_accesses += 1

        if line in ways:
            ways.move_to_end(line)
            return MissKind.HIT

        kind = (
            MissKind.COLD if line not in self._ever_resident
            else MissKind.CAPACITY
        )
        if is_prefetch:
            self.stats.prefetch_misses += 1
        elif is_write:
            self.stats.store_misses += 1
            if kind is MissKind.COLD:
                self.stats.store_cold_misses += 1
        else:
            self.stats.load_misses += 1
            if kind is MissKind.COLD:
                self.stats.load_cold_misses += 1

        self._fill(line, ways)
        return kind

    def _fill(self, line: int, ways: OrderedDict) -> None:
        if len(ways) >= self.config.associativity:
            ways.popitem(last=False)
            self.stats.evictions += 1
        ways[line] = True
        self._ever_resident.add(line)

    def reset_stats(self) -> None:
        """Clear counters but keep cache contents (for warmup runs)."""
        self.stats = CacheStats()


class CacheAccessResult:
    """Outcome of a hierarchy access: deepest level that hit and latency."""

    __slots__ = ("hit_level", "latency", "kinds")

    def __init__(self, hit_level: int, latency: int,
                 kinds: List[MissKind]) -> None:
        #: 1-based cache level that served the access; 0 means DRAM.
        self.hit_level = hit_level
        #: total access latency in cycles (hit latency of serving level).
        self.latency = latency
        #: per-level miss kinds for the levels that missed.
        self.kinds = kinds

    @property
    def is_llc_miss(self) -> bool:
        return self.hit_level == 0


class CacheHierarchy:
    """An inclusive multi-level data (or instruction) cache hierarchy."""

    def __init__(
        self,
        configs: List[CacheConfig],
        dram_latency: int = 200,
    ) -> None:
        if not configs:
            raise ValueError("need at least one cache level")
        self.levels = [
            Cache(config, name=f"L{i + 1}")
            for i, config in enumerate(configs)
        ]
        self.dram_latency = dram_latency
        self.dram_accesses = 0

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def llc(self) -> Cache:
        return self.levels[-1]

    def access(self, addr: int, is_write: bool = False,
               is_prefetch: bool = False) -> CacheAccessResult:
        """Look up all levels top-down; fill on the way back (inclusive)."""
        kinds: List[MissKind] = []
        for index, cache in enumerate(self.levels):
            kind = cache.access(addr, is_write=is_write,
                                is_prefetch=is_prefetch)
            if kind is MissKind.HIT:
                return CacheAccessResult(
                    hit_level=index + 1,
                    latency=cache.config.latency,
                    kinds=kinds,
                )
            kinds.append(kind)
        self.dram_accesses += 1
        return CacheAccessResult(
            hit_level=0, latency=self.dram_latency, kinds=kinds
        )

    def mpki(self, instructions: int) -> List[float]:
        """Misses-per-kilo-instruction per level (loads + stores)."""
        if instructions == 0:
            return [0.0] * self.num_levels
        return [
            1000.0 * cache.stats.misses / instructions
            for cache in self.levels
        ]

    def reset_stats(self) -> None:
        for cache in self.levels:
            cache.reset_stats()
        self.dram_accesses = 0


def default_hierarchy(dram_latency: int = 200) -> CacheHierarchy:
    """The thesis reference 32 KB / 256 KB / 8 MB three-level hierarchy."""
    return CacheHierarchy(
        [
            CacheConfig(32 * 1024, associativity=8, line_size=64, latency=4),
            CacheConfig(256 * 1024, associativity=8, line_size=64, latency=12),
            CacheConfig(8 * 1024 * 1024, associativity=16, line_size=64,
                        latency=30),
        ],
        dram_latency=dram_latency,
    )
