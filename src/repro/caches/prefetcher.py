"""PC-indexed stride prefetcher (thesis §4.9, Fig 4.10).

Tracks per-static-load last address and stride in a limited-size table.
On a repeated stride it issues a prefetch for the next address, except
when the prediction crosses a DRAM page boundary (prefetchers do not cross
pages).  Timeliness is the simulator's concern: the prefetch is issued at
training time, so a load arriving too soon after its trainer still sees
part of the miss latency (Eq 4.13 models this analytically).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class PrefetchStats:
    trainings: int = 0
    issued: int = 0
    page_blocked: int = 0
    table_evictions: int = 0


class StridePrefetcher:
    """Per-PC stride detector with a bounded LRU training table."""

    def __init__(
        self,
        table_entries: int = 64,
        page_size: int = 4096,
        degree: int = 1,
        min_confidence: int = 1,
    ) -> None:
        self.table_entries = table_entries
        self.page_size = page_size
        self.degree = degree
        self.min_confidence = min_confidence
        self.stats = PrefetchStats()
        # pc -> (last_addr, last_stride, confidence), LRU ordered.
        self._table: "OrderedDict[int, Tuple[int, int, int]]" = OrderedDict()

    def train(self, pc: int, addr: int) -> List[int]:
        """Observe one load; return the addresses to prefetch (maybe [])."""
        self.stats.trainings += 1
        entry = self._table.get(pc)
        prefetches: List[int] = []
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.popitem(last=False)
                self.stats.table_evictions += 1
            self._table[pc] = (addr, 0, 0)
            return prefetches

        last_addr, last_stride, confidence = entry
        stride = addr - last_addr
        if stride != 0 and stride == last_stride:
            confidence = min(confidence + 1, 3)
        elif stride != 0:
            confidence = 0
        self._table[pc] = (addr, stride, confidence)
        self._table.move_to_end(pc)

        if stride != 0 and confidence >= self.min_confidence:
            for i in range(1, self.degree + 1):
                target = addr + i * stride
                if target // self.page_size != addr // self.page_size:
                    self.stats.page_blocked += 1
                    break
                prefetches.append(target)
                self.stats.issued += 1
        return prefetches

    def reset(self) -> None:
        self._table.clear()
        self.stats = PrefetchStats()
