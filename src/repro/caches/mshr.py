"""Miss Status Handling Registers (MSHR) file.

Thesis §4.6: MSHRs coalesce requests to the same outstanding cache line and
bound the number of concurrently outstanding misses, putting a cap on
memory-level parallelism.  The reference simulator uses this timing-aware
model; the analytical model approximates the same effect with the
soft-cap equation (Eq 4.4, see :mod:`repro.core.memory_model`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class MSHRStats:
    allocations: int = 0
    coalesced: int = 0
    stalls: int = 0  # requests that found the file full


class MSHRFile:
    """Timing-aware MSHR file keyed by cache-line address.

    Entries record the cycle at which the outstanding miss resolves.
    ``request(line, now, latency)`` returns the cycle at which the miss's
    data is available, accounting for coalescing and for waiting on a free
    entry when the file is full.
    """

    def __init__(self, num_entries: int, line_size: int = 64) -> None:
        if num_entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self.line_size = line_size
        self.stats = MSHRStats()
        self._entries: Dict[int, int] = {}  # line -> completion cycle

    def _expire(self, now: int) -> None:
        expired = [line for line, done in self._entries.items() if done <= now]
        for line in expired:
            del self._entries[line]

    def occupancy(self, now: int) -> int:
        self._expire(now)
        return len(self._entries)

    def acquire(self, addr: int, now: int):
        """Reserve an entry for a miss starting at/after ``now``.

        Returns ``(start_cycle, coalesced_done)``: when the line is
        already outstanding, ``coalesced_done`` is its completion cycle
        and no new entry is taken; otherwise ``coalesced_done`` is None
        and the caller must call :meth:`install` with the completion
        cycle computed *from* ``start_cycle`` (this is what lets the
        memory bus be scheduled at the true request start rather than at
        issue time).
        """
        line = addr // self.line_size
        self._expire(now)

        existing = self._entries.get(line)
        if existing is not None:
            self.stats.coalesced += 1
            return existing, existing

        start = now
        if len(self._entries) >= self.num_entries:
            # Full: wait for the earliest entry to free up.
            self.stats.stalls += 1
            while len(self._entries) >= self.num_entries:
                earliest = min(self._entries.values())
                start = max(start, earliest)
                self._expire(start)

        # Reserve with a placeholder; install() finalizes.
        self._entries[line] = start
        self.stats.allocations += 1
        return start, None

    def install(self, addr: int, done: int) -> None:
        """Finalize a reserved entry's completion cycle."""
        line = addr // self.line_size
        self._entries[line] = done

    def request(self, addr: int, now: int, latency: int) -> int:
        """Issue a miss request; return its data-ready cycle.

        Convenience wrapper over :meth:`acquire`/:meth:`install` for
        callers whose latency does not depend on the start cycle.
        """
        start, coalesced = self.acquire(addr, now)
        if coalesced is not None:
            return coalesced
        done = start + latency
        self.install(addr, done)
        return done

    def reset(self) -> None:
        self._entries.clear()
        self.stats = MSHRStats()
