"""Cycle-level reference simulator (the 'Sniper' stand-in).

A trace-driven out-of-order timing model: dispatch bandwidth, ROB
occupancy, issue-port and functional-unit contention, register dependence
tracking, non-blocking caches with MSHRs, a shared memory bus, real branch
predictors and an optional stride prefetcher.  It produces cycle counts,
CPI stacks, per-window CPI traces and activity vectors -- the ground truth
every accuracy experiment compares the analytical model against.
"""

from repro.simulator.simulator import (
    SimulationResult,
    Simulator,
    simulate,
)

__all__ = ["SimulationResult", "Simulator", "simulate"]
