"""Trace-driven out-of-order timing simulation.

The model processes uops in program order, computing for each its
dispatch, issue, completion and commit cycles subject to:

* front-end: branch redirects (real predictor) and I-cache misses delay
  the fetch stream; dispatch bandwidth is the machine width;
* back-end: register dependences, issue-port contention (least-loaded
  serving port, 1 uop/port/cycle), non-pipelined units, ROB occupancy;
* memory: non-blocking data caches, MSHR-limited outstanding misses, a
  shared DRAM bus with per-access transfer slots, optional stride
  prefetcher.

Commit is in order at the machine width.  Cycle gaps at commit are
attributed to the stalling uop's cause, yielding a CPI stack comparable
with the analytical model's (thesis Fig 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.caches.cache import Cache, CacheHierarchy, MissKind
from repro.caches.mshr import MSHRFile
from repro.caches.prefetcher import StridePrefetcher
from repro.core.machine import MachineConfig, NON_PIPELINED
from repro.core.power import ActivityVector
from repro.frontend.predictors import BranchPredictor, make_predictor
from repro.isa import Instruction, UopKind, crack
from repro.workloads.trace import Trace

STACK_KEYS = ("base", "branch", "icache", "llc", "dram")


@dataclass
class SimulationResult:
    """Everything a simulation run reports."""

    config_name: str
    workload: str
    cycles: float
    instructions: int
    uops: int
    stack: Dict[str, float]
    activity: ActivityVector
    branch_mispredictions: int
    branches: int
    llc_load_misses: int
    dram_accesses: int
    mpki: List[float]
    window_cpi: List[Tuple[int, float]] = field(default_factory=list)
    frequency_ghz: float = 2.66

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def seconds(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e9)

    def cpi_stack(self) -> Dict[str, float]:
        if not self.instructions:
            return {key: 0.0 for key in self.stack}
        return {
            key: value / self.instructions
            for key, value in self.stack.items()
        }


class _PortTracker:
    """Issue-port occupancy: one uop per port per cycle."""

    def __init__(self, num_ports: int) -> None:
        self._busy: List[Dict[int, int]] = [dict() for _ in range(num_ports)]

    def earliest(self, port: int, cycle: int) -> int:
        busy = self._busy[port]
        while busy.get(cycle, 0) >= 1:
            cycle += 1
        return cycle

    def reserve(self, port: int, cycle: int) -> None:
        busy = self._busy[port]
        busy[cycle] = busy.get(cycle, 0) + 1
        # Trim old entries occasionally to bound memory.
        if len(busy) > 65536:
            cutoff = cycle - 1024
            for key in [k for k in busy if k < cutoff]:
                del busy[key]


class Simulator:
    """One simulation context (machine + workload state)."""

    def __init__(
        self,
        config: MachineConfig,
        perfect_frontend: bool = False,
        perfect_caches: bool = False,
    ) -> None:
        self.config = config
        self.perfect_frontend = perfect_frontend
        self.perfect_caches = perfect_caches

        self.dcache = CacheHierarchy(
            config.cache_levels(), dram_latency=config.dram_latency
        )
        self.icache = CacheHierarchy(
            [config.l1i, config.l2, config.llc],
            dram_latency=config.dram_latency,
        )
        self.mshr = MSHRFile(config.mshr_entries,
                             line_size=config.l1d.line_size)
        self.predictor: BranchPredictor = make_predictor(config.predictor)
        self.prefetcher: Optional[StridePrefetcher] = (
            StridePrefetcher(
                table_entries=config.prefetch_table,
                page_size=config.dram_page_bytes,
                degree=config.prefetch_degree,
            )
            if config.prefetch else None
        )
        # line -> cycle at which an in-flight prefetch delivers the data.
        self._pending_prefetch: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def _port_for(self, kind: UopKind) -> List[int]:
        return [
            index
            for index, port in enumerate(self.config.ports)
            if kind in port.kinds
        ]

    def run(self, trace: Trace, window_instructions: int = 10_000
            ) -> SimulationResult:
        config = self.config
        width = config.dispatch_width
        rob_size = config.rob_size
        latencies = config.latencies()

        ports = _PortTracker(len(config.ports))
        nonpipe_free: Dict[UopKind, int] = {k: 0 for k in NON_PIPELINED}
        reg_ready: Dict[int, int] = {}
        # Per-channel DRAM bus cursors; each transfer occupies the
        # earliest-free channel for bus_transfer_cycles.
        bus_channels = [0] * max(1, config.memory_channels)

        def reserve_bus(request: int) -> int:
            channel = min(range(len(bus_channels)),
                          key=lambda i: bus_channels[i])
            slot = max(bus_channels[channel], request)
            bus_channels[channel] = slot + config.bus_transfer_cycles
            return slot

        # Ring buffers over the last `rob_size` (commit) and `width`
        # (dispatch/commit bandwidth) uops.
        commit_ring = [0] * rob_size
        dispatch_band = [0] * width
        commit_band = [0] * width

        fe_time = 0.0          # next fetch availability (front-end)
        fe_cause = None        # why the front-end is behind ('branch'/'icache')
        last_dispatch = 0
        last_commit = 0
        uop_index = 0

        stack = {key: 0.0 for key in STACK_KEYS}
        branch_misses = 0
        branches = 0
        llc_load_misses = 0

        window_cpi: List[Tuple[int, float]] = []
        window_start_cycle = 0.0

        uop_kind_counts: Dict[UopKind, float] = {}

        for instr_index, instr in enumerate(trace):
            # ---- Front end: I-cache, branch redirect --------------------
            if not self.perfect_frontend:
                result = self.icache.access(instr.pc, is_write=False)
                if result.hit_level != 1:
                    fe_time += result.latency
                    fe_cause = "icache"

            uops = crack(instr.op)
            mem_done: Optional[int] = None  # completion of this instr's load
            for position, kind in enumerate(uops):
                uop_kind_counts[kind] = uop_kind_counts.get(kind, 0.0) + 1

                # ---- Dispatch ------------------------------------------
                band_slot = dispatch_band[uop_index % width] + 1
                rob_slot = commit_ring[uop_index % rob_size]
                dispatch = max(
                    int(fe_time), last_dispatch, band_slot, rob_slot
                )
                # Front-end-bound dispatch inherits the redirect cause.
                cause = None
                if int(fe_time) > max(last_dispatch, band_slot, rob_slot):
                    cause = fe_cause
                dispatch_band[uop_index % width] = dispatch
                last_dispatch = dispatch

                # ---- Register readiness --------------------------------
                ready = dispatch
                if position == 0:
                    for src in (instr.src1, instr.src2):
                        if src >= 0:
                            ready = max(ready, reg_ready.get(src, 0))
                else:
                    # Second uop of a cracked instruction depends on the
                    # first (load-op) and on register sources.
                    for src in (instr.src1, instr.src2):
                        if src >= 0:
                            ready = max(ready, reg_ready.get(src, 0))
                    if mem_done is not None:
                        ready = max(ready, mem_done)

                # ---- Issue: port + functional unit ---------------------
                serving = self._port_for(kind)
                if serving:
                    best_port = None
                    best_cycle = None
                    for port in serving:
                        cycle = ports.earliest(port, ready)
                        if best_cycle is None or cycle < best_cycle:
                            best_cycle = cycle
                            best_port = port
                    issue = best_cycle
                    ports.reserve(best_port, issue)
                else:
                    issue = ready
                if kind in NON_PIPELINED:
                    issue = max(issue, nonpipe_free[kind])
                    nonpipe_free[kind] = issue + latencies[kind]

                # ---- Execute / memory ----------------------------------
                latency = latencies[kind]
                uop_cause = None
                if kind is UopKind.LOAD and not self.perfect_caches:
                    access = self.dcache.access(instr.addr, is_write=False)
                    if access.hit_level == 0:
                        llc_load_misses += 1
                        # Two-phase MSHR: the bus slot is scheduled from
                        # the cycle the entry actually starts, so waiting
                        # misses do not accumulate stale bus queueing.
                        start, coalesced = self.mshr.acquire(
                            instr.addr, issue
                        )
                        if coalesced is not None:
                            completion = coalesced
                        else:
                            request = start + config.llc.latency
                            slot = reserve_bus(request)
                            done = (
                                slot + config.bus_transfer_cycles
                                + config.dram_latency
                            )
                            self.mshr.install(instr.addr, done)
                            completion = done
                        uop_cause = "dram"
                    else:
                        hit_latency = access.latency
                        completion = issue + hit_latency
                        line = instr.addr // config.l1d.line_size
                        arriving = self._pending_prefetch.get(line)
                        if arriving is not None:
                            if arriving > issue:
                                # Prefetch in flight: wait for the data
                                # (Eq 4.13 timeliness, simulator side).
                                completion = max(completion, arriving)
                                uop_cause = "dram"
                            else:
                                del self._pending_prefetch[line]
                        if access.hit_level == len(self.dcache.levels):
                            uop_cause = "llc"
                    if self.prefetcher is not None:
                        for target in self.prefetcher.train(
                            instr.pc, instr.addr
                        ):
                            # Prefetches allocate MSHRs like demand misses
                            # and are dropped when the file is full; lines
                            # already on chip are not re-fetched.
                            if self.dcache.llc.lookup(target):
                                continue
                            if self.mshr.occupancy(issue) >= (
                                self.mshr.num_entries
                            ):
                                break
                            start, coalesced = self.mshr.acquire(
                                target, issue
                            )
                            if coalesced is not None:
                                continue
                            slot = reserve_bus(
                                start + config.llc.latency
                            )
                            done = (
                                slot + config.bus_transfer_cycles
                                + config.dram_latency
                            )
                            self.mshr.install(target, done)
                            self.dcache.access(target, is_prefetch=True)
                            self._pending_prefetch[
                                target // config.l1d.line_size
                            ] = done
                elif kind is UopKind.LOAD:
                    completion = issue + latency
                elif kind is UopKind.STORE and not self.perfect_caches:
                    access = self.dcache.access(instr.addr, is_write=True)
                    if access.hit_level == 0:
                        # Store miss: consumes bus bandwidth, no stall.
                        # Anchored at dispatch (store-buffer drain is
                        # roughly program-ordered); a data-dependent issue
                        # time must not reserve far-future bus slots that
                        # would block earlier loads.
                        reserve_bus(dispatch + config.llc.latency)
                    completion = issue + latency
                else:
                    completion = issue + latency

                # ---- Branch resolution ---------------------------------
                if kind is UopKind.BRANCH:
                    branches += 1
                    correct = (
                        True if self.perfect_frontend
                        else self.predictor.predict_and_update(
                            instr.pc, instr.taken
                        )
                    )
                    if not correct:
                        branch_misses += 1
                        fe_time = completion + config.frontend_refill
                        fe_cause = "branch"

                # ---- Commit (in order, width per cycle) -----------------
                commit = max(
                    completion,
                    last_commit,
                    commit_band[uop_index % width] + 1,
                )
                gap = commit - last_commit if uop_index > 0 else commit

                # Attribute the commit gap to the committing uop's cause.
                if gap > 0:
                    attributed = uop_cause or cause or "base"
                    # One dispatch slot's worth is inherent (base).
                    inherent = min(gap, 1.0 / width)
                    stack["base"] += inherent
                    extra = gap - inherent
                    if extra > 0:
                        key = attributed if attributed in stack else "base"
                        stack[key] += extra

                commit_band[uop_index % width] = commit
                commit_ring[uop_index % rob_size] = commit
                last_commit = commit

                if instr.dst >= 0 and (
                    position == len(uops) - 1
                    or (kind is UopKind.LOAD and len(uops) == 1)
                ):
                    reg_ready[instr.dst] = completion
                if kind is UopKind.LOAD and position == 0 and len(uops) > 1:
                    mem_done = completion
                    # Load-op forms: the load's result feeds the ALU uop,
                    # but the architectural dst is written by the ALU uop.

                uop_index += 1

            # ---- Per-window CPI ------------------------------------------
            if (instr_index + 1) % window_instructions == 0:
                cycles_here = last_commit - window_start_cycle
                window_cpi.append(
                    (instr_index + 1 - window_instructions,
                     cycles_here / window_instructions)
                )
                window_start_cycle = last_commit

        total_cycles = float(last_commit)
        activity = ActivityVector(
            cycles=total_cycles,
            uops=float(uop_index),
            uop_kind_counts=uop_kind_counts,
            l1_accesses=float(
                self.dcache.levels[0].stats.accesses
                + self.icache.levels[0].stats.accesses
            ),
            l2_accesses=float(
                self.dcache.levels[1].stats.accesses
                + self.icache.levels[1].stats.accesses
            ),
            llc_accesses=float(
                self.dcache.levels[2].stats.accesses
                + self.icache.levels[2].stats.accesses
            ),
            dram_accesses=float(
                self.dcache.dram_accesses + self.icache.dram_accesses
            ),
            branch_lookups=float(branches),
        )
        return SimulationResult(
            config_name=self.config.name,
            workload=trace.name,
            cycles=total_cycles,
            instructions=len(trace),
            uops=uop_index,
            stack=stack,
            activity=activity,
            branch_mispredictions=branch_misses,
            branches=branches,
            llc_load_misses=llc_load_misses,
            dram_accesses=self.dcache.dram_accesses,
            mpki=self.dcache.mpki(len(trace)),
            window_cpi=window_cpi,
            frequency_ghz=self.config.frequency_ghz,
        )


def simulate(
    trace: Trace,
    config: MachineConfig,
    perfect_frontend: bool = False,
    perfect_caches: bool = False,
    window_instructions: int = 10_000,
) -> SimulationResult:
    """Convenience: run one simulation with a fresh machine state."""
    simulator = Simulator(
        config,
        perfect_frontend=perfect_frontend,
        perfect_caches=perfect_caches,
    )
    return simulator.run(trace, window_instructions=window_instructions)
