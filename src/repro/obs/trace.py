"""Nested wall-time spans with Chrome ``trace_event`` JSONL export.

A :class:`Tracer` records *spans* -- named, timed, nestable regions
entered through a context manager::

    tracer = Tracer()
    with tracer.span("session.run", kind="sweep"):
        with tracer.span("engine.sweep"):
            ...

Every span measures with the tracer's injectable ``clock`` (defaults
to ``time.perf_counter``; tests inject a fake counter for exact,
deterministic timestamps).  Completed spans become ``ph: "X"``
(complete) events in the Chrome ``trace_event`` format, and
:meth:`Tracer.export` writes them one event per line inside a JSON
array -- every line is independently parseable *and* the whole file
loads in ``chrome://tracing`` / Perfetto.  :func:`read_trace` reads the
file back (tolerating the spec's unterminated-array form), and
:func:`span_stats` aggregates events into the per-name table behind
``repro stats``.

The disabled twin, :class:`NullTracer`, still *times* spans (callers
like ``SearchTrajectory.wall_seconds`` read ``span.seconds`` whether or
not telemetry is on -- one timing source, so reported timings and
telemetry cannot disagree) but records nothing: its event list is
always empty and nothing is retained.  Spans therefore belong at
stage/batch granularity; per-point accounting uses
:mod:`repro.obs.metrics` counters, whose disabled path is a pure no-op.
"""

from __future__ import annotations

import json
import os
import time
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    List,
    Optional,
    Union,
)

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER",
           "read_trace", "span_stats", "TRACE_CATEGORY", "METRICS_EVENT"]

#: Category stamped on every exported span event.
TRACE_CATEGORY = "repro"

#: Name of the instant event carrying a metrics snapshot in a trace
#: file (read back by ``repro stats``).
METRICS_EVENT = "repro.metrics"


class Span:
    """One timed region: measures on enter/exit, records on exit.

    Created by :meth:`Tracer.span` / :meth:`NullTracer.span`; use as a
    context manager.  After exit, :attr:`seconds` holds the measured
    wall time -- the single timing source for both telemetry and any
    "seconds" field in result payloads.

    Attributes
    ----------
    name:
        Span name (dotted, e.g. ``"engine.sweep"``).
    args:
        Optional key/value annotations exported with the event.
    seconds:
        Measured duration; ``0.0`` until the span exits.
    """

    __slots__ = ("name", "args", "seconds", "_clock", "_tracer", "_start")

    def __init__(
        self,
        name: str,
        args: Optional[Dict[str, Any]],
        clock: Callable[[], float],
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.args = args
        self.seconds = 0.0
        self._clock = clock
        self._tracer = tracer
        self._start = 0.0

    def __enter__(self) -> "Span":
        """Start the clock (and open a nesting level when recording)."""
        tracer = self._tracer
        if tracer is not None:
            tracer._depth += 1
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        """Stop the clock; append the completed event when recording."""
        self.seconds = self._clock() - self._start
        tracer = self._tracer
        if tracer is not None:
            tracer._depth -= 1
            tracer._record(self)


class Tracer:
    """Collects spans as Chrome ``trace_event``-compatible events.

    Parameters
    ----------
    clock:
        Monotonic time source; defaults to ``time.perf_counter``.
        Injectable so tests get exact, deterministic timestamps.

    Examples
    --------
    >>> ticks = iter(range(100))
    >>> tracer = Tracer(clock=lambda: next(ticks) * 1e-6)
    >>> with tracer.span("outer"):
    ...     with tracer.span("inner", detail=1):
    ...         pass
    >>> [e["name"] for e in tracer.events]
    ['inner', 'outer']
    """

    #: Real tracers record; the :class:`NullTracer` twin does not.
    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        #: Completed events in completion order (children before
        #: parents), each a Chrome ``trace_event`` dict plus a
        #: ``depth`` key (nesting level, root = 0).
        self.events: List[Dict[str, Any]] = []
        self._origin = self.clock()
        self._depth = 0

    def span(self, name: str, **args: Any) -> Span:
        """A new recording span (use as a context manager)."""
        return Span(name, args or None, self.clock, tracer=self)

    def instant(self, name: str, **args: Any) -> None:
        """Record one ``ph: "i"`` instant event at the current time."""
        event: Dict[str, Any] = {
            "name": name,
            "cat": TRACE_CATEGORY,
            "ph": "i",
            "ts": (self.clock() - self._origin) * 1e6,
            "pid": os.getpid(),
            "tid": 0,
            "s": "p",
            "depth": self._depth,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def _record(self, span: Span) -> None:
        """Append one completed span as a ``ph: "X"`` event."""
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": TRACE_CATEGORY,
            "ph": "X",
            "ts": (span._start - self._origin) * 1e6,
            "dur": span.seconds * 1e6,
            "pid": os.getpid(),
            "tid": 0,
            "depth": self._depth,
        }
        if span.args:
            event["args"] = dict(span.args)
        self.events.append(event)

    def export(
        self,
        file: Union[str, IO[str]],
        metrics: Optional[Any] = None,
    ) -> None:
        """Write the trace: one event per line inside a JSON array.

        The file is a valid Chrome ``trace_event`` JSON array (loads in
        ``chrome://tracing`` / Perfetto) whose events each occupy one
        line, so it also greps/streams like JSONL.  Events are sorted
        by timestamp; a ``process_name`` metadata event leads, and when
        a :class:`~repro.obs.metrics.MetricsRegistry` is given its
        snapshot trails as one :data:`METRICS_EVENT` instant event.
        """
        pid = os.getpid()
        events: List[Dict[str, Any]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        }]
        events.extend(sorted(self.events, key=lambda e: e["ts"]))
        if metrics is not None and metrics.enabled:
            events.append({
                "name": METRICS_EVENT,
                "cat": TRACE_CATEGORY,
                "ph": "i",
                "ts": ((self.clock() - self._origin) * 1e6),
                "pid": pid,
                "tid": 0,
                "s": "g",
                "args": {"metrics": metrics.snapshot()},
            })
        lines = ",\n".join(json.dumps(event, sort_keys=True)
                           for event in events)
        text = "[\n" + lines + "\n]\n"
        if isinstance(file, str):
            with open(file, "w") as handle:
                handle.write(text)
        else:
            file.write(text)


class NullTracer:
    """The non-recording tracer installed while telemetry is disabled.

    Spans are still timed (``span.seconds`` stays meaningful -- see the
    module docstring) but nothing is retained: :attr:`events` is a
    shared empty tuple.  Use the :data:`NULL_TRACER` singleton.
    """

    #: Tells call sites that no events are being retained.
    enabled = False

    #: Always empty: nothing is ever recorded.
    events = ()

    __slots__ = ()

    clock = staticmethod(time.perf_counter)

    def span(self, name: str, **args: Any) -> Span:
        """A timed-but-unrecorded span (use as a context manager)."""
        return Span(name, None, time.perf_counter, tracer=None)

    def instant(self, name: str, **args: Any) -> None:
        """Discard an instant event."""

    def export(self, file: Union[str, IO[str]],
               metrics: Optional[Any] = None) -> None:
        """Refuse to export: a disabled tracer has nothing to write."""
        raise RuntimeError(
            "cannot export a disabled tracer (enable tracing first)"
        )


#: The shared no-op tracer (the default everywhere).
NULL_TRACER = NullTracer()


def read_trace(file: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Read a trace file back into a list of event dicts.

    Accepts both the complete JSON array :meth:`Tracer.export` writes
    and the Chrome spec's unterminated-array form (missing ``]`` or a
    trailing comma), which is parsed line by line.
    """
    if isinstance(file, str):
        with open(file) as handle:
            text = handle.read()
    else:
        text = file.read()
    try:
        events = json.loads(text)
    except ValueError:
        events = []
        for line in text.splitlines():
            line = line.strip().rstrip(",")
            if not line or line in ("[", "]"):
                continue
            events.append(json.loads(line))
        return events
    if not isinstance(events, list):
        raise ValueError("trace file does not contain an event array")
    return events


def span_stats(
    events: List[Dict[str, Any]]
) -> Dict[str, Dict[str, float]]:
    """Aggregate span events per name: calls, total/mean/min/max ms.

    Only ``ph: "X"`` (complete span) events participate; metadata and
    instant events are skipped.  Returned in descending total-time
    order -- the table behind ``repro stats``.
    """
    stats: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        duration_ms = event.get("dur", 0.0) / 1000.0
        record = stats.get(event["name"])
        if record is None:
            stats[event["name"]] = {
                "calls": 1,
                "total_ms": duration_ms,
                "min_ms": duration_ms,
                "max_ms": duration_ms,
            }
        else:
            record["calls"] += 1
            record["total_ms"] += duration_ms
            record["min_ms"] = min(record["min_ms"], duration_ms)
            record["max_ms"] = max(record["max_ms"], duration_ms)
    for record in stats.values():
        record["mean_ms"] = record["total_ms"] / record["calls"]
    return dict(sorted(stats.items(),
                       key=lambda item: (-item[1]["total_ms"], item[0])))
