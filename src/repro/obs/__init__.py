"""Zero-dependency observability: spans, metrics, cache accounting.

The paper's pitch is that the analytical model makes design-space
studies *cheap*; this package is how the repository proves where that
cheapness comes from.  Three pieces, all stdlib-only:

* :mod:`repro.obs.trace` -- a :class:`Tracer` of nested wall-time
  spans with an injectable clock and Chrome ``trace_event``-compatible
  JSONL export (``repro ... --trace FILE``, inspected by
  ``repro stats``);
* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters /
  gauges / histograms whose disabled default is a guaranteed-cheap
  no-op, with snapshot/merge/diff for deterministic cross-process
  aggregation (worker deltas piggyback on result messages through
  :mod:`repro.api.pool`);
* :mod:`repro.obs.telemetry` -- the :class:`Telemetry` facade and the
  module-level *active telemetry* (:func:`activate` / :func:`current` /
  :func:`span` / :func:`metrics`) that instrumented code records into.

Instrumentation lives in the request path itself --
``Session.run`` stages, ``SweepEngine`` / ``SimulationSweep`` batches,
``WorkerPool`` dispatch, ``ModelCache`` / ``ProfileStore`` /
``RunStore`` hit-miss-corrupt accounting -- and costs nothing
measurable when disabled (gated <2% by ``benchmarks/bench_obs.py``).
"""

from repro.obs.metrics import (
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    activate,
    current,
    metrics,
    span,
)
from repro.obs.trace import (
    METRICS_EVENT,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    read_trace,
    span_stats,
)

__all__ = [
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Telemetry",
    "NULL_TELEMETRY",
    "activate",
    "current",
    "metrics",
    "span",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "METRICS_EVENT",
    "read_trace",
    "span_stats",
]
