"""The telemetry facade: one object bundling a tracer and a registry.

A :class:`Telemetry` pairs a :class:`~repro.obs.trace.Tracer` with a
:class:`~repro.obs.metrics.MetricsRegistry` (either half can be
disabled independently, collapsing to the shared null singletons).  A
module-level *active telemetry* -- :data:`NULL_TELEMETRY` unless
something is activated -- lets instrumented code anywhere in the tree
record without threading a telemetry object through every constructor::

    from repro import obs

    telemetry = obs.Telemetry()
    with obs.activate(telemetry):
        with obs.span("my.stage", detail=42):
            obs.metrics().inc("my.counter")

:class:`~repro.api.session.Session` captures the active telemetry at
construction and re-activates it around every ``run``, so the CLI only
activates once (``--trace`` / ``--metrics``) and every layer below --
engines, pools, caches, stores -- lights up.  With nothing activated,
``obs.span`` returns timed-but-unrecorded spans and ``obs.metrics()``
returns the no-op registry: the disabled mode is gated below 2%
overhead by ``benchmarks/bench_obs.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.obs.metrics import (
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
)
from repro.obs.trace import (
    NullTracer,
    NULL_TRACER,
    Span,
    Tracer,
    span_stats,
)

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "current",
    "activate",
    "span",
    "metrics",
]


class Telemetry:
    """A tracer plus a metrics registry, enabled independently.

    Parameters
    ----------
    trace:
        Record spans into a real :class:`~repro.obs.trace.Tracer`
        (``False`` substitutes the timing-only null tracer).
    metrics:
        Record counters/gauges/histograms into a real
        :class:`~repro.obs.metrics.MetricsRegistry` (``False``
        substitutes the no-op registry).
    clock:
        Optional injectable clock for the tracer (tests).

    Examples
    --------
    >>> telemetry = Telemetry()
    >>> with telemetry.span("stage"):
    ...     telemetry.metrics.inc("points", 3)
    >>> telemetry.metrics.snapshot()["counters"]
    {'points': 3}
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.tracer: Union[Tracer, NullTracer] = (
            Tracer(clock=clock) if trace else NULL_TRACER
        )
        self.metrics: Union[MetricsRegistry, NullMetrics] = (
            MetricsRegistry() if metrics else NULL_METRICS
        )

    @property
    def enabled(self) -> bool:
        """Whether either half records anything."""
        return self.tracer.enabled or self.metrics.enabled

    def span(self, name: str, **args: Any) -> Span:
        """A span on this telemetry's tracer (context manager)."""
        return self.tracer.span(name, **args)

    def activate(self) -> "Iterator[Telemetry]":
        """Install as the active telemetry for a ``with`` block."""
        return activate(self)

    def summary(self) -> Dict[str, Any]:
        """Aggregated spans + metrics snapshot (``--metrics`` output)."""
        return {
            "spans": span_stats(list(self.tracer.events)),
            "metrics": self.metrics.snapshot(),
        }


#: The always-disabled telemetry: timing-only spans, no-op metrics.
NULL_TELEMETRY = Telemetry(trace=False, metrics=False)

#: Active-telemetry stack; the top is what instrumented code records
#: into.  A list (not a single slot) so activations nest and unwind.
_ACTIVE: List[Telemetry] = [NULL_TELEMETRY]


def current() -> Telemetry:
    """The active telemetry (:data:`NULL_TELEMETRY` by default)."""
    return _ACTIVE[-1]


@contextmanager
def activate(telemetry: Telemetry) -> "Iterator[Telemetry]":
    """Install ``telemetry`` as active for the duration of the block.

    Activations nest: inner blocks shadow outer ones and the previous
    telemetry is restored on exit (exception-safe).
    """
    _ACTIVE.append(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.pop()


def span(name: str, **args: Any) -> Span:
    """A span on the active telemetry's tracer.

    Always returns a *timed* span -- with telemetry disabled the span
    is simply never recorded -- so call sites can rely on
    ``span.seconds`` as their single timing source.
    """
    return _ACTIVE[-1].tracer.span(name, **args)


def metrics() -> Union[MetricsRegistry, NullMetrics]:
    """The active metrics registry (the no-op registry by default)."""
    return _ACTIVE[-1].metrics
