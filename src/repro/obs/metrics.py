"""Counters, gauges and histograms with a guaranteed-cheap no-op default.

The telemetry layer's accounting half.  A :class:`MetricsRegistry`
holds three families of named metrics:

* **counters** -- monotonically increasing integers/floats
  (``model_cache.hits``, ``engine.points``, ``pool.tasks``);
* **gauges** -- last-write-wins point-in-time values
  (``pool.workers``, ``model_cache.entries``);
* **histograms** -- value distributions folded into count / sum /
  min / max plus power-of-two buckets (``pool.task_seconds``), so
  distributions merge exactly across processes without keeping samples.

When telemetry is disabled, instrumented call sites talk to the
:data:`NULL_METRICS` singleton instead: every method is a ``pass``
no-op, so hot paths cost one attribute lookup and an empty call --
nothing is allocated and nothing is recorded.  The disabled-mode cost
of the whole layer is gated below 2% by ``benchmarks/bench_obs.py``.

Cross-process aggregation is snapshot-based: a worker records into its
local registry, ships :meth:`MetricsRegistry.snapshot` deltas back
piggybacked on result messages (see :mod:`repro.api.pool`), and the
parent folds them in with :meth:`MetricsRegistry.merge` in task
submission order -- merging is associative and the order is
deterministic, so the merged registry is reproducible for a given task
assignment.  Snapshots are key-sorted canonical dicts, so two
registries holding the same values snapshot to identical JSON no
matter the insertion order.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping, Optional, Union

__all__ = [
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Number",
]

Number = Union[int, float]


def _bucket_label(value: float) -> str:
    """The power-of-two histogram bucket label containing ``value``.

    Buckets are upper bounds: ``value`` lands in the smallest power of
    two ``>= value``.  Non-positive values share the ``"0"`` bucket.
    """
    if value <= 0:
        return "0"
    exponent = math.ceil(math.log2(value))
    return f"{2.0 ** exponent:g}"


def _new_histogram() -> Dict[str, Any]:
    """An empty histogram record (count/sum/min/max/buckets)."""
    return {
        "count": 0,
        "sum": 0.0,
        "min": math.inf,
        "max": -math.inf,
        "buckets": {},
    }


class MetricsRegistry:
    """A mutable registry of named counters, gauges and histograms.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.inc("model_cache.hits", 3)
    >>> registry.observe("pool.task_seconds", 0.25)
    >>> registry.snapshot()["counters"]
    {'model_cache.hits': 3}
    """

    #: Real registries record; the :class:`NullMetrics` twin does not.
    enabled = True

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}
        self._histograms: Dict[str, Dict[str, Any]] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Fold one sample into the histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = _new_histogram()
        histogram["count"] += 1
        histogram["sum"] += value
        if value < histogram["min"]:
            histogram["min"] = value
        if value > histogram["max"]:
            histogram["max"] = value
        label = _bucket_label(value)
        buckets = histogram["buckets"]
        buckets[label] = buckets.get(label, 0) + 1

    # -- reading / folding ----------------------------------------------

    def __len__(self) -> int:
        """Total number of distinct metric names recorded."""
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def snapshot(self) -> Dict[str, Any]:
        """A key-sorted, JSON-serializable copy of every metric.

        The canonical interchange form: worker deltas, run-result
        telemetry blocks and ``--metrics`` output are all snapshots.
        Histogram ``min``/``max`` become ``None`` while empty so the
        snapshot stays JSON-clean.
        """
        histograms: Dict[str, Any] = {}
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            histograms[name] = {
                "count": histogram["count"],
                "sum": histogram["sum"],
                "min": (None if histogram["count"] == 0
                        else histogram["min"]),
                "max": (None if histogram["count"] == 0
                        else histogram["max"]),
                "buckets": {label: histogram["buckets"][label]
                            for label in sorted(histogram["buckets"])},
            }
        return {
            "counters": {name: self._counters[name]
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name]
                       for name in sorted(self._gauges)},
            "histograms": histograms,
        }

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram count/sum/buckets add; gauges take the
        delta's value (last write wins); histogram min/max combine.
        Merging is associative, so folding worker deltas in task
        submission order (the :meth:`~repro.api.pool.WorkerPool.imap`
        stream order) gives a deterministic result for a given task
        assignment.
        """
        for name, value in delta.get("counters", {}).items():
            self.inc(name, value)
        for name, value in delta.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, data in delta.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _new_histogram()
            histogram["count"] += data["count"]
            histogram["sum"] += data["sum"]
            if data.get("min") is not None:
                histogram["min"] = min(histogram["min"], data["min"])
            if data.get("max") is not None:
                histogram["max"] = max(histogram["max"], data["max"])
            buckets = histogram["buckets"]
            for label, count in data.get("buckets", {}).items():
                buckets[label] = buckets.get(label, 0) + count

    def diff(self, baseline: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        """The change since ``baseline`` (an earlier :meth:`snapshot`).

        Counters and histogram count/sum/buckets subtract (zero-delta
        entries are dropped); gauges report their current value.
        Histogram min/max are period-inclusive approximations: the
        registry folds samples as they arrive, so the delta reports the
        min/max over the registry's whole lifetime, not the period.
        ``baseline=None`` means "since empty" and returns a plain
        snapshot.
        """
        current = self.snapshot()
        if not baseline:
            return current
        base_counters = baseline.get("counters", {})
        counters = {
            name: value - base_counters.get(name, 0)
            for name, value in current["counters"].items()
            if value != base_counters.get(name, 0)
        }
        base_histograms = baseline.get("histograms", {})
        histograms: Dict[str, Any] = {}
        for name, data in current["histograms"].items():
            base = base_histograms.get(name)
            if base is None:
                histograms[name] = data
                continue
            count = data["count"] - base["count"]
            if count == 0:
                continue
            buckets = {
                label: total - base.get("buckets", {}).get(label, 0)
                for label, total in data["buckets"].items()
                if total != base.get("buckets", {}).get(label, 0)
            }
            histograms[name] = {
                "count": count,
                "sum": data["sum"] - base["sum"],
                "min": data["min"],
                "max": data["max"],
                "buckets": buckets,
            }
        return {
            "counters": counters,
            "gauges": current["gauges"],
            "histograms": histograms,
        }

    def clear(self) -> None:
        """Drop every recorded metric (used for per-task worker deltas)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class NullMetrics:
    """The do-nothing registry installed while telemetry is disabled.

    Shares the :class:`MetricsRegistry` interface; every recording
    method is an empty function, so instrumented hot paths pay one
    no-op call and allocate nothing.  Use the :data:`NULL_METRICS`
    singleton rather than constructing new instances.
    """

    #: Tells call sites that recording is off (skip delta bookkeeping).
    enabled = False

    __slots__ = ()

    def inc(self, name: str, value: Number = 1) -> None:
        """Discard a counter increment."""

    def set_gauge(self, name: str, value: Number) -> None:
        """Discard a gauge write."""

    def observe(self, name: str, value: Number) -> None:
        """Discard a histogram sample."""

    def __len__(self) -> int:
        """Always 0: nothing is ever recorded."""
        return 0

    def snapshot(self) -> Dict[str, Any]:
        """An empty snapshot (stable shape for uniform consumers)."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Discard a delta."""

    def diff(self, baseline: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        """An empty delta."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def clear(self) -> None:
        """Nothing to drop."""


#: The shared no-op registry (the default everywhere).
NULL_METRICS = NullMetrics()
