"""repro: micro-architecture independent analytical processor performance
and power modeling (reproduction of Van den Steen et al., ISPASS 2015).

Quick start::

    from repro import (
        make_workload, generate_trace, profile_application,
        AnalyticalModel, nehalem, simulate,
    )

    trace = generate_trace(make_workload("gcc"), max_instructions=50_000)
    profile = profile_application(trace)            # one-time profiling
    result = AnalyticalModel().predict(profile, nehalem())
    print(result.cpi, result.power_watts)

    reference = simulate(trace, nehalem())          # cycle-level ground truth
    print(reference.cpi)

Or declaratively, through the session API (shared worker pool, warm
caches, on-disk run store)::

    from repro import ExperimentSpec, Session

    with Session(workers=4) as session:
        sweep = session.run(ExperimentSpec(
            "sweep", workloads=["gcc"], objective="edp"))
"""

from repro.workloads import (
    Trace,
    WorkloadSpec,
    generate_trace,
    make_suite,
    make_workload,
    workload_names,
)
from repro.profiler import (
    ApplicationProfile,
    SamplingConfig,
    profile_application,
)
from repro.core import (
    AnalyticalModel,
    MachineConfig,
    Prediction,
    design_space,
    dvfs_points,
    low_power_core,
    nehalem,
)
from repro.core.model import ModelResult
from repro.simulator import SimulationResult, simulate
from repro.explore import (
    DesignSpace,
    EmpiricalModel,
    Parameter,
    SearchProblem,
    SearchTrajectory,
    StreamingParetoFront,
    SweepEngine,
    evaluate_design_space,
    get_objective,
    make_optimizer,
    pareto_front,
    pareto_metrics,
    speedups,
)
from repro.api import (
    ExperimentSpec,
    RunResult,
    RunStore,
    Session,
    SpecError,
    WorkerPool,
)

__version__ = "1.1.0"

__all__ = [
    "Trace",
    "WorkloadSpec",
    "generate_trace",
    "make_suite",
    "make_workload",
    "workload_names",
    "ApplicationProfile",
    "SamplingConfig",
    "profile_application",
    "AnalyticalModel",
    "MachineConfig",
    "Prediction",
    "ModelResult",
    "design_space",
    "dvfs_points",
    "low_power_core",
    "nehalem",
    "SimulationResult",
    "simulate",
    "DesignSpace",
    "EmpiricalModel",
    "Parameter",
    "SearchProblem",
    "SearchTrajectory",
    "StreamingParetoFront",
    "SweepEngine",
    "evaluate_design_space",
    "get_objective",
    "make_optimizer",
    "pareto_front",
    "pareto_metrics",
    "speedups",
    "ExperimentSpec",
    "RunResult",
    "RunStore",
    "Session",
    "SpecError",
    "WorkerPool",
    "__version__",
]
