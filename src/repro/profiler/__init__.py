"""The micro-architecture independent profiler (AIP substitute).

One profiling pass over a trace produces an :class:`ApplicationProfile`
holding only micro-architecture independent statistics: micro-op mixes,
dependence chain lengths over a grid of window sizes, linear branch
entropy, reuse distances, cold-miss window distributions and per-static-
load stride/spacing/dependence distributions.  Every model input for any
core configuration is later *derived* from this single profile.
"""

from repro.profiler.sampling import SamplingConfig, iter_micro_traces
from repro.profiler.mix import UopMix, profile_mix
from repro.profiler.dependences import (
    ChainProfile,
    DependenceChains,
    chain_lengths_exact,
    chain_lengths_stepped,
    profile_dependence_chains,
)
from repro.profiler.memory import (
    ColdMissProfile,
    MicroTraceMemoryProfile,
    StaticLoadProfile,
    classify_strides,
    profile_cold_misses,
    profile_micro_trace_memory,
)
from repro.profiler.profile import (
    ApplicationProfile,
    MicroTraceProfile,
    profile_application,
)

__all__ = [
    "SamplingConfig",
    "iter_micro_traces",
    "UopMix",
    "profile_mix",
    "ChainProfile",
    "DependenceChains",
    "chain_lengths_exact",
    "chain_lengths_stepped",
    "profile_dependence_chains",
    "ColdMissProfile",
    "MicroTraceMemoryProfile",
    "StaticLoadProfile",
    "classify_strides",
    "profile_cold_misses",
    "profile_micro_trace_memory",
    "ApplicationProfile",
    "MicroTraceProfile",
    "profile_application",
]
