"""Micro-op instruction mix profiling (thesis §5.1, Fig 5.2, Table 2.1).

The mix drives the base-component model: the uop count sets the unit of
work (§3.2) and the per-kind frequencies feed the issue-port scheduling
and functional-unit contention terms of the effective dispatch rate
(§3.4) plus the activity factors of the power model (§3.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.isa import Instruction, MacroOp, UopKind, crack
from repro.workloads.columns import TraceColumns


@dataclass
class UopMix:
    """Micro-op histogram over some instruction span."""

    counts: Dict[UopKind, int] = field(default_factory=dict)
    num_instructions: int = 0
    num_uops: int = 0

    def add_instruction(self, instr: Instruction) -> None:
        self.num_instructions += 1
        for kind in crack(instr.op):
            self.counts[kind] = self.counts.get(kind, 0) + 1
            self.num_uops += 1

    def merge(self, other: "UopMix") -> None:
        self.num_instructions += other.num_instructions
        self.num_uops += other.num_uops
        for kind, count in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0) + count

    def fraction(self, kind: UopKind) -> float:
        """Fraction of uops of one kind."""
        if self.num_uops == 0:
            return 0.0
        return self.counts.get(kind, 0) / self.num_uops

    def fractions(self) -> Dict[UopKind, float]:
        if self.num_uops == 0:
            return {}
        return {k: c / self.num_uops for k, c in self.counts.items()}

    @property
    def uops_per_instruction(self) -> float:
        if self.num_instructions == 0:
            return 0.0
        return self.num_uops / self.num_instructions

    @property
    def load_fraction(self) -> float:
        return self.fraction(UopKind.LOAD)

    @property
    def store_fraction(self) -> float:
        return self.fraction(UopKind.STORE)

    @property
    def branch_fraction(self) -> float:
        return self.fraction(UopKind.BRANCH)

    def average_latency(self, latencies: Mapping[UopKind, float]) -> float:
        """Execution-weighted average uop latency.

        The latency table comes from the machine configuration (it embeds
        the average load latency including L1/L2 hits, §3.3).
        """
        if self.num_uops == 0:
            return 1.0
        total = sum(
            count * latencies.get(kind, 1.0)
            for kind, count in self.counts.items()
        )
        return total / self.num_uops

    def scaled(self, factor: float) -> "UopMix":
        """A copy with all counts scaled (for sample extrapolation)."""
        scaled_mix = UopMix(
            counts={k: int(round(c * factor)) for k, c in self.counts.items()},
            num_instructions=int(round(self.num_instructions * factor)),
            num_uops=int(round(self.num_uops * factor)),
        )
        return scaled_mix


def profile_mix(
    instructions: Iterable[Instruction],
    columns: Optional[TraceColumns] = None,
) -> UopMix:
    """Profile the uop mix of an instruction span.

    With ``columns`` (a columnar view of the same span) the mix is one
    ``bincount`` over the macro-op codes expanded through the static
    cracking templates -- no per-instruction loop.  The ``counts`` dict
    is keyed in the scalar pass's insertion order (first encounter of
    each uop kind in the cracked stream): downstream float reductions
    iterate ``counts.items()``, so key order is part of the bitwise
    contract, not a cosmetic detail.
    """
    if columns is not None:
        op_counts = np.bincount(
            columns.op, minlength=len(MacroOp)
        ).tolist()
        codes, first_index = np.unique(columns.op, return_index=True)
        mix = UopMix(num_instructions=len(columns))
        counts = mix.counts
        # Accumulate ops by first dynamic appearance (template order
        # within an op), so each kind is inserted exactly when the
        # scalar loop would first insert it; the integer totals are
        # order-independent.
        encounter_order = np.argsort(first_index, kind="stable")
        for code in codes[encounter_order].tolist():
            count = op_counts[code]
            for kind in crack(MacroOp(code)):
                counts[kind] = counts.get(kind, 0) + count
                mix.num_uops += count
        return mix
    mix = UopMix()
    for instr in instructions:
        mix.add_instruction(instr)
    return mix
