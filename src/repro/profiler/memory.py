"""Memory-behaviour distributions (thesis §4.4--4.5, §5.4).

Two families of statistics feed the MLP models:

* **Cold-miss window distributions** (cold-miss MLP model, §4.4): over the
  *full* instruction stream -- cold misses cannot be sampled (§5.4.2) --
  record, for a grid of window (ROB) sizes and cache-line sizes, how many
  first-touch lines fall in each window.
* **Per-micro-trace static-load distributions** (stride MLP model, §4.5):
  load spacing (first position + recurrence gaps), stride distributions,
  inter-load dependence distribution f(l), and per-load local reuse
  distances.  These are enough to rebuild a *virtual instruction stream*
  over which the abstract MLP model hovers.

Stride classification follows Fig 4.7: single-stride, filtered 1..4-stride
(cumulative cutoffs 60/70/80/90%), random-strided and unique loads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa import Instruction
from repro.workloads.columns import TraceColumns, previous_occurrence

DEFAULT_LINE_SIZES: Tuple[int, ...] = (32, 64, 128)
DEFAULT_COLD_ROB_GRID: Tuple[int, ...] = (32, 64, 128, 192, 256)

#: Cumulative-frequency cutoffs for classifying 1..4-strided loads.
STRIDE_CUTOFFS: Tuple[float, ...] = (0.60, 0.70, 0.80, 0.90)


@dataclass
class ColdMissProfile:
    """Cold misses binned into instruction windows, full-stream.

    ``per_window[(line_size, rob)]`` is the average number of cold misses
    per window *containing at least one cold miss*; ``window_fraction``
    is the fraction of windows with at least one.  ``total[line_size]``
    counts all cold misses.
    """

    per_window: Dict[Tuple[int, int], float] = field(default_factory=dict)
    window_fraction: Dict[Tuple[int, int], float] = field(default_factory=dict)
    total: Dict[int, int] = field(default_factory=dict)
    num_instructions: int = 0

    @staticmethod
    def _nearest_key(
        keys: List[Tuple[int, int]], rob: int, line_size: int
    ) -> Tuple[int, int]:
        """The profiled ``(line_size, rob)`` key nearest the query."""
        return min(
            keys,
            key=lambda k: (abs(k[0] - line_size), abs(k[1] - rob)),
        )

    def cold_misses_per_occupied_window(
        self, rob: int, line_size: int = 64
    ) -> float:
        """m_cold_LLC(ROB): thesis §4.4, nearest profiled sizes."""
        if not self.per_window:
            return 0.0
        best = self._nearest_key(list(self.per_window), rob, line_size)
        return self.per_window[best]

    def occupied_window_fraction(
        self, rob: int, line_size: int = 64
    ) -> float:
        """Fraction of ROB-sized windows containing a cold miss.

        The companion lookup to
        :meth:`cold_misses_per_occupied_window`: same nearest-profiled
        ``(line_size, rob)`` key rule, applied to ``window_fraction``.
        """
        if not self.window_fraction:
            return 0.0
        best = self._nearest_key(
            list(self.window_fraction), rob, line_size
        )
        return self.window_fraction[best]


def profile_cold_misses(
    instructions: Sequence[Instruction],
    rob_grid: Sequence[int] = DEFAULT_COLD_ROB_GRID,
    line_sizes: Sequence[int] = DEFAULT_LINE_SIZES,
    columns: Optional[TraceColumns] = None,
) -> ColdMissProfile:
    """Profile first-touch (cold) misses over the full stream.

    Vectorized: per line size, one ``np.unique(..., return_index=True)``
    over the memory-access line ids yields the first-touch indices in a
    single pass (the scalar reference,
    :func:`_profile_cold_misses_scalar`, walks the stream once per line
    size with a ``seen`` set).  Outputs are bitwise identical.

    ``columns`` supplies a pre-built columnar view; when omitted it is
    built from (or found cached on) ``instructions``.
    """
    if columns is None:
        columns = TraceColumns.ensure(instructions)
    n = len(columns)
    profile = ColdMissProfile(num_instructions=n)
    mem_positions = np.nonzero(columns.is_mem)[0]
    mem_addr = columns.addr[mem_positions]
    for line_size in line_sizes:
        _, first = np.unique(mem_addr // line_size, return_index=True)
        cold_indices = np.sort(mem_positions[first])
        total = int(cold_indices.shape[0])
        profile.total[line_size] = total
        for rob in rob_grid:
            windows = max(1, (n + rob - 1) // rob)
            occupied = int(np.unique(cold_indices // rob).shape[0])
            if occupied:
                average = total / occupied
            else:
                average = 0.0
            profile.per_window[(line_size, rob)] = average
            profile.window_fraction[(line_size, rob)] = occupied / windows
    return profile


def _profile_cold_misses_scalar(
    instructions: Sequence[Instruction],
    rob_grid: Sequence[int] = DEFAULT_COLD_ROB_GRID,
    line_sizes: Sequence[int] = DEFAULT_LINE_SIZES,
) -> ColdMissProfile:
    """Scalar reference for :func:`profile_cold_misses` (kept verbatim).

    One full Python pass per line size with a ``seen`` set; the ground
    truth the vectorized pass is property-tested against (bitwise).
    """
    profile = ColdMissProfile(num_instructions=len(instructions))
    for line_size in line_sizes:
        seen: set = set()
        cold_indices: List[int] = []
        for index, instr in enumerate(instructions):
            if not instr.is_mem:
                continue
            line = instr.addr // line_size
            if line not in seen:
                seen.add(line)
                cold_indices.append(index)
        profile.total[line_size] = len(cold_indices)
        for rob in rob_grid:
            windows = max(1, (len(instructions) + rob - 1) // rob)
            counts = Counter(index // rob for index in cold_indices)
            occupied = len(counts)
            if occupied:
                average = sum(counts.values()) / occupied
            else:
                average = 0.0
            profile.per_window[(line_size, rob)] = average
            profile.window_fraction[(line_size, rob)] = occupied / windows
    return profile


@dataclass
class StaticLoadProfile:
    """Distributions of one static load inside one micro-trace."""

    pc: int
    first_position: int
    positions: List[int] = field(default_factory=list)
    strides: Counter = field(default_factory=Counter)
    local_reuse: List[int] = field(default_factory=list)
    dst: int = -1
    depth_sum: int = 0  # sum of load-chain depths l over occurrences

    @property
    def occurrences(self) -> int:
        return len(self.positions)

    @property
    def mean_depth(self) -> float:
        """Average position l of this load on its load dependence chain."""
        if not self.positions:
            return 1.0
        return self.depth_sum / len(self.positions)

    @property
    def mean_gap(self) -> float:
        if len(self.positions) < 2:
            return 0.0
        gaps = [
            b - a for a, b in zip(self.positions, self.positions[1:])
        ]
        return sum(gaps) / len(gaps)


def classify_strides(profile: StaticLoadProfile) -> Tuple[str, List[int]]:
    """Classify a static load's access pattern (thesis §4.5, Fig 4.7).

    Returns ``(category, dominant_strides)`` where category is one of
    ``STRIDE``, ``FILTER-1`` .. ``FILTER-4``, ``RANDOM``, ``UNIQUE``.
    The simplest pattern passing its cumulative cutoff wins.
    """
    if profile.occurrences <= 1:
        return "UNIQUE", []
    strides = profile.strides
    total = sum(strides.values())
    if total == 0:
        return "UNIQUE", []
    ranked = strides.most_common()
    if len(ranked) == 1:
        return "STRIDE", [ranked[0][0]]
    cumulative = 0.0
    chosen: List[int] = []
    for k, (stride, count) in enumerate(ranked[:4]):
        cumulative += count / total
        chosen.append(stride)
        if cumulative >= STRIDE_CUTOFFS[k]:
            return f"FILTER-{k + 1}", chosen
    return "RANDOM", []


@dataclass
class MicroTraceMemoryProfile:
    """Memory distributions of one micro-trace (stride-MLP inputs)."""

    static_loads: Dict[int, StaticLoadProfile] = field(default_factory=dict)
    load_dependence: Counter = field(default_factory=Counter)  # f(l)
    load_positions: List[int] = field(default_factory=list)
    store_positions: List[int] = field(default_factory=list)
    length: int = 0

    @property
    def num_loads(self) -> int:
        return len(self.load_positions)

    def load_dependence_distribution(self) -> Dict[int, float]:
        """Normalized f(l): P(a load is the l-th load on its chain)."""
        total = sum(self.load_dependence.values())
        if total == 0:
            return {}
        return {
            depth: count / total
            for depth, count in sorted(self.load_dependence.items())
        }

    def independent_load_fraction(self) -> float:
        """Fraction of loads heading a load-dependence chain (l == 1)."""
        distribution = self.load_dependence_distribution()
        return distribution.get(1, 0.0)

    def average_loads_per_path(self) -> float:
        """lop(ROB) proxy: mean l over loads (thesis §4.8)."""
        total = sum(self.load_dependence.values())
        if total == 0:
            return 0.0
        weighted = sum(
            depth * count for depth, count in self.load_dependence.items()
        )
        return weighted / total

    def stride_categories(self) -> Dict[str, int]:
        """Histogram of stride categories over static loads."""
        categories: Counter = Counter()
        for load in self.static_loads.values():
            category, _ = classify_strides(load)
            categories[category] += 1
        return dict(categories)


def profile_micro_trace_memory(
    micro_trace: Sequence[Instruction],
    line_size: int = 64,
    columns: Optional[TraceColumns] = None,
) -> MicroTraceMemoryProfile:
    """Collect the stride-MLP distributions for one micro-trace.

    The vectorizable statistics come from columnar sweeps: load/store
    positions from mask ``nonzero``, per-PC stride diffs and occurrence
    lists from one stable argsort grouping loads by PC, and local reuse
    distances from the
    :func:`~repro.workloads.columns.previous_occurrence` predecessor
    sweep over the interleaved load/store line stream.  Only the
    register-dataflow depth recurrence (f(l), thesis Fig 4.5) is
    inherently sequential; it stays a scalar loop but reads plain int
    arrays instead of ``Instruction`` objects.  Outputs are bitwise
    identical to :func:`_profile_micro_trace_memory_scalar`.

    ``columns`` supplies a pre-built columnar view; when omitted it is
    built from (or found cached on) ``micro_trace``.
    """
    if columns is None:
        columns = TraceColumns.ensure(micro_trace)
    n = len(columns)
    profile = MicroTraceMemoryProfile(length=n)
    is_load = columns.is_load
    load_positions = np.nonzero(is_load)[0]
    profile.load_positions = load_positions.tolist()
    profile.store_positions = np.nonzero(columns.is_store)[0].tolist()

    # -- local reuse distances over the interleaved load/store stream --
    mem_positions = np.nonzero(columns.is_mem)[0]
    access_index = np.arange(mem_positions.shape[0], dtype=np.int64)
    prev = previous_occurrence(columns.addr[mem_positions] // line_size)
    closes_reuse = is_load[mem_positions] & (prev >= 0)
    reuse_pc = columns.pc[mem_positions[closes_reuse]]
    reuse_distance = (access_index - prev - 1)[closes_reuse]
    reuse_order = np.argsort(reuse_pc, kind="stable")
    sorted_reuse_pc = reuse_pc[reuse_order]
    sorted_reuse_d = reuse_distance[reuse_order]
    local_by_pc: Dict[int, List[int]] = {}
    if sorted_reuse_pc.shape[0]:
        cuts = np.nonzero(np.diff(sorted_reuse_pc))[0] + 1
        group_starts = np.concatenate(([0], cuts))
        group_ends = np.concatenate((cuts, [sorted_reuse_pc.shape[0]]))
        for start, end in zip(group_starts.tolist(), group_ends.tolist()):
            local_by_pc[int(sorted_reuse_pc[start])] = (
                sorted_reuse_d[start:end].tolist()
            )

    # -- register-dataflow load depths: sequential by nature ------------
    src1 = columns.src1.tolist()
    src2 = columns.src2.tolist()
    dst = columns.dst.tolist()
    loads = is_load.tolist()
    pcs = columns.pc.tolist()
    load_depth_of_reg: Dict[int, int] = {}
    load_dependence = profile.load_dependence
    depth_sum_by_pc: Dict[int, int] = {}
    for position in range(n):
        depth = 0
        src = src1[position]
        if src >= 0:
            depth = load_depth_of_reg.get(src, 0)
        src = src2[position]
        if src >= 0:
            other = load_depth_of_reg.get(src, 0)
            if other > depth:
                depth = other
        if loads[position]:
            depth += 1
            load_dependence[depth] += 1
            pc = pcs[position]
            depth_sum_by_pc[pc] = depth_sum_by_pc.get(pc, 0) + depth
        reg = dst[position]
        if reg >= 0:
            load_depth_of_reg[reg] = depth

    # -- static loads grouped by PC, in first-occurrence order ----------
    load_pc = columns.pc[load_positions]
    order = np.argsort(load_pc, kind="stable")
    grouped_pc = load_pc[order]
    grouped_pos = load_positions[order]
    grouped_addr = columns.addr[load_positions][order]
    grouped_dst = columns.dst[load_positions][order]
    if grouped_pc.shape[0]:
        cuts = np.nonzero(np.diff(grouped_pc))[0] + 1
        group_starts = np.concatenate(([0], cuts))
        group_ends = np.concatenate((cuts, [grouped_pc.shape[0]]))
        first_seen = np.argsort(grouped_pos[group_starts], kind="stable")
        for group in first_seen.tolist():
            start = int(group_starts[group])
            end = int(group_ends[group])
            pc = int(grouped_pc[start])
            load = StaticLoadProfile(
                pc=pc,
                first_position=int(grouped_pos[start]),
                dst=int(grouped_dst[start]),
            )
            load.positions = grouped_pos[start:end].tolist()
            load.strides = Counter(
                (grouped_addr[start + 1:end]
                 - grouped_addr[start:end - 1]).tolist()
            )
            load.local_reuse = local_by_pc.get(pc, [])
            load.depth_sum = depth_sum_by_pc.get(pc, 0)
            profile.static_loads[pc] = load
    return profile


def _profile_micro_trace_memory_scalar(
    micro_trace: Sequence[Instruction],
    line_size: int = 64,
) -> MicroTraceMemoryProfile:
    """Scalar reference for :func:`profile_micro_trace_memory`.

    One forward pass maintains:

    * per-static-load position/address history (spacing + strides);
    * per-line last-access index for local reuse distances;
    * register dataflow depths counting only loads, giving f(l)
      (thesis Fig 4.5: the l-th load on a dependence chain).

    Kept verbatim as the ground truth the vectorized pass is
    property-tested against (bitwise).
    """
    profile = MicroTraceMemoryProfile(length=len(micro_trace))
    last_address: Dict[int, int] = {}
    last_line_access: Dict[int, int] = {}
    load_depth_of_reg: Dict[int, int] = {}
    access_index = 0

    for position, instr in enumerate(micro_trace):
        # Register dataflow load depth.
        depth = 0
        for src in (instr.src1, instr.src2):
            if src >= 0:
                depth = max(depth, load_depth_of_reg.get(src, 0))
        if instr.is_load:
            depth += 1
            profile.load_dependence[depth] += 1
            profile.load_positions.append(position)

            load = profile.static_loads.get(instr.pc)
            if load is None:
                load = StaticLoadProfile(
                    pc=instr.pc, first_position=position, dst=instr.dst
                )
                profile.static_loads[instr.pc] = load
            load.depth_sum += depth
            previous_addr = last_address.get(instr.pc)
            if previous_addr is not None:
                load.strides[instr.addr - previous_addr] += 1
            last_address[instr.pc] = instr.addr
            load.positions.append(position)

            line = instr.addr // line_size
            previous_access = last_line_access.get(line)
            if previous_access is not None:
                load.local_reuse.append(access_index - previous_access - 1)
            last_line_access[line] = access_index
            access_index += 1
        elif instr.is_store:
            profile.store_positions.append(position)
            line = instr.addr // line_size
            last_line_access[line] = access_index
            access_index += 1

        if instr.dst >= 0:
            load_depth_of_reg[instr.dst] = depth
    return profile
