"""Memory-behaviour distributions (thesis §4.4--4.5, §5.4).

Two families of statistics feed the MLP models:

* **Cold-miss window distributions** (cold-miss MLP model, §4.4): over the
  *full* instruction stream -- cold misses cannot be sampled (§5.4.2) --
  record, for a grid of window (ROB) sizes and cache-line sizes, how many
  first-touch lines fall in each window.
* **Per-micro-trace static-load distributions** (stride MLP model, §4.5):
  load spacing (first position + recurrence gaps), stride distributions,
  inter-load dependence distribution f(l), and per-load local reuse
  distances.  These are enough to rebuild a *virtual instruction stream*
  over which the abstract MLP model hovers.

Stride classification follows Fig 4.7: single-stride, filtered 1..4-stride
(cumulative cutoffs 60/70/80/90%), random-strided and unique loads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa import Instruction

DEFAULT_LINE_SIZES: Tuple[int, ...] = (32, 64, 128)
DEFAULT_COLD_ROB_GRID: Tuple[int, ...] = (32, 64, 128, 192, 256)

#: Cumulative-frequency cutoffs for classifying 1..4-strided loads.
STRIDE_CUTOFFS: Tuple[float, ...] = (0.60, 0.70, 0.80, 0.90)


@dataclass
class ColdMissProfile:
    """Cold misses binned into instruction windows, full-stream.

    ``per_window[(line_size, rob)]`` is the average number of cold misses
    per window *containing at least one cold miss*; ``window_fraction``
    is the fraction of windows with at least one.  ``total[line_size]``
    counts all cold misses.
    """

    per_window: Dict[Tuple[int, int], float] = field(default_factory=dict)
    window_fraction: Dict[Tuple[int, int], float] = field(default_factory=dict)
    total: Dict[int, int] = field(default_factory=dict)
    num_instructions: int = 0

    def cold_misses_per_occupied_window(
        self, rob: int, line_size: int = 64
    ) -> float:
        """m_cold_LLC(ROB): thesis §4.4, nearest profiled sizes."""
        if not self.per_window:
            return 0.0
        keys = list(self.per_window)
        best = min(
            keys,
            key=lambda k: (abs(k[0] - line_size), abs(k[1] - rob)),
        )
        return self.per_window[best]


def profile_cold_misses(
    instructions: Sequence[Instruction],
    rob_grid: Sequence[int] = DEFAULT_COLD_ROB_GRID,
    line_sizes: Sequence[int] = DEFAULT_LINE_SIZES,
) -> ColdMissProfile:
    """Profile first-touch (cold) misses over the full stream."""
    profile = ColdMissProfile(num_instructions=len(instructions))
    for line_size in line_sizes:
        seen: set = set()
        cold_indices: List[int] = []
        for index, instr in enumerate(instructions):
            if not instr.is_mem:
                continue
            line = instr.addr // line_size
            if line not in seen:
                seen.add(line)
                cold_indices.append(index)
        profile.total[line_size] = len(cold_indices)
        for rob in rob_grid:
            windows = max(1, (len(instructions) + rob - 1) // rob)
            counts = Counter(index // rob for index in cold_indices)
            occupied = len(counts)
            if occupied:
                average = sum(counts.values()) / occupied
            else:
                average = 0.0
            profile.per_window[(line_size, rob)] = average
            profile.window_fraction[(line_size, rob)] = occupied / windows
    return profile


@dataclass
class StaticLoadProfile:
    """Distributions of one static load inside one micro-trace."""

    pc: int
    first_position: int
    positions: List[int] = field(default_factory=list)
    strides: Counter = field(default_factory=Counter)
    local_reuse: List[int] = field(default_factory=list)
    dst: int = -1
    depth_sum: int = 0  # sum of load-chain depths l over occurrences

    @property
    def occurrences(self) -> int:
        return len(self.positions)

    @property
    def mean_depth(self) -> float:
        """Average position l of this load on its load dependence chain."""
        if not self.positions:
            return 1.0
        return self.depth_sum / len(self.positions)

    @property
    def mean_gap(self) -> float:
        if len(self.positions) < 2:
            return 0.0
        gaps = [
            b - a for a, b in zip(self.positions, self.positions[1:])
        ]
        return sum(gaps) / len(gaps)


def classify_strides(profile: StaticLoadProfile) -> Tuple[str, List[int]]:
    """Classify a static load's access pattern (thesis §4.5, Fig 4.7).

    Returns ``(category, dominant_strides)`` where category is one of
    ``STRIDE``, ``FILTER-1`` .. ``FILTER-4``, ``RANDOM``, ``UNIQUE``.
    The simplest pattern passing its cumulative cutoff wins.
    """
    if profile.occurrences <= 1:
        return "UNIQUE", []
    strides = profile.strides
    total = sum(strides.values())
    if total == 0:
        return "UNIQUE", []
    ranked = strides.most_common()
    if len(ranked) == 1:
        return "STRIDE", [ranked[0][0]]
    cumulative = 0.0
    chosen: List[int] = []
    for k, (stride, count) in enumerate(ranked[:4]):
        cumulative += count / total
        chosen.append(stride)
        if cumulative >= STRIDE_CUTOFFS[k]:
            return f"FILTER-{k + 1}", chosen
    return "RANDOM", []


@dataclass
class MicroTraceMemoryProfile:
    """Memory distributions of one micro-trace (stride-MLP inputs)."""

    static_loads: Dict[int, StaticLoadProfile] = field(default_factory=dict)
    load_dependence: Counter = field(default_factory=Counter)  # f(l)
    load_positions: List[int] = field(default_factory=list)
    store_positions: List[int] = field(default_factory=list)
    length: int = 0

    @property
    def num_loads(self) -> int:
        return len(self.load_positions)

    def load_dependence_distribution(self) -> Dict[int, float]:
        """Normalized f(l): P(a load is the l-th load on its chain)."""
        total = sum(self.load_dependence.values())
        if total == 0:
            return {}
        return {
            depth: count / total
            for depth, count in sorted(self.load_dependence.items())
        }

    def independent_load_fraction(self) -> float:
        """Fraction of loads heading a load-dependence chain (l == 1)."""
        distribution = self.load_dependence_distribution()
        return distribution.get(1, 0.0)

    def average_loads_per_path(self) -> float:
        """lop(ROB) proxy: mean l over loads (thesis §4.8)."""
        total = sum(self.load_dependence.values())
        if total == 0:
            return 0.0
        weighted = sum(
            depth * count for depth, count in self.load_dependence.items()
        )
        return weighted / total

    def stride_categories(self) -> Dict[str, int]:
        """Histogram of stride categories over static loads."""
        categories: Counter = Counter()
        for load in self.static_loads.values():
            category, _ = classify_strides(load)
            categories[category] += 1
        return dict(categories)


def profile_micro_trace_memory(
    micro_trace: Sequence[Instruction],
    line_size: int = 64,
) -> MicroTraceMemoryProfile:
    """Collect the stride-MLP distributions for one micro-trace.

    One forward pass maintains:

    * per-static-load position/address history (spacing + strides);
    * per-line last-access index for local reuse distances;
    * register dataflow depths counting only loads, giving f(l)
      (thesis Fig 4.5: the l-th load on a dependence chain).
    """
    profile = MicroTraceMemoryProfile(length=len(micro_trace))
    last_address: Dict[int, int] = {}
    last_line_access: Dict[int, int] = {}
    load_depth_of_reg: Dict[int, int] = {}
    access_index = 0

    for position, instr in enumerate(micro_trace):
        # Register dataflow load depth.
        depth = 0
        for src in (instr.src1, instr.src2):
            if src >= 0:
                depth = max(depth, load_depth_of_reg.get(src, 0))
        if instr.is_load:
            depth += 1
            profile.load_dependence[depth] += 1
            profile.load_positions.append(position)

            load = profile.static_loads.get(instr.pc)
            if load is None:
                load = StaticLoadProfile(
                    pc=instr.pc, first_position=position, dst=instr.dst
                )
                profile.static_loads[instr.pc] = load
            load.depth_sum += depth
            previous_addr = last_address.get(instr.pc)
            if previous_addr is not None:
                load.strides[instr.addr - previous_addr] += 1
            last_address[instr.pc] = instr.addr
            load.positions.append(position)

            line = instr.addr // line_size
            previous_access = last_line_access.get(line)
            if previous_access is not None:
                load.local_reuse.append(access_index - previous_access - 1)
            last_line_access[line] = access_index
            access_index += 1
        elif instr.is_store:
            profile.store_positions.append(position)
            line = instr.addr // line_size
            last_line_access[line] = access_index
            access_index += 1

        if instr.dst >= 0:
            load_depth_of_reg[instr.dst] = depth
    return profile
