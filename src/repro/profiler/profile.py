"""The application profile: everything the analytical model consumes.

``profile_application`` makes one pass over a trace (plus cheap auxiliary
passes) and returns an :class:`ApplicationProfile`:

* global statistics: uop mix, dependence chains, linear branch entropy,
  reuse-distance profile (loads/stores typed), instruction-stream reuse
  profile, cold-miss window distributions;
* per-micro-trace statistics (thesis §5, TC'16 per-sample evaluation):
  local mix, local chains, stride/spacing/f(l) memory distributions, and
  the micro-trace's typed reuse histogram measured against full history.

The profile is micro-architecture independent: nothing in it depends on a
cache size, predictor or ROB; the model derives all inputs for any machine
configuration from it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.frontend.entropy import (
    BranchEntropyProfile,
    profile_branch_entropy,
)
from repro.isa import Instruction
from repro.profiler.dependences import (
    DEFAULT_ROB_GRID,
    DependenceChains,
    profile_dependence_chains,
)
from repro.profiler.memory import (
    ColdMissProfile,
    MicroTraceMemoryProfile,
    profile_cold_misses,
    profile_micro_trace_memory,
)
from repro.profiler.mix import UopMix, profile_mix
from repro.profiler.sampling import SamplingConfig, iter_micro_traces
from repro.statstack.model import StatStack
from repro.statstack.reuse import ReuseProfile
from repro.workloads.trace import Trace


@dataclass
class MicroTraceProfile:
    """All statistics of one profiled micro-trace."""

    start: int
    length: int
    mix: UopMix
    chains: DependenceChains
    memory: MicroTraceMemoryProfile
    load_reuse: Dict[int, int] = field(default_factory=dict)
    store_reuse: Dict[int, int] = field(default_factory=dict)
    cold_loads: int = 0
    cold_stores: int = 0
    #: Per-static-load attributed reuse: pc -> {distance: count} and
    #: pc -> cold count, measured against full-stream history.  Gives the
    #: stride-MLP virtual stream exact per-load miss probabilities.
    load_reuse_by_pc: Dict[int, Dict[int, int]] = field(default_factory=dict)
    cold_by_pc: Dict[int, int] = field(default_factory=dict)


@dataclass
class ApplicationProfile:
    """Micro-architecture independent profile of one application."""

    name: str
    num_instructions: int
    sampling: SamplingConfig
    mix: UopMix
    chains: DependenceChains
    branch_entropy: BranchEntropyProfile
    reuse: ReuseProfile
    instruction_reuse: ReuseProfile
    cold: ColdMissProfile
    micro_traces: List[MicroTraceProfile] = field(default_factory=list)
    _statstack: Optional[StatStack] = None
    _instruction_statstack: Optional[StatStack] = None

    @property
    def sample_fraction(self) -> float:
        """Fraction of instructions inside micro-traces."""
        if self.num_instructions == 0:
            return 1.0
        profiled = sum(mt.length for mt in self.micro_traces)
        return profiled / self.num_instructions

    def statstack(self) -> StatStack:
        """The (cached) data-stream StatStack model."""
        if self._statstack is None:
            self._statstack = StatStack(self.reuse)
        return self._statstack

    def instruction_statstack(self) -> StatStack:
        """The (cached) instruction-stream StatStack model."""
        if self._instruction_statstack is None:
            self._instruction_statstack = StatStack(self.instruction_reuse)
        return self._instruction_statstack


def _global_reuse_pass(
    instructions: Sequence[Instruction],
    sampling: SamplingConfig,
    line_size: int,
) -> Tuple[ReuseProfile, Dict[int, MicroTraceProfile]]:
    """Collect the global data reuse profile and attribute reuses.

    Distances are measured over the *full* access stream (so micro-trace
    accesses see cross-window history, as StatStack's burst sampling
    does); each recorded reuse/cold access whose closing access falls in a
    micro-trace is also added to that micro-trace's local histograms.

    When ``sampling.reuse_sample_rate < 1`` only a seeded-random subset
    of accesses is recorded (``sampling.reuse_seed`` makes the subset
    reproducible); distances stay exact because the per-line last-access
    index is updated for every access.
    """
    profile = ReuseProfile(line_size=line_size)
    per_window: Dict[int, Dict[str, object]] = {}
    last_access: Dict[int, int] = {}
    access_index = 0
    window_length = sampling.window_length
    micro_length = sampling.micro_trace_length
    record_all = sampling.reuse_sample_rate >= 1.0
    rng = random.Random(sampling.reuse_seed)

    for position, instr in enumerate(instructions):
        if not instr.is_mem:
            continue
        is_write = instr.is_store
        if is_write:
            profile.store_accesses += 1
        else:
            profile.load_accesses += 1
        line = instr.addr // line_size
        previous = last_access.get(line)
        if not (record_all or rng.random() < sampling.reuse_sample_rate):
            last_access[line] = access_index
            access_index += 1
            continue

        in_micro = position % window_length < micro_length
        window_id = position // window_length
        local = None
        if in_micro:
            local = per_window.setdefault(
                window_id,
                {"load": {}, "store": {}, "cold_loads": 0, "cold_stores": 0,
                 "load_pc": {}, "cold_pc": {}},
            )

        profile.sampled_accesses += 1
        if previous is None:
            if is_write:
                profile.cold_stores += 1
                if local is not None:
                    local["cold_stores"] += 1
            else:
                profile.cold_loads += 1
                if local is not None:
                    local["cold_loads"] += 1
                    local["cold_pc"][instr.pc] = (
                        local["cold_pc"].get(instr.pc, 0) + 1
                    )
        else:
            distance = access_index - previous - 1
            profile.histogram[distance] = (
                profile.histogram.get(distance, 0) + 1
            )
            typed = (
                profile.store_histogram if is_write else profile.load_histogram
            )
            typed[distance] = typed.get(distance, 0) + 1
            if local is not None:
                bucket = local["store" if is_write else "load"]
                bucket[distance] = bucket.get(distance, 0) + 1
                if not is_write:
                    pc_bucket = local["load_pc"].setdefault(instr.pc, {})
                    pc_bucket[distance] = pc_bucket.get(distance, 0) + 1
        last_access[line] = access_index
        access_index += 1

    micro_profiles: Dict[int, MicroTraceProfile] = {}
    for window_id, local in per_window.items():
        micro_profiles[window_id] = MicroTraceProfile(
            start=window_id * window_length,
            length=0,
            mix=UopMix(),
            chains=DependenceChains(),
            memory=MicroTraceMemoryProfile(),
            load_reuse=local["load"],
            store_reuse=local["store"],
            cold_loads=local["cold_loads"],
            cold_stores=local["cold_stores"],
            load_reuse_by_pc=local["load_pc"],
            cold_by_pc=local["cold_pc"],
        )
    return profile, micro_profiles


def _instruction_reuse_pass(
    instructions: Sequence[Instruction], line_size: int
) -> ReuseProfile:
    """Reuse profile over the instruction-fetch address stream."""
    profile = ReuseProfile(line_size=line_size)
    last_access: Dict[int, int] = {}
    for index, instr in enumerate(instructions):
        profile.load_accesses += 1
        profile.sampled_accesses += 1
        line = instr.pc // line_size
        previous = last_access.get(line)
        if previous is None:
            profile.cold_loads += 1
        else:
            distance = index - previous - 1
            profile.histogram[distance] = (
                profile.histogram.get(distance, 0) + 1
            )
            profile.load_histogram[distance] = (
                profile.load_histogram.get(distance, 0) + 1
            )
        last_access[line] = index
    return profile


def profile_application(
    trace: Trace,
    sampling: Optional[SamplingConfig] = None,
    rob_grid: Sequence[int] = DEFAULT_ROB_GRID,
    line_size: int = 64,
    entropy_history_lengths: Sequence[int] = (4, 8, 12),
) -> ApplicationProfile:
    """Profile one application trace (the AIP's single profiling run)."""
    sampling = sampling or SamplingConfig()
    instructions = trace.instructions

    reuse, micro_by_window = _global_reuse_pass(
        instructions, sampling, line_size
    )
    instruction_reuse = _instruction_reuse_pass(instructions, line_size)
    cold = profile_cold_misses(instructions)
    branch_entropy = profile_branch_entropy(
        instructions, entropy_history_lengths
    )

    micro_traces: List[MicroTraceProfile] = []
    all_chains: List[DependenceChains] = []
    weights: List[float] = []
    global_mix = UopMix()

    for start, micro in iter_micro_traces(instructions, sampling):
        window_id = start // sampling.window_length
        mix = profile_mix(micro)
        chains = profile_dependence_chains(micro, grid=rob_grid)
        memory = profile_micro_trace_memory(micro, line_size=line_size)

        micro_profile = micro_by_window.get(window_id)
        if micro_profile is None:
            micro_profile = MicroTraceProfile(
                start=start,
                length=len(micro),
                mix=mix,
                chains=chains,
                memory=memory,
            )
        else:
            micro_profile.start = start
            micro_profile.length = len(micro)
            micro_profile.mix = mix
            micro_profile.chains = chains
            micro_profile.memory = memory
        micro_traces.append(micro_profile)
        global_mix.merge(mix)
        all_chains.append(chains)
        weights.append(len(micro))

    micro_traces.sort(key=lambda mt: mt.start)
    aggregate_chains = DependenceChains(grid=tuple(rob_grid))
    aggregate_chains.merge_weighted(all_chains, weights)

    return ApplicationProfile(
        name=trace.name,
        num_instructions=len(instructions),
        sampling=sampling,
        mix=global_mix,
        chains=aggregate_chains,
        branch_entropy=branch_entropy,
        reuse=reuse,
        instruction_reuse=instruction_reuse,
        cold=cold,
        micro_traces=micro_traces,
    )
