"""The application profile: everything the analytical model consumes.

``profile_application`` makes one pass over a trace (plus cheap auxiliary
passes) and returns an :class:`ApplicationProfile`:

* global statistics: uop mix, dependence chains, linear branch entropy,
  reuse-distance profile (loads/stores typed), instruction-stream reuse
  profile, cold-miss window distributions;
* per-micro-trace statistics (thesis §5, TC'16 per-sample evaluation):
  local mix, local chains, stride/spacing/f(l) memory distributions, and
  the micro-trace's typed reuse histogram measured against full history.

The profile is micro-architecture independent: nothing in it depends on a
cache size, predictor or ROB; the model derives all inputs for any machine
configuration from it.

Two interchangeable backends produce the profile:

* ``"columns"`` (default): the vectorized hot path.  The trace's
  columnar view (:class:`~repro.workloads.columns.TraceColumns`, built
  once and cached on the trace) feeds NumPy sweeps for the reuse,
  cold-miss, stride, mix and entropy statistics; only the inherently
  sequential register-dataflow recurrences stay scalar loops over
  pre-extracted arrays.
* ``"scalar"``: the original per-``Instruction`` loops, retained
  verbatim as the reference implementation.

Both backends produce **bitwise-identical** profiles (property-tested),
so they hash to the same
:class:`~repro.profiler.serialization.ProfileStore` content key.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import PROFILE_BACKENDS, validate_backend
from repro.frontend.entropy import (
    BranchEntropyProfile,
    profile_branch_entropy,
)
from repro.isa import Instruction
from repro.profiler.dependences import (
    DEFAULT_ROB_GRID,
    DependenceChains,
    profile_dependence_chains,
)
from repro.profiler.memory import (
    ColdMissProfile,
    MicroTraceMemoryProfile,
    profile_cold_misses,
    profile_micro_trace_memory,
    _profile_cold_misses_scalar,
    _profile_micro_trace_memory_scalar,
)
from repro.profiler.mix import UopMix, profile_mix
from repro.profiler.sampling import (
    SamplingConfig,
    iter_micro_spans,
    iter_micro_traces,
)
from repro.statstack.model import StatStack
from repro.statstack.reuse import ReuseProfile, reuse_sweep_into
from repro.workloads.columns import TraceColumns
from repro.workloads.trace import Trace


@dataclass
class MicroTraceProfile:
    """All statistics of one profiled micro-trace."""

    start: int
    length: int
    mix: UopMix
    chains: DependenceChains
    memory: MicroTraceMemoryProfile
    load_reuse: Dict[int, int] = field(default_factory=dict)
    store_reuse: Dict[int, int] = field(default_factory=dict)
    cold_loads: int = 0
    cold_stores: int = 0
    #: Per-static-load attributed reuse: pc -> {distance: count} and
    #: pc -> cold count, measured against full-stream history.  Gives the
    #: stride-MLP virtual stream exact per-load miss probabilities.
    load_reuse_by_pc: Dict[int, Dict[int, int]] = field(default_factory=dict)
    cold_by_pc: Dict[int, int] = field(default_factory=dict)


@dataclass
class ApplicationProfile:
    """Micro-architecture independent profile of one application."""

    name: str
    num_instructions: int
    sampling: SamplingConfig
    mix: UopMix
    chains: DependenceChains
    branch_entropy: BranchEntropyProfile
    reuse: ReuseProfile
    instruction_reuse: ReuseProfile
    cold: ColdMissProfile
    micro_traces: List[MicroTraceProfile] = field(default_factory=list)
    _statstack: Optional[StatStack] = None
    _instruction_statstack: Optional[StatStack] = None

    @property
    def sample_fraction(self) -> float:
        """Fraction of instructions inside micro-traces."""
        if self.num_instructions == 0:
            return 1.0
        profiled = sum(mt.length for mt in self.micro_traces)
        return profiled / self.num_instructions

    def statstack(self) -> StatStack:
        """The (cached) data-stream StatStack model."""
        if self._statstack is None:
            self._statstack = StatStack(self.reuse)
        return self._statstack

    def instruction_statstack(self) -> StatStack:
        """The (cached) instruction-stream StatStack model."""
        if self._instruction_statstack is None:
            self._instruction_statstack = StatStack(self.instruction_reuse)
        return self._instruction_statstack


def _empty_window_local() -> Dict[str, object]:
    """A fresh per-window attribution record (scalar-pass layout)."""
    return {"load": {}, "store": {}, "cold_loads": 0, "cold_stores": 0,
            "load_pc": {}, "cold_pc": {}}


def _global_reuse_pass(
    columns: TraceColumns,
    sampling: SamplingConfig,
    line_size: int,
) -> Tuple[ReuseProfile, Dict[int, MicroTraceProfile]]:
    """Vectorized global data-reuse pass over the columnar trace.

    Semantics are those of :func:`_global_reuse_pass_scalar` (distances
    against full-stream history; recorded reuses/colds closing inside a
    micro-trace also land in that window's local histograms).  The
    histogram collection itself delegates to the shared vectorized core
    (:func:`~repro.statstack.reuse.reuse_sweep_into`, also behind
    ``collect_reuse_profile``) with draws taken from
    ``random.Random(sampling.reuse_seed)`` -- the same underlying draw
    sequence as the scalar loop, bitwise.  Only the sparse
    recorded-in-micro-trace subset (a few percent of accesses) is
    walked in Python to build the per-window attribution dicts in
    stream order.
    """
    profile = ReuseProfile(line_size=line_size)
    window_length = sampling.window_length
    micro_length = sampling.micro_trace_length

    positions = np.nonzero(columns.is_mem)[0]
    is_write = columns.is_store[positions]
    swept = reuse_sweep_into(
        profile,
        columns.addr[positions],
        is_write,
        sampling.reuse_sample_rate,
        random.Random(sampling.reuse_seed),
    )
    if swept is None:
        return profile, {}
    recorded, cold, distance = swept

    # -- attribute recorded accesses closing inside micro-traces --------
    attributed = recorded & ((positions % window_length) < micro_length)
    per_window: Dict[int, Dict[str, object]] = {}
    if np.any(attributed):
        events = zip(
            (positions[attributed] // window_length).tolist(),
            columns.pc[positions[attributed]].tolist(),
            is_write[attributed].tolist(),
            cold[attributed].tolist(),
            distance[attributed].tolist(),
        )
        for window_id, pc, event_write, event_cold, d in events:
            local = per_window.get(window_id)
            if local is None:
                local = _empty_window_local()
                per_window[window_id] = local
            if event_cold:
                if event_write:
                    local["cold_stores"] += 1
                else:
                    local["cold_loads"] += 1
                    local["cold_pc"][pc] = (
                        local["cold_pc"].get(pc, 0) + 1
                    )
            else:
                bucket = local["store" if event_write else "load"]
                bucket[d] = bucket.get(d, 0) + 1
                if not event_write:
                    pc_bucket = local["load_pc"].setdefault(pc, {})
                    pc_bucket[d] = pc_bucket.get(d, 0) + 1

    micro_profiles: Dict[int, MicroTraceProfile] = {}
    for window_id, local in per_window.items():
        micro_profiles[window_id] = MicroTraceProfile(
            start=window_id * window_length,
            length=0,
            mix=UopMix(),
            chains=DependenceChains(),
            memory=MicroTraceMemoryProfile(),
            load_reuse=local["load"],
            store_reuse=local["store"],
            cold_loads=local["cold_loads"],
            cold_stores=local["cold_stores"],
            load_reuse_by_pc=local["load_pc"],
            cold_by_pc=local["cold_pc"],
        )
    return profile, micro_profiles


def _global_reuse_pass_scalar(
    instructions: Sequence[Instruction],
    sampling: SamplingConfig,
    line_size: int,
) -> Tuple[ReuseProfile, Dict[int, MicroTraceProfile]]:
    """Scalar reference of the global reuse pass (kept verbatim).

    Distances are measured over the *full* access stream (so micro-trace
    accesses see cross-window history, as StatStack's burst sampling
    does); each recorded reuse/cold access whose closing access falls in a
    micro-trace is also added to that micro-trace's local histograms.

    When ``sampling.reuse_sample_rate < 1`` only a seeded-random subset
    of accesses is recorded (``sampling.reuse_seed`` makes the subset
    reproducible); distances stay exact because the per-line last-access
    index is updated for every access.
    """
    profile = ReuseProfile(line_size=line_size)
    per_window: Dict[int, Dict[str, object]] = {}
    last_access: Dict[int, int] = {}
    access_index = 0
    window_length = sampling.window_length
    micro_length = sampling.micro_trace_length
    record_all = sampling.reuse_sample_rate >= 1.0
    rng = random.Random(sampling.reuse_seed)

    for position, instr in enumerate(instructions):
        if not instr.is_mem:
            continue
        is_write = instr.is_store
        if is_write:
            profile.store_accesses += 1
        else:
            profile.load_accesses += 1
        line = instr.addr // line_size
        previous = last_access.get(line)
        if not (record_all or rng.random() < sampling.reuse_sample_rate):
            last_access[line] = access_index
            access_index += 1
            continue

        in_micro = position % window_length < micro_length
        window_id = position // window_length
        local = None
        if in_micro:
            local = per_window.setdefault(
                window_id, _empty_window_local()
            )

        profile.sampled_accesses += 1
        if previous is None:
            if is_write:
                profile.cold_stores += 1
                if local is not None:
                    local["cold_stores"] += 1
            else:
                profile.cold_loads += 1
                if local is not None:
                    local["cold_loads"] += 1
                    local["cold_pc"][instr.pc] = (
                        local["cold_pc"].get(instr.pc, 0) + 1
                    )
        else:
            distance = access_index - previous - 1
            profile.histogram[distance] = (
                profile.histogram.get(distance, 0) + 1
            )
            typed = (
                profile.store_histogram if is_write else profile.load_histogram
            )
            typed[distance] = typed.get(distance, 0) + 1
            if local is not None:
                bucket = local["store" if is_write else "load"]
                bucket[distance] = bucket.get(distance, 0) + 1
                if not is_write:
                    pc_bucket = local["load_pc"].setdefault(instr.pc, {})
                    pc_bucket[distance] = pc_bucket.get(distance, 0) + 1
        last_access[line] = access_index
        access_index += 1

    micro_profiles: Dict[int, MicroTraceProfile] = {}
    for window_id, local in per_window.items():
        micro_profiles[window_id] = MicroTraceProfile(
            start=window_id * window_length,
            length=0,
            mix=UopMix(),
            chains=DependenceChains(),
            memory=MicroTraceMemoryProfile(),
            load_reuse=local["load"],
            store_reuse=local["store"],
            cold_loads=local["cold_loads"],
            cold_stores=local["cold_stores"],
            load_reuse_by_pc=local["load_pc"],
            cold_by_pc=local["cold_pc"],
        )
    return profile, micro_profiles


def _instruction_reuse_pass(
    columns: TraceColumns, line_size: int
) -> ReuseProfile:
    """Vectorized reuse profile over the instruction-fetch stream.

    Every fetch is an (unsampled) load access to its PC's cache line,
    so this is the shared reuse sweep over the PC column with an
    all-loads type vector and no sampling.  Bitwise identical to
    :func:`_instruction_reuse_pass_scalar`.
    """
    profile = ReuseProfile(line_size=line_size)
    reuse_sweep_into(
        profile,
        columns.pc,
        np.zeros(len(columns), dtype=bool),
        1.0,
        None,
    )
    return profile


def _instruction_reuse_pass_scalar(
    instructions: Sequence[Instruction], line_size: int
) -> ReuseProfile:
    """Scalar reference: reuse over the instruction-fetch address stream."""
    profile = ReuseProfile(line_size=line_size)
    last_access: Dict[int, int] = {}
    for index, instr in enumerate(instructions):
        profile.load_accesses += 1
        profile.sampled_accesses += 1
        line = instr.pc // line_size
        previous = last_access.get(line)
        if previous is None:
            profile.cold_loads += 1
        else:
            distance = index - previous - 1
            profile.histogram[distance] = (
                profile.histogram.get(distance, 0) + 1
            )
            profile.load_histogram[distance] = (
                profile.load_histogram.get(distance, 0) + 1
            )
        last_access[line] = index
    return profile


def profile_application(
    trace: Trace,
    sampling: Optional[SamplingConfig] = None,
    rob_grid: Sequence[int] = DEFAULT_ROB_GRID,
    line_size: int = 64,
    entropy_history_lengths: Sequence[int] = (4, 8, 12),
    backend: str = "columns",
) -> ApplicationProfile:
    """Profile one application trace (the AIP's single profiling run).

    ``backend`` selects ``"columns"`` (vectorized, default) or
    ``"scalar"`` (the retained per-``Instruction`` reference).  The two
    produce bitwise-identical profiles; the scalar path exists for
    property testing and the profiler speedup benchmark.  Unknown
    backend names raise ``ValueError`` before any work happens.
    """
    validate_backend(backend, PROFILE_BACKENDS, "profiling")
    sampling = sampling or SamplingConfig()
    if backend == "scalar":
        return _profile_application_scalar(
            trace, sampling, rob_grid, line_size, entropy_history_lengths
        )

    columns = TraceColumns.ensure(trace)
    total = len(columns)

    reuse, micro_by_window = _global_reuse_pass(
        columns, sampling, line_size
    )
    instruction_reuse = _instruction_reuse_pass(columns, line_size)
    cold = profile_cold_misses((), columns=columns)
    branch_entropy = profile_branch_entropy(
        (), entropy_history_lengths, columns=columns
    )

    micro_traces: List[MicroTraceProfile] = []
    all_chains: List[DependenceChains] = []
    weights: List[float] = []
    global_mix = UopMix()

    for start, end in iter_micro_spans(total, sampling):
        micro_columns = columns[start:end]
        window_id = start // sampling.window_length
        mix = profile_mix((), columns=micro_columns)
        chains = profile_dependence_chains(
            (), grid=rob_grid, columns=micro_columns
        )
        memory = profile_micro_trace_memory(
            (), line_size=line_size, columns=micro_columns
        )

        micro_profile = micro_by_window.get(window_id)
        if micro_profile is None:
            micro_profile = MicroTraceProfile(
                start=start,
                length=end - start,
                mix=mix,
                chains=chains,
                memory=memory,
            )
        else:
            micro_profile.start = start
            micro_profile.length = end - start
            micro_profile.mix = mix
            micro_profile.chains = chains
            micro_profile.memory = memory
        micro_traces.append(micro_profile)
        global_mix.merge(mix)
        all_chains.append(chains)
        weights.append(end - start)

    micro_traces.sort(key=lambda mt: mt.start)
    aggregate_chains = DependenceChains(grid=tuple(rob_grid))
    aggregate_chains.merge_weighted(all_chains, weights)

    return ApplicationProfile(
        name=trace.name,
        num_instructions=total,
        sampling=sampling,
        mix=global_mix,
        chains=aggregate_chains,
        branch_entropy=branch_entropy,
        reuse=reuse,
        instruction_reuse=instruction_reuse,
        cold=cold,
        micro_traces=micro_traces,
    )


def _profile_application_scalar(
    trace: Trace,
    sampling: SamplingConfig,
    rob_grid: Sequence[int] = DEFAULT_ROB_GRID,
    line_size: int = 64,
    entropy_history_lengths: Sequence[int] = (4, 8, 12),
) -> ApplicationProfile:
    """Scalar reference profiling run (the pre-columnar implementation).

    Retained verbatim: this is the ground truth the vectorized backend
    is property-tested against, and the baseline
    ``benchmarks/bench_profiler.py`` measures its speedup over.
    """
    instructions = trace.instructions

    reuse, micro_by_window = _global_reuse_pass_scalar(
        instructions, sampling, line_size
    )
    instruction_reuse = _instruction_reuse_pass_scalar(
        instructions, line_size
    )
    cold = _profile_cold_misses_scalar(instructions)
    branch_entropy = profile_branch_entropy(
        instructions, entropy_history_lengths
    )

    micro_traces: List[MicroTraceProfile] = []
    all_chains: List[DependenceChains] = []
    weights: List[float] = []
    global_mix = UopMix()

    for start, micro in iter_micro_traces(instructions, sampling):
        window_id = start // sampling.window_length
        mix = profile_mix(micro)
        chains = profile_dependence_chains(micro, grid=rob_grid)
        memory = _profile_micro_trace_memory_scalar(
            micro, line_size=line_size
        )

        micro_profile = micro_by_window.get(window_id)
        if micro_profile is None:
            micro_profile = MicroTraceProfile(
                start=start,
                length=len(micro),
                mix=mix,
                chains=chains,
                memory=memory,
            )
        else:
            micro_profile.start = start
            micro_profile.length = len(micro)
            micro_profile.mix = mix
            micro_profile.chains = chains
            micro_profile.memory = memory
        micro_traces.append(micro_profile)
        global_mix.merge(mix)
        all_chains.append(chains)
        weights.append(len(micro))

    micro_traces.sort(key=lambda mt: mt.start)
    aggregate_chains = DependenceChains(grid=tuple(rob_grid))
    aggregate_chains.merge_weighted(all_chains, weights)

    return ApplicationProfile(
        name=trace.name,
        num_instructions=len(instructions),
        sampling=sampling,
        mix=global_mix,
        chains=aggregate_chains,
        branch_entropy=branch_entropy,
        reuse=reuse,
        instruction_reuse=instruction_reuse,
        cold=cold,
        micro_traces=micro_traces,
    )
