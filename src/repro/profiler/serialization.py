"""Profile serialization: save/load ApplicationProfiles as JSON.

The paper's AIP tool persists profiles (protobuf) so the one-time
profiling cost is paid literally once -- later design-space studies load
the profile from disk.  This module provides the same workflow with JSON
(the offline-friendly substitute): ``save_profile`` / ``load_profile``
round-trip every statistic the model consumes.

It also provides the content-addressed :class:`ProfileStore` the sweep
engine uses: profiles are keyed by a SHA-256 fingerprint of their
canonical JSON form, and expensive derived state (the StatStack
reuse -> stack distance tables) is memoized on disk next to each profile
so repeated sweeps skip the conversion entirely.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from collections import Counter
from typing import Any, Dict, IO, Optional, Union

from repro.faults import inject
from repro.faults.atomic import atomic_write
from repro.frontend.entropy import BranchEntropyProfile
from repro.profiler.dependences import ChainProfile, DependenceChains
from repro.profiler.memory import (
    ColdMissProfile,
    MicroTraceMemoryProfile,
    StaticLoadProfile,
)
from repro.profiler.mix import UopMix
from repro.profiler.profile import ApplicationProfile, MicroTraceProfile
from repro.profiler.sampling import SamplingConfig
from repro.statstack.reuse import ReuseProfile
from repro.isa import UopKind

FORMAT_VERSION = 1

logger = logging.getLogger(__name__)


def _int_key_dict(mapping: Dict) -> Dict[str, Any]:
    return {str(key): value for key, value in mapping.items()}


def _parse_int_keys(mapping: Dict[str, Any]) -> Dict[int, Any]:
    return {int(key): value for key, value in mapping.items()}


def _mix_to_dict(mix: UopMix) -> Dict[str, Any]:
    return {
        "counts": {kind.name: count for kind, count in mix.counts.items()},
        "num_instructions": mix.num_instructions,
        "num_uops": mix.num_uops,
    }


def _mix_from_dict(data: Dict[str, Any]) -> UopMix:
    mix = UopMix()
    mix.counts = {
        UopKind[name]: count for name, count in data["counts"].items()
    }
    mix.num_instructions = data["num_instructions"]
    mix.num_uops = data["num_uops"]
    return mix


def _chains_to_dict(chains: DependenceChains) -> Dict[str, Any]:
    return {
        "ap": _int_key_dict(chains.ap.values),
        "abp": _int_key_dict(chains.abp.values),
        "cp": _int_key_dict(chains.cp.values),
        "grid": list(chains.grid),
    }


def _chains_from_dict(data: Dict[str, Any]) -> DependenceChains:
    chains = DependenceChains(grid=tuple(data["grid"]))
    chains.ap = ChainProfile(values=_parse_int_keys(data["ap"]))
    chains.abp = ChainProfile(values=_parse_int_keys(data["abp"]))
    chains.cp = ChainProfile(values=_parse_int_keys(data["cp"]))
    return chains


def _reuse_to_dict(profile: ReuseProfile) -> Dict[str, Any]:
    return {
        "histogram": _int_key_dict(profile.histogram),
        "load_histogram": _int_key_dict(profile.load_histogram),
        "store_histogram": _int_key_dict(profile.store_histogram),
        "cold_loads": profile.cold_loads,
        "cold_stores": profile.cold_stores,
        "load_accesses": profile.load_accesses,
        "store_accesses": profile.store_accesses,
        "sampled_accesses": profile.sampled_accesses,
        "line_size": profile.line_size,
    }


def _reuse_from_dict(data: Dict[str, Any]) -> ReuseProfile:
    return ReuseProfile(
        histogram=_parse_int_keys(data["histogram"]),
        load_histogram=_parse_int_keys(data["load_histogram"]),
        store_histogram=_parse_int_keys(data["store_histogram"]),
        cold_loads=data["cold_loads"],
        cold_stores=data["cold_stores"],
        load_accesses=data["load_accesses"],
        store_accesses=data["store_accesses"],
        sampled_accesses=data["sampled_accesses"],
        line_size=data["line_size"],
    )


def _cold_to_dict(cold: ColdMissProfile) -> Dict[str, Any]:
    return {
        "per_window": [
            [line, rob, value]
            for (line, rob), value in cold.per_window.items()
        ],
        "window_fraction": [
            [line, rob, value]
            for (line, rob), value in cold.window_fraction.items()
        ],
        "total": _int_key_dict(cold.total),
        "num_instructions": cold.num_instructions,
    }


def _cold_from_dict(data: Dict[str, Any]) -> ColdMissProfile:
    cold = ColdMissProfile(num_instructions=data["num_instructions"])
    cold.per_window = {
        (line, rob): value for line, rob, value in data["per_window"]
    }
    cold.window_fraction = {
        (line, rob): value for line, rob, value in data["window_fraction"]
    }
    cold.total = _parse_int_keys(data["total"])
    return cold


def _static_load_to_dict(load: StaticLoadProfile) -> Dict[str, Any]:
    return {
        "pc": load.pc,
        "first_position": load.first_position,
        "positions": load.positions,
        "strides": _int_key_dict(load.strides),
        "local_reuse": load.local_reuse,
        "dst": load.dst,
        "depth_sum": load.depth_sum,
    }


def _static_load_from_dict(data: Dict[str, Any]) -> StaticLoadProfile:
    load = StaticLoadProfile(
        pc=data["pc"],
        first_position=data["first_position"],
        dst=data["dst"],
        depth_sum=data["depth_sum"],
    )
    load.positions = list(data["positions"])
    load.strides = Counter(_parse_int_keys(data["strides"]))
    load.local_reuse = list(data["local_reuse"])
    return load


def _memory_to_dict(memory: MicroTraceMemoryProfile) -> Dict[str, Any]:
    return {
        "static_loads": {
            str(pc): _static_load_to_dict(load)
            for pc, load in memory.static_loads.items()
        },
        "load_dependence": _int_key_dict(memory.load_dependence),
        "load_positions": memory.load_positions,
        "store_positions": memory.store_positions,
        "length": memory.length,
    }


def _memory_from_dict(data: Dict[str, Any]) -> MicroTraceMemoryProfile:
    memory = MicroTraceMemoryProfile(length=data["length"])
    memory.static_loads = {
        int(pc): _static_load_from_dict(load)
        for pc, load in data["static_loads"].items()
    }
    memory.load_dependence = Counter(
        _parse_int_keys(data["load_dependence"])
    )
    memory.load_positions = list(data["load_positions"])
    memory.store_positions = list(data["store_positions"])
    return memory


def _micro_to_dict(micro: MicroTraceProfile) -> Dict[str, Any]:
    return {
        "start": micro.start,
        "length": micro.length,
        "mix": _mix_to_dict(micro.mix),
        "chains": _chains_to_dict(micro.chains),
        "memory": _memory_to_dict(micro.memory),
        "load_reuse": _int_key_dict(micro.load_reuse),
        "store_reuse": _int_key_dict(micro.store_reuse),
        "cold_loads": micro.cold_loads,
        "cold_stores": micro.cold_stores,
        "load_reuse_by_pc": {
            str(pc): _int_key_dict(hist)
            for pc, hist in micro.load_reuse_by_pc.items()
        },
        "cold_by_pc": _int_key_dict(micro.cold_by_pc),
    }


def _micro_from_dict(data: Dict[str, Any]) -> MicroTraceProfile:
    return MicroTraceProfile(
        start=data["start"],
        length=data["length"],
        mix=_mix_from_dict(data["mix"]),
        chains=_chains_from_dict(data["chains"]),
        memory=_memory_from_dict(data["memory"]),
        load_reuse=_parse_int_keys(data["load_reuse"]),
        store_reuse=_parse_int_keys(data["store_reuse"]),
        cold_loads=data["cold_loads"],
        cold_stores=data["cold_stores"],
        load_reuse_by_pc={
            int(pc): _parse_int_keys(hist)
            for pc, hist in data["load_reuse_by_pc"].items()
        },
        cold_by_pc=_parse_int_keys(data["cold_by_pc"]),
    )


def profile_to_dict(profile: ApplicationProfile) -> Dict[str, Any]:
    """Serialize an application profile to JSON-compatible structures."""
    return {
        "format_version": FORMAT_VERSION,
        "name": profile.name,
        "num_instructions": profile.num_instructions,
        "sampling": {
            "micro_trace_length": profile.sampling.micro_trace_length,
            "window_length": profile.sampling.window_length,
            "reuse_sample_rate": profile.sampling.reuse_sample_rate,
            "reuse_seed": profile.sampling.reuse_seed,
        },
        "mix": _mix_to_dict(profile.mix),
        "chains": _chains_to_dict(profile.chains),
        "branch_entropy": {
            "entropy": _int_key_dict(profile.branch_entropy.entropy),
            "num_branches": profile.branch_entropy.num_branches,
        },
        "reuse": _reuse_to_dict(profile.reuse),
        "instruction_reuse": _reuse_to_dict(profile.instruction_reuse),
        "cold": _cold_to_dict(profile.cold),
        "micro_traces": [
            _micro_to_dict(micro) for micro in profile.micro_traces
        ],
    }


def profile_from_dict(data: Dict[str, Any]) -> ApplicationProfile:
    """Reconstruct an application profile from its serialized form."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported profile format version {version!r}"
        )
    entropy = BranchEntropyProfile(
        entropy=_parse_int_keys(data["branch_entropy"]["entropy"]),
        num_branches=data["branch_entropy"]["num_branches"],
    )
    return ApplicationProfile(
        name=data["name"],
        num_instructions=data["num_instructions"],
        sampling=SamplingConfig(
            micro_trace_length=data["sampling"]["micro_trace_length"],
            window_length=data["sampling"]["window_length"],
            reuse_sample_rate=data["sampling"].get(
                "reuse_sample_rate", 1.0
            ),
            reuse_seed=data["sampling"].get("reuse_seed", 0),
        ),
        mix=_mix_from_dict(data["mix"]),
        chains=_chains_from_dict(data["chains"]),
        branch_entropy=entropy,
        reuse=_reuse_from_dict(data["reuse"]),
        instruction_reuse=_reuse_from_dict(data["instruction_reuse"]),
        cold=_cold_from_dict(data["cold"]),
        micro_traces=[
            _micro_from_dict(micro) for micro in data["micro_traces"]
        ],
    )


def save_profile(profile: ApplicationProfile,
                 file: Union[str, IO[str]]) -> None:
    """Write a profile to a JSON file (path or open handle)."""
    data = profile_to_dict(profile)
    if isinstance(file, str):
        with open(file, "w") as handle:
            json.dump(data, handle)
    else:
        json.dump(data, file)


def load_profile(file: Union[str, IO[str]]) -> ApplicationProfile:
    """Read a profile back from a JSON file (path or open handle)."""
    if isinstance(file, str):
        with open(file) as handle:
            data = json.load(handle)
    else:
        data = json.load(file)
    return profile_from_dict(data)


# ----------------------------------------------------------------------
# Content-addressed profile store
# ----------------------------------------------------------------------


def canonical_fingerprint(data: Any) -> str:
    """SHA-256 over the canonical JSON form of ``data``.

    The canonical form sorts keys and strips whitespace, so two
    structures with identical content hash identically regardless of
    construction order.  This is the one content-addressing primitive
    shared by every on-disk store in the project: the
    :class:`ProfileStore` here, and the experiment-level
    :class:`~repro.api.runstore.RunStore` /
    :class:`~repro.api.spec.ExperimentSpec` fingerprints.

    Parameters
    ----------
    data:
        Any JSON-serializable structure.

    Returns
    -------
    str
        A 64-character lowercase hex digest.
    """
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def profile_fingerprint(profile: ApplicationProfile) -> str:
    """Content hash of a profile (SHA-256 over its canonical JSON form).

    Two profiles with identical statistics hash identically regardless of
    in-memory object identity, which makes the hash a safe cache key: any
    change to the profiled data (or to the serialization format) changes
    the key and invalidates stale cache entries automatically.

    Parameters
    ----------
    profile:
        The profile to fingerprint.

    Returns
    -------
    str
        A 64-character lowercase hex digest.
    """
    return canonical_fingerprint(profile_to_dict(profile))


class ProfileStore:
    """On-disk, content-addressed store of profiles and derived state.

    Layout: ``<root>/<fingerprint>.profile.json`` holds the profile
    itself and ``<root>/<fingerprint>.tables.json`` the memoized
    StatStack stack-distance tables (data and instruction streams).
    Storing by content hash means ``put`` is idempotent and a profile
    re-collected bit-identically hits the same cache entry.

    Parameters
    ----------
    root:
        Directory for the store; created on first use.

    Accounting: :attr:`tables_hits` / :attr:`tables_misses` /
    :attr:`tables_corrupt` / :attr:`tables_quarantined` and
    :attr:`profiles_stored` count store traffic unconditionally (plain
    integer adds), and :meth:`flush_metrics` publishes the deltas since
    the previous flush under ``profile_store.*`` metric names.  Corrupt
    table files additionally emit a ``logging`` warning (logger
    ``repro.profiler.serialization``), are renamed to a ``.corrupt``
    sidecar, and are then treated as misses.  All writes are atomic
    (temp file + rename), so a crash mid-write never leaves a
    half-written profile or table entry.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        #: Lifetime StatStack-table loads served from disk.
        self.tables_hits = 0
        #: Lifetime StatStack-table loads that had to recompute.
        self.tables_misses = 0
        #: Lifetime table files that existed but failed to parse.
        self.tables_corrupt = 0
        #: Lifetime corrupt table files moved to ``.corrupt`` sidecars.
        self.tables_quarantined = 0
        #: Lifetime profile writes that created a new store entry.
        self.profiles_stored = 0
        self._flushed = {"tables_hits": 0, "tables_misses": 0,
                         "tables_corrupt": 0, "tables_quarantined": 0,
                         "profiles_stored": 0}
        # Lifetime table-write ordinal: part of the fault-injection key
        # so a recomputed entry draws a fresh corruption decision.
        self._table_writes = 0

    # -- paths ----------------------------------------------------------

    def profile_path(self, key: str) -> str:
        """Path of the stored profile JSON for ``key``."""
        return os.path.join(self.root, f"{key}.profile.json")

    def tables_path(self, key: str) -> str:
        """Path of the memoized StatStack tables for ``key``."""
        return os.path.join(self.root, f"{key}.tables.json")

    # -- profiles -------------------------------------------------------

    def put(self, profile: ApplicationProfile) -> str:
        """Store a profile (idempotent) and return its fingerprint key."""
        key = profile_fingerprint(profile)
        path = self.profile_path(key)
        if not os.path.exists(path):
            with atomic_write(path) as handle:
                save_profile(profile, handle)
            self.profiles_stored += 1
        return key

    def get(self, key: str) -> ApplicationProfile:
        """Load a stored profile by key (raises ``FileNotFoundError``)."""
        return load_profile(self.profile_path(key))

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.profile_path(key))

    # -- derived state --------------------------------------------------

    def load_tables(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached StatStack tables for ``key``, or ``None``.

        A table file that exists but cannot be read or parsed counts
        as :attr:`tables_corrupt`, logs a warning, and is quarantined
        to a ``.corrupt`` sidecar so it stops shadowing the slot (the
        caller recomputes and the rewrite lands cleanly); a genuinely
        absent file is a silent plain miss.
        """
        path = self.tables_path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError) as exc:
            self.tables_corrupt += 1
            try:
                os.replace(path, path + ".corrupt")
                self.tables_quarantined += 1
            except OSError:
                pass
            logger.warning(
                "corrupt StatStack table entry %s (%s); quarantined, "
                "recomputing",
                path, exc,
            )
            return None

    def save_tables(self, key: str, tables: Dict[str, Any]) -> None:
        """Persist StatStack tables for ``key`` (overwrites, atomic)."""
        path = self.tables_path(key)
        self._table_writes += 1
        with atomic_write(path) as handle:
            json.dump(tables, handle)
        inject.store_site(path, f"tables:{key}:{self._table_writes}")

    def warm(self, profile: ApplicationProfile) -> str:
        """Attach cached StatStack models to ``profile`` (or build+cache).

        On a cache hit the profile's data- and instruction-stream
        StatStack models are rebuilt from the stored tables, skipping the
        reuse -> stack distance conversion; on a miss they are computed
        once and the tables persisted for the next run.  Either way the
        profile ends up with both models materialized in memory.

        Returns
        -------
        str
            The profile's fingerprint key.
        """
        from repro.statstack.model import StatStack

        key = self.put(profile)
        cached = self.load_tables(key)
        if cached is not None:
            self.tables_hits += 1
            profile._statstack = StatStack.from_tables(
                profile.reuse, cached.get("data", {})
            )
            profile._instruction_statstack = StatStack.from_tables(
                profile.instruction_reuse, cached.get("instruction", {})
            )
        else:
            self.tables_misses += 1
            self.save_tables(key, {
                "data": profile.statstack().export_tables(),
                "instruction":
                    profile.instruction_statstack().export_tables(),
            })
        return key

    def flush_metrics(self, metrics) -> None:
        """Publish store counters accumulated since the last flush.

        Increments ``profile_store.tables_hits`` /
        ``profile_store.tables_misses`` / ``profile_store.tables_corrupt``
        / ``profile_store.tables_quarantined`` /
        ``profile_store.profiles_stored`` on ``metrics`` by the deltas
        since the previous flush (repeated flushing never
        double-counts).  Flushing into a disabled registry is a no-op
        that keeps the deltas pending.
        """
        if not metrics.enabled:
            return
        for attr in ("tables_hits", "tables_misses", "tables_corrupt",
                     "tables_quarantined", "profiles_stored"):
            value = getattr(self, attr)
            delta = value - self._flushed[attr]
            if delta:
                metrics.inc(f"profile_store.{attr}", delta)
                self._flushed[attr] = value
