"""Dependence chain profiling: AP, ABP and CP (thesis §3.3, Alg 3.1).

For a window (reorder buffer) of instructions, the chain length of an
instruction is the number of instructions on the longest producer chain
leading up to and including it (an instruction with no in-window producers
has length 1).  Three statistics summarize a window:

* **AP** (average path): mean chain length over all instructions;
* **ABP** (average branch path): mean chain length over branches only;
* **CP** (critical path): the maximum chain length.

Two implementations are provided:

* :func:`chain_lengths_exact` slides the window one instruction at a time
  (Algorithm 3.1 verbatim, O(N*B)); used for validation and small inputs.
* :func:`chain_lengths_stepped` steps the window (non-overlapping), O(N);
  the production profiler uses this, trading the thesis' sliding window
  for speed the same way its stride-MLP model does (§4.5: "sliding versus
  stepping ... gave similar results").

Chain lengths are profiled over a grid of window sizes and interpolated to
arbitrary ROB sizes with the thesis' logarithmic fit (§5.2, Eq 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa import Instruction

#: Default grid of profiled window sizes (thesis: 16..256 step 16).
DEFAULT_ROB_GRID: Tuple[int, ...] = tuple(range(16, 257, 16))


def _window_depths(window: Sequence[Instruction]) -> List[int]:
    """Chain length for each instruction of one window (register deps)."""
    depths: List[int] = []
    last_writer: Dict[int, int] = {}
    for position, instr in enumerate(window):
        depth = 0
        for src in (instr.src1, instr.src2):
            if src >= 0:
                producer = last_writer.get(src)
                if producer is not None:
                    depth = max(depth, depths[producer])
        depths.append(depth + 1)
        if instr.dst >= 0:
            last_writer[instr.dst] = position
    return depths


@dataclass
class ChainStats:
    """AP/ABP/CP for one window size."""

    ap: float
    abp: float
    cp: float


def chain_lengths_exact(
    instructions: Sequence[Instruction], window_size: int
) -> ChainStats:
    """Algorithm 3.1: slide a window one instruction at a time.

    Windows are every contiguous span of ``window_size`` instructions (the
    thesis' buffer after it first fills).  ABP averages only over windows
    containing at least one branch.
    """
    n = len(instructions)
    if n == 0:
        return ChainStats(0.0, 0.0, 0.0)
    size = min(window_size, n)
    ap_sum = 0.0
    abp_sum = 0.0
    cp_sum = 0.0
    windows = 0
    branch_windows = 0
    for start in range(0, n - size + 1):
        window = instructions[start:start + size]
        depths = _window_depths(window)
        ap_sum += sum(depths) / size
        branch_depths = [
            depth for depth, instr in zip(depths, window) if instr.is_branch
        ]
        if branch_depths:
            abp_sum += sum(branch_depths) / len(branch_depths)
            branch_windows += 1
        cp_sum += max(depths)
        windows += 1
    return ChainStats(
        ap=ap_sum / windows,
        abp=abp_sum / branch_windows if branch_windows else 0.0,
        cp=cp_sum / windows,
    )


def chain_lengths_stepped(
    instructions: Sequence[Instruction], window_size: int
) -> ChainStats:
    """Stepped-window variant: O(N) per window size."""
    n = len(instructions)
    if n == 0:
        return ChainStats(0.0, 0.0, 0.0)
    ap_sum = 0.0
    abp_sum = 0.0
    cp_sum = 0.0
    windows = 0
    branch_windows = 0
    for start in range(0, n, window_size):
        window = instructions[start:start + window_size]
        if len(window) < max(2, window_size // 4) and windows > 0:
            break  # skip a tiny ragged tail; it skews the averages
        depths = _window_depths(window)
        ap_sum += sum(depths) / len(window)
        branch_depths = [
            depth for depth, instr in zip(depths, window) if instr.is_branch
        ]
        if branch_depths:
            abp_sum += sum(branch_depths) / len(branch_depths)
            branch_windows += 1
        cp_sum += max(depths)
        windows += 1
    return ChainStats(
        ap=ap_sum / windows,
        abp=abp_sum / branch_windows if branch_windows else 0.0,
        cp=cp_sum / windows,
    )


@dataclass
class ChainProfile:
    """One chain statistic over the profiled window-size grid.

    ``at(rob)`` interpolates between profiled sizes with the logarithmic
    fit of thesis Eq 5.2 (``length = a + b * log(ROB)``), fitted segment
    by segment as the thesis does (§5.2: per-pair fits beat a global fit).
    """

    values: Dict[int, float] = field(default_factory=dict)

    def at(self, rob: int) -> float:
        if not self.values:
            return 1.0
        sizes = sorted(self.values)
        if rob in self.values:
            return self.values[rob]
        if rob <= sizes[0]:
            low, high = sizes[0], sizes[1] if len(sizes) > 1 else sizes[0]
        elif rob >= sizes[-1]:
            low = sizes[-2] if len(sizes) > 1 else sizes[-1]
            high = sizes[-1]
        else:
            high = min(s for s in sizes if s > rob)
            low = max(s for s in sizes if s < rob)
        if low == high:
            return self.values[low]
        v_low, v_high = self.values[low], self.values[high]
        b = (v_high - v_low) / (math.log(high) - math.log(low))
        a = v_low - b * math.log(low)
        value = a + b * math.log(max(rob, 1))
        return max(value, 0.0)


@dataclass
class DependenceChains:
    """AP/ABP/CP chain profiles over the window grid."""

    ap: ChainProfile = field(default_factory=ChainProfile)
    abp: ChainProfile = field(default_factory=ChainProfile)
    cp: ChainProfile = field(default_factory=ChainProfile)
    grid: Tuple[int, ...] = DEFAULT_ROB_GRID

    def merge_weighted(
        self, others: Sequence["DependenceChains"], weights: Sequence[float]
    ) -> None:
        """Set this profile to the weighted mean of ``others``."""
        total = sum(weights)
        if total == 0:
            return
        for attr in ("ap", "abp", "cp"):
            merged: Dict[int, float] = {}
            for other, weight in zip(others, weights):
                profile: ChainProfile = getattr(other, attr)
                for size, value in profile.values.items():
                    merged[size] = merged.get(size, 0.0) + weight * value
            getattr(self, attr).values = {
                size: value / total for size, value in merged.items()
            }


def profile_dependence_chains(
    instructions: Sequence[Instruction],
    grid: Sequence[int] = DEFAULT_ROB_GRID,
    exact: bool = False,
) -> DependenceChains:
    """Profile AP/ABP/CP over a window-size grid."""
    measure = chain_lengths_exact if exact else chain_lengths_stepped
    chains = DependenceChains(grid=tuple(grid))
    for size in grid:
        stats = measure(instructions, size)
        chains.ap.values[size] = stats.ap
        chains.abp.values[size] = stats.abp
        chains.cp.values[size] = stats.cp
    return chains
