"""Dependence chain profiling: AP, ABP and CP (thesis §3.3, Alg 3.1).

For a window (reorder buffer) of instructions, the chain length of an
instruction is the number of instructions on the longest producer chain
leading up to and including it (an instruction with no in-window producers
has length 1).  Three statistics summarize a window:

* **AP** (average path): mean chain length over all instructions;
* **ABP** (average branch path): mean chain length over branches only;
* **CP** (critical path): the maximum chain length.

Two implementations are provided:

* :func:`chain_lengths_exact` slides the window one instruction at a time
  (Algorithm 3.1 verbatim, O(N*B)); used for validation and small inputs.
* :func:`chain_lengths_stepped` steps the window (non-overlapping), O(N);
  the production profiler uses this, trading the thesis' sliding window
  for speed the same way its stride-MLP model does (§4.5: "sliding versus
  stepping ... gave similar results").

Chain lengths are profiled over a grid of window sizes and interpolated to
arbitrary ROB sizes with the thesis' logarithmic fit (§5.2, Eq 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa import Instruction
from repro.workloads.columns import TraceColumns

#: Default grid of profiled window sizes (thesis: 16..256 step 16).
DEFAULT_ROB_GRID: Tuple[int, ...] = tuple(range(16, 257, 16))


def _window_depths(window: Sequence[Instruction]) -> List[int]:
    """Chain length for each instruction of one window (register deps)."""
    depths: List[int] = []
    last_writer: Dict[int, int] = {}
    for position, instr in enumerate(window):
        depth = 0
        for src in (instr.src1, instr.src2):
            if src >= 0:
                producer = last_writer.get(src)
                if producer is not None:
                    depth = max(depth, depths[producer])
        depths.append(depth + 1)
        if instr.dst >= 0:
            last_writer[instr.dst] = position
    return depths


def _window_depths_arrays(
    src1: List[int],
    src2: List[int],
    dst: List[int],
    start: int,
    stop: int,
    num_regs: int,
) -> List[int]:
    """:func:`_window_depths` reading plain int arrays (same recurrence).

    The register-dataflow recurrence is inherently sequential, but
    reading pre-extracted columns instead of ``Instruction`` attributes
    removes the per-field property dispatch from the inner loop, and
    the per-register state stores the last writer's *chain length*
    directly (``0`` = no in-window producer; lengths are always >= 1)
    in a flat list, replacing a dictionary lookup plus list indexing.
    The computed lengths are identical.
    """
    depths: List[int] = []
    append = depths.append
    writer_length = [0] * num_regs
    for s1, s2, reg in zip(src1[start:stop], src2[start:stop],
                           dst[start:stop]):
        depth = 0
        if s1 >= 0:
            produced = writer_length[s1]
            if produced > depth:
                depth = produced
        if s2 >= 0:
            produced = writer_length[s2]
            if produced > depth:
                depth = produced
        depth += 1
        append(depth)
        if reg >= 0:
            writer_length[reg] = depth
    return depths


def _chain_lengths_stepped_arrays(
    src1: List[int],
    src2: List[int],
    dst: List[int],
    branch_positions: List[int],
    n: int,
    window_size: int,
    num_regs: int,
) -> "ChainStats":
    """Columnar :func:`chain_lengths_stepped` (bitwise-identical stats)."""
    if n == 0:
        return ChainStats(0.0, 0.0, 0.0)
    ap_sum = 0.0
    abp_sum = 0.0
    cp_sum = 0.0
    windows = 0
    branch_windows = 0
    num_branches = len(branch_positions)
    cursor = 0  # next unconsumed branch position (windows are ascending)
    for start in range(0, n, window_size):
        stop = min(start + window_size, n)
        length = stop - start
        if length < max(2, window_size // 4) and windows > 0:
            break  # skip a tiny ragged tail; it skews the averages
        depths = _window_depths_arrays(
            src1, src2, dst, start, stop, num_regs
        )
        ap_sum += sum(depths) / length
        branch_sum = 0
        branch_count = 0
        while (cursor < num_branches
               and branch_positions[cursor] < stop):
            branch_sum += depths[branch_positions[cursor] - start]
            branch_count += 1
            cursor += 1
        if branch_count:
            abp_sum += branch_sum / branch_count
            branch_windows += 1
        cp_sum += max(depths)
        windows += 1
    return ChainStats(
        ap=ap_sum / windows,
        abp=abp_sum / branch_windows if branch_windows else 0.0,
        cp=cp_sum / windows,
    )


@dataclass
class ChainStats:
    """AP/ABP/CP for one window size."""

    ap: float
    abp: float
    cp: float


def chain_lengths_exact(
    instructions: Sequence[Instruction], window_size: int
) -> ChainStats:
    """Algorithm 3.1: slide a window one instruction at a time.

    Windows are every contiguous span of ``window_size`` instructions (the
    thesis' buffer after it first fills).  ABP averages only over windows
    containing at least one branch.
    """
    n = len(instructions)
    if n == 0:
        return ChainStats(0.0, 0.0, 0.0)
    size = min(window_size, n)
    ap_sum = 0.0
    abp_sum = 0.0
    cp_sum = 0.0
    windows = 0
    branch_windows = 0
    for start in range(0, n - size + 1):
        window = instructions[start:start + size]
        depths = _window_depths(window)
        ap_sum += sum(depths) / size
        branch_depths = [
            depth for depth, instr in zip(depths, window) if instr.is_branch
        ]
        if branch_depths:
            abp_sum += sum(branch_depths) / len(branch_depths)
            branch_windows += 1
        cp_sum += max(depths)
        windows += 1
    return ChainStats(
        ap=ap_sum / windows,
        abp=abp_sum / branch_windows if branch_windows else 0.0,
        cp=cp_sum / windows,
    )


def chain_lengths_stepped(
    instructions: Sequence[Instruction], window_size: int
) -> ChainStats:
    """Stepped-window variant: O(N) per window size."""
    n = len(instructions)
    if n == 0:
        return ChainStats(0.0, 0.0, 0.0)
    ap_sum = 0.0
    abp_sum = 0.0
    cp_sum = 0.0
    windows = 0
    branch_windows = 0
    for start in range(0, n, window_size):
        window = instructions[start:start + window_size]
        if len(window) < max(2, window_size // 4) and windows > 0:
            break  # skip a tiny ragged tail; it skews the averages
        depths = _window_depths(window)
        ap_sum += sum(depths) / len(window)
        branch_depths = [
            depth for depth, instr in zip(depths, window) if instr.is_branch
        ]
        if branch_depths:
            abp_sum += sum(branch_depths) / len(branch_depths)
            branch_windows += 1
        cp_sum += max(depths)
        windows += 1
    return ChainStats(
        ap=ap_sum / windows,
        abp=abp_sum / branch_windows if branch_windows else 0.0,
        cp=cp_sum / windows,
    )


@dataclass
class ChainProfile:
    """One chain statistic over the profiled window-size grid.

    ``at(rob)`` interpolates between profiled sizes with the logarithmic
    fit of thesis Eq 5.2 (``length = a + b * log(ROB)``), fitted segment
    by segment as the thesis does (§5.2: per-pair fits beat a global fit).
    """

    values: Dict[int, float] = field(default_factory=dict)

    def at(self, rob: int) -> float:
        if not self.values:
            return 1.0
        sizes = sorted(self.values)
        if rob in self.values:
            return self.values[rob]
        if rob <= sizes[0]:
            low, high = sizes[0], sizes[1] if len(sizes) > 1 else sizes[0]
        elif rob >= sizes[-1]:
            low = sizes[-2] if len(sizes) > 1 else sizes[-1]
            high = sizes[-1]
        else:
            high = min(s for s in sizes if s > rob)
            low = max(s for s in sizes if s < rob)
        if low == high:
            return self.values[low]
        v_low, v_high = self.values[low], self.values[high]
        b = (v_high - v_low) / (math.log(high) - math.log(low))
        a = v_low - b * math.log(low)
        value = a + b * math.log(max(rob, 1))
        return max(value, 0.0)


@dataclass
class DependenceChains:
    """AP/ABP/CP chain profiles over the window grid."""

    ap: ChainProfile = field(default_factory=ChainProfile)
    abp: ChainProfile = field(default_factory=ChainProfile)
    cp: ChainProfile = field(default_factory=ChainProfile)
    grid: Tuple[int, ...] = DEFAULT_ROB_GRID

    def merge_weighted(
        self, others: Sequence["DependenceChains"], weights: Sequence[float]
    ) -> None:
        """Set this profile to the weighted mean of ``others``."""
        total = sum(weights)
        if total == 0:
            return
        for attr in ("ap", "abp", "cp"):
            merged: Dict[int, float] = {}
            for other, weight in zip(others, weights):
                profile: ChainProfile = getattr(other, attr)
                for size, value in profile.values.items():
                    merged[size] = merged.get(size, 0.0) + weight * value
            getattr(self, attr).values = {
                size: value / total for size, value in merged.items()
            }


def profile_dependence_chains(
    instructions: Sequence[Instruction],
    grid: Sequence[int] = DEFAULT_ROB_GRID,
    exact: bool = False,
    columns: Optional[TraceColumns] = None,
) -> DependenceChains:
    """Profile AP/ABP/CP over a window-size grid.

    With ``columns`` (a pre-built columnar view of ``instructions``) the
    stepped measurement extracts the register columns once and shares
    them across all grid sizes, avoiding per-instruction attribute
    dispatch; the statistics are bitwise identical either way.
    """
    chains = DependenceChains(grid=tuple(grid))
    if columns is not None and not exact:
        src1 = columns.src1.tolist()
        src2 = columns.src2.tolist()
        dst = columns.dst.tolist()
        branch_positions = np.nonzero(columns.is_branch)[0].tolist()
        n = len(columns)
        num_regs = 1
        if n:
            num_regs = 1 + max(
                int(columns.src1.max()), int(columns.src2.max()),
                int(columns.dst.max()), 0,
            )
        for size in grid:
            stats = _chain_lengths_stepped_arrays(
                src1, src2, dst, branch_positions, n, size, num_regs
            )
            chains.ap.values[size] = stats.ap
            chains.abp.values[size] = stats.abp
            chains.cp.values[size] = stats.cp
        return chains
    measure = chain_lengths_exact if exact else chain_lengths_stepped
    for size in grid:
        stats = measure(instructions, size)
        chains.ap.values[size] = stats.ap
        chains.abp.values[size] = stats.abp
        chains.cp.values[size] = stats.cp
    return chains
