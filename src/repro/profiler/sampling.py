"""Micro-trace / window sampling (thesis §5.1, Fig 5.1).

The profiler analyzes a *micro-trace* of contiguous instructions at the
start of every *window* and fast-forwards through the rest.  The thesis
uses 1000-instruction micro-traces every 1M instructions on billion-
instruction SPEC runs; our synthetic traces are orders of magnitude
shorter, so the default window is scaled down to keep tens of samples per
trace while preserving the 1/100..1/1000 sampling ratios the error
analysis (Fig 6.3) sweeps over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.isa import Instruction


@dataclass(frozen=True)
class SamplingConfig:
    """Sampling geometry.

    ``micro_trace_length`` instructions are profiled at the start of every
    ``window_length`` instructions.  ``window_length == micro_trace_length``
    disables sampling (profile everything).
    """

    micro_trace_length: int = 1000
    window_length: int = 10_000
    #: Fraction of memory accesses that close a recorded reuse in the
    #: global reuse pass (StatStack burst sampling, thesis §5.4.1);
    #: 1.0 records every access.
    reuse_sample_rate: float = 1.0
    #: Seed of the RNG deciding which accesses are recorded when
    #: ``reuse_sample_rate < 1``; same seed -> bitwise-identical profile.
    reuse_seed: int = 0

    def __post_init__(self) -> None:
        if self.micro_trace_length < 1:
            raise ValueError("micro_trace_length must be >= 1")
        if self.window_length < self.micro_trace_length:
            raise ValueError(
                "window_length must be >= micro_trace_length"
            )
        if not 0.0 < self.reuse_sample_rate <= 1.0:
            raise ValueError("reuse_sample_rate must be in (0, 1]")

    @property
    def sample_rate(self) -> float:
        return self.micro_trace_length / self.window_length

    @classmethod
    def full(cls, micro_trace_length: int = 1000) -> "SamplingConfig":
        """No fast-forwarding: every instruction is in some micro-trace."""
        return cls(
            micro_trace_length=micro_trace_length,
            window_length=micro_trace_length,
        )


def iter_micro_spans(
    total: int,
    config: SamplingConfig,
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, end)`` index spans of each micro-trace.

    The single source of truth for the sampling grid: one micro-trace
    at the head of every window, the final one possibly short, empty
    tails skipped.  Both the object-view iterator
    (:func:`iter_micro_traces`) and the columnar profiling backend
    slice from these spans.
    """
    for start in range(0, total, config.window_length):
        end = min(start + config.micro_trace_length, total)
        if end > start:
            yield start, end


def iter_micro_traces(
    instructions: Sequence[Instruction],
    config: SamplingConfig,
) -> Iterator[Tuple[int, Sequence[Instruction]]]:
    """Yield ``(start_index, micro_trace)`` pairs for each window.

    The final micro-trace may be shorter than configured when the trace
    does not divide evenly; empty tails are skipped.
    """
    for start, end in iter_micro_spans(len(instructions), config):
        yield start, instructions[start:end]
