"""Batched (structure-of-arrays) evaluation of the analytical model.

One profile evaluated against *N* machine configurations at once, as a
single array program.  This is the model-side counterpart of the
columnar profiler (PR 4): the scalar walk in
:meth:`~repro.core.interval.IntervalModel.predict` stays the reference
implementation, and this module reproduces it **bitwise** for a whole
:class:`BatchConfigs` batch per call.

Bitwise parity is achieved by construction, not by tolerance:

* Every expensive intermediate (dispatch limits, branch resolution,
  StatStack miss ratios, virtual streams, stride/cold MLP) is computed
  by calling the *same scalar helper* exactly once per unique
  dependency-key group -- using the exact :class:`ModelCache` keys the
  scalar path uses -- and scattered to configurations through inverse
  index arrays.  A cache warmed by either backend therefore serves the
  other, and both leave the identical key -> value mapping behind.
* The remaining glue arithmetic is vectorized with NumPy elementwise
  float64 operations in the *identical operation order* as the scalar
  code (IEEE-754 elementwise ops are bit-identical to CPython floats).
  Conditional accumulations become masked adds of ``0.0`` (exact on the
  non-negative accumulators used here), and scalar-int/float mixing
  maps to int64/float64 array promotion (also exact).
* Results are materialized back to Python floats via ``ndarray.tolist``
  (bit-preserving), so downstream JSON serialization and dataclass
  ``==`` comparisons behave exactly as with the scalar path.
* Configs that differ only along axes the interval equation never
  reads (L1D size, frequency, Vdd) share their window lists and stack
  dicts: the values are bitwise identical by construction, so ``==``
  and serialization cannot tell shared from copied sub-structure.  The
  aliasing contract is that returned predictions are read-only; no code
  in this repository mutates them, and callers that want to must copy
  first (as they already must for the scalar path's memoized inputs).

The one deliberately *non*-vectorized helper is
:func:`~repro.core.memory_model.icache_penalty`, whose internal loop
carries an accumulation order; it is evaluated per unique group
instead.  See ``docs/ARCHITECTURE.md`` ("Batched model layer") for the
rules to follow when vectorizing a new component.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.branch import branch_resolution_time
from repro.core.dispatch import effective_dispatch_rate
from repro.core.interval import (
    STACK_COMPONENTS,
    IntervalModel,
    ModelCache,
    Prediction,
    WindowPrediction,
)
from repro.core.machine import MachineConfig
from repro.core.memory_model import icache_penalty
from repro.core.mlp import build_virtual_stream, cold_miss_mlp, stride_mlp
from repro.core.power import (
    EVENT_ENERGY_NJ,
    REFERENCE_VDD,
    _UOP_EVENT,
    ActivityVector,
    PowerBreakdown,
    PowerModel,
)
from repro.isa import UopKind
from repro.profiler.profile import ApplicationProfile

__all__ = [
    "BatchConfigs",
    "ConfigGroups",
    "predict_interval_batch",
    "derive_activity_batch",
    "evaluate_power_batch",
    "predict_model_batch",
    "compose_groups",
]


class ConfigGroups:
    """A partition of a config batch by a dependency-key function.

    ``reps[g]`` is the index (into the batch) of the representative
    config of group ``g``; ``inverse[i]`` is the group of config ``i``.
    Computing a value once per representative and gathering it with
    ``np.asarray(values)[inverse]`` reproduces a per-config scalar loop
    exactly whenever the value depends only on the key fields.
    """

    __slots__ = ("reps", "inverse")

    def __init__(self, reps: List[int], inverse: np.ndarray) -> None:
        self.reps = reps
        self.inverse = inverse

    def __len__(self) -> int:
        return len(self.reps)

    def gather(self, values: Sequence[float]) -> np.ndarray:
        """Scatter one value per group out to a per-config float array."""
        return np.asarray(values, dtype=np.float64)[self.inverse]


def _group_by_keys(keys: Sequence) -> ConfigGroups:
    index: Dict[object, int] = {}
    reps: List[int] = []
    inverse = np.empty(len(keys), dtype=np.intp)
    for i, key in enumerate(keys):
        group = index.get(key)
        if group is None:
            group = len(reps)
            index[key] = group
            reps.append(i)
        inverse[i] = group
    return ConfigGroups(reps, inverse)


def _group_from_array(values: np.ndarray) -> ConfigGroups:
    """Partition by the values of one array axis (np.unique, C speed)."""
    _, first, inverse = np.unique(
        values, return_index=True, return_inverse=True
    )
    return ConfigGroups(first.tolist(), inverse.astype(np.intp))


def compose_groups(a: ConfigGroups, b: ConfigGroups) -> ConfigGroups:
    """The refinement of two partitions of the same config batch."""
    combined = a.inverse.astype(np.int64) * max(len(b), 1) + b.inverse
    return _group_from_array(combined)


class BatchConfigs:
    """Structure-of-arrays view over a batch of machine configurations.

    Integer axes are int64 arrays and real axes float64 arrays, so the
    vectorized model arithmetic promotes exactly like the scalar
    int/float mixing it replaces.  The original
    :class:`~repro.core.machine.MachineConfig` objects are retained (in
    order) for naming, grouping and the per-group scalar helper calls.
    """

    def __init__(self, configs: Sequence[MachineConfig]) -> None:
        self.configs: List[MachineConfig] = list(configs)
        cfgs = self.configs

        table = np.array([
            (c.dispatch_width, c.rob_size, c.frontend_refill,
             c.mshr_entries, c.dram_latency, c.bus_transfer_cycles,
             c.memory_channels, c.l1d.size_bytes, c.l1i.size_bytes,
             c.l2.size_bytes, c.llc.size_bytes, c.l2.latency,
             c.llc.latency, len(c.ports), c.prefetch_table,
             c.dram_page_bytes)
            for c in cfgs
        ], dtype=np.int64).reshape(len(cfgs), 16).T.copy()
        (self.dispatch_width, self.rob_size, self.frontend_refill,
         self.mshr_entries, self.dram_latency, self.bus_transfer_cycles,
         self.memory_channels, self.l1d_bytes, self.l1i_bytes,
         self.l2_bytes, self.llc_bytes, self.l2_latency,
         self.llc_latency, self.n_ports, self.prefetch_table,
         self.dram_page_bytes) = table
        self.prefetch = np.array([c.prefetch for c in cfgs], dtype=bool)
        self.frequency_ghz = np.array(
            [c.frequency_ghz for c in cfgs], dtype=np.float64
        )
        self.vdd = np.array([c.vdd for c in cfgs], dtype=np.float64)
        self._partitions: Dict[object, ConfigGroups] = {}

    def __len__(self) -> int:
        return len(self.configs)

    @classmethod
    def ensure(
        cls, configs: Union["BatchConfigs", Sequence[MachineConfig]]
    ) -> "BatchConfigs":
        """Coerce a config sequence to a batch (no-op if already one)."""
        if isinstance(configs, cls):
            return configs
        return cls(configs)

    def group(self, key_of: Callable[[MachineConfig], object]) -> ConfigGroups:
        """Partition the batch by ``key_of(config)``."""
        return _group_by_keys([key_of(c) for c in self.configs])

    def partition(self, *fields: str) -> ConfigGroups:
        """Memoized partition by one or more structure-of-array axes.

        Multi-axis partitions are built by refining the memoized prefix
        partition, so repeated calls sharing prefixes cost one
        ``np.unique`` each.
        """
        part = self._partitions.get(fields)
        if part is None:
            if len(fields) == 1:
                part = _group_from_array(getattr(self, fields[0]))
            else:
                part = compose_groups(
                    self.partition(*fields[:-1]),
                    self.partition(fields[-1]),
                )
            self._partitions[fields] = part
        return part

    def core_partition(self) -> ConfigGroups:
        """Partition by (dispatch_width, rob_size, ports, uop_latencies).

        This is the dependency set of both the dispatch-limits and the
        branch-resolution memo keys.  Ports and latency tables are
        arbitrary objects, so their sub-partition is dict-based (done
        once and memoized); the integer axes refine it at array speed.
        """
        part = self._partitions.get("core")
        if part is None:
            objects = _group_by_keys(
                [(c.ports, c.uop_latencies) for c in self.configs]
            )
            part = compose_groups(
                self.partition("dispatch_width", "rob_size"), objects
            )
            self._partitions["core"] = part
        return part


# ----------------------------------------------------------------------
# Interval model
# ----------------------------------------------------------------------


def predict_interval_batch(
    model: IntervalModel,
    profile: ApplicationProfile,
    configs: Union[BatchConfigs, Sequence[MachineConfig]],
) -> List[Prediction]:
    """Batched :meth:`IntervalModel.predict`: one array program, N configs.

    Returns one :class:`Prediction` per config, bitwise identical to the
    scalar path (including per-window stacks and, when a
    :class:`ModelCache` is attached, the cache's key -> value state).
    """
    batch = BatchConfigs.ensure(configs)
    n = len(batch)
    if n == 0:
        return []
    cfgs = batch.configs
    cache = model.cache
    tok = cache.token(profile) if cache is not None else 0
    memo = model._memo
    statstack = profile.statstack()

    miss_rate = model.entropy_model.predict_from_profile(
        profile.branch_entropy
    )

    # Dependency-key partitions.  Every key field below is
    # window-independent, so one partition per dependency set serves all
    # micro-traces.  The branch memo key reads the same fields as the
    # dispatch-limits key, so both share the core partition; the
    # stride-MLP partition refines the core partition because deff
    # enters its memo key.
    g_limits = batch.core_partition()
    g_branch = g_limits
    g_icache = batch.partition(
        "l1i_bytes", "l2_bytes", "llc_bytes",
        "l2_latency", "llc_latency", "dram_latency",
    )
    g_l2 = batch.partition("l2_bytes")
    g_llc = batch.partition("llc_bytes")
    if model.mlp_model == "stride":
        g_stride = compose_groups(g_limits, batch.partition(
            "llc_bytes", "rob_size", "mshr_entries",
            "llc_latency", "dram_latency", "prefetch",
            "prefetch_table", "dram_page_bytes",
        ))
    elif model.mlp_model == "cold":
        g_cold = batch.partition("rob_size", "llc_bytes")

    # The interval equation never reads the L1D size, the clock
    # frequency or Vdd, so configs that differ only along those axes
    # produce bitwise-identical window predictions and stacks.  The
    # interval partition below groups such configs; windows, stacks and
    # totals are materialized once per group and *shared* (same list /
    # dict objects) across the group's Predictions.  Equality (and JSON
    # serialization) cannot tell shared from copied sub-structure; see
    # the module docstring for the aliasing contract.
    g_int = compose_groups(g_limits, batch.partition(
        "frontend_refill", "l1i_bytes", "l2_bytes", "llc_bytes",
        "l2_latency", "llc_latency", "dram_latency",
        "bus_transfer_cycles", "memory_channels", "mshr_entries",
        "prefetch", "prefetch_table", "dram_page_bytes",
    ))
    int_reps = np.asarray(g_int.reps, dtype=np.intp)

    total_cycles = np.zeros(n)
    total_misses = np.zeros(n)
    mlp_weighted = np.zeros(n)
    mlp_weight = np.zeros(n)
    stack_totals = {key: np.zeros(n) for key in STACK_COMPONENTS}
    total_instr = 0.0
    total_uops = 0.0
    total_mispredictions = 0.0
    window_rows: List[Dict[str, object]] = []

    for micro in profile.micro_traces:
        weight = model._window_weight(profile, micro)
        if weight == 0.0:
            continue
        mix = micro.mix
        n_uops = float(mix.num_uops)
        n_instr = float(mix.num_instructions)

        # --- Dispatch limits ------------------------------------------
        limits_g = []
        for rep in g_limits.reps:
            c = cfgs[rep]
            limits_g.append(memo(
                ("limits", tok, micro.start, c.dispatch_width,
                 c.rob_size, c.ports, c.uop_latencies),
                lambda cc=c: effective_dispatch_rate(mix, micro.chains, cc),
            ))
        deff_g = [limits.effective() for limits in limits_g]
        limiter_g = [limits.limiter() for limits in limits_g]
        deff = g_limits.gather(deff_g)
        base = n_uops / deff

        # --- Branch component -----------------------------------------
        branches = float(mix.counts.get(UopKind.BRANCH, 0))
        mispredictions = miss_rate * branches
        if mispredictions > 0.0:
            interval_uops = n_uops / mispredictions
            res_g = []
            for rep in g_branch.reps:
                c = cfgs[rep]
                average_latency = mix.average_latency(c.latencies())
                res_g.append(memo(
                    ("branch", tok, micro.start, average_latency,
                     interval_uops, c.dispatch_width, c.rob_size),
                    lambda al=average_latency, cc=c: branch_resolution_time(
                        micro.chains, al, interval_uops, cc
                    ),
                ))
            resolution = g_branch.gather(res_g)
            branch_cycles = mispredictions * (
                resolution + batch.frontend_refill
            )
        else:
            branch_cycles = np.zeros(n)

        # --- Instruction cache ----------------------------------------
        icache_g = []
        for rep in g_icache.reps:
            c = cfgs[rep]
            i_sizes = (c.l1i.size_bytes, c.l2.size_bytes,
                       c.llc.size_bytes)
            i_ratios = memo(
                ("iratios", tok) + i_sizes,
                lambda s=i_sizes:
                    profile.instruction_statstack().hierarchy_miss_ratios(
                        list(s), kind="load"
                    ),
            )
            icache_g.append(icache_penalty(n_instr, i_ratios, c))
        icache_cycles = g_icache.gather(icache_g)

        # --- Data cache misses ----------------------------------------
        loads = float(mix.counts.get(UopKind.LOAD, 0))
        stores = float(mix.counts.get(UopKind.STORE, 0))

        def _load_ratio(size: int) -> float:
            return memo(
                ("dratio", tok, micro.start, "load", size),
                lambda: statstack.miss_ratio_of(
                    micro.load_reuse, micro.cold_loads, size
                ),
            )

        l2_ratio_g = [
            _load_ratio(cfgs[rep].l2.size_bytes) for rep in g_l2.reps
        ]
        llc_ratio_g = [
            _load_ratio(cfgs[rep].llc.size_bytes) for rep in g_llc.reps
        ]
        store_ratio_g = []
        for rep in g_llc.reps:
            size = cfgs[rep].llc.size_bytes
            store_ratio_g.append(memo(
                ("dratio", tok, micro.start, "store", size),
                lambda s=size: statstack.miss_ratio_of(
                    micro.store_reuse, micro.cold_stores, s
                ),
            ))
        ratio_l2 = g_l2.gather(l2_ratio_g)
        ratio_llc = g_llc.gather(llc_ratio_g)
        store_ratio_llc = g_llc.gather(store_ratio_g)
        m_l2 = ratio_l2 * loads
        m_llc = ratio_llc * loads
        m_llc_store = store_ratio_llc * stores
        llc_hits = np.maximum(0.0, m_l2 - m_llc)

        # --- MLP ------------------------------------------------------
        f_l = memo(
            ("fl", tok, micro.start),
            lambda: micro.memory.load_dependence_distribution(),
        )
        if model.mlp_model == "stride":
            mlp_g = np.empty(len(g_stride))
            miss_scale_g = np.ones(len(g_stride))
            for gi, rep in enumerate(g_stride.reps):
                c = cfgs[rep]
                deff_rep = deff_g[g_limits.inverse[rep]]
                if c.prefetch:
                    # The scalar path recomputes the prefetch stream per
                    # configuration (no memo); one call per group gives
                    # the identical value without touching the cache.
                    stream = build_virtual_stream(
                        micro.memory, statstack, c, deff=deff_rep,
                        load_reuse_by_pc=micro.load_reuse_by_pc,
                        cold_by_pc=micro.cold_by_pc,
                    )
                    result = stride_mlp(stream, f_l, c, deff=deff_rep)
                    raw = sum(
                        1.0 for vl in stream.loads if vl.miss_weight > 0.0
                    )
                    reduction = (
                        stream.total_miss_weight / raw if raw > 0.0 else 1.0
                    )
                    miss_scale_g[gi] = min(1.0, reduction)
                else:
                    stream = memo(
                        ("stream", tok, micro.start, c.llc.size_bytes),
                        lambda cc=c, d=deff_rep: build_virtual_stream(
                            micro.memory, statstack, cc, deff=d,
                            load_reuse_by_pc=micro.load_reuse_by_pc,
                            cold_by_pc=micro.cold_by_pc,
                        ),
                    )
                    result = memo(
                        ("smlp", tok, micro.start, c.llc.size_bytes,
                         c.rob_size, c.mshr_entries, c.llc.latency,
                         c.dram_latency, deff_rep),
                        lambda s=stream, cc=c, d=deff_rep: stride_mlp(
                            s, f_l, cc, deff=d
                        ),
                    )
                mlp_g[gi] = result.mlp
            mlp = mlp_g[g_stride.inverse]
            m_llc = m_llc * miss_scale_g[g_stride.inverse]
        elif model.mlp_model == "cold":
            mlp_g = np.empty(len(g_cold))
            for gi, rep in enumerate(g_cold.reps):
                c = cfgs[rep]
                ratio_llc_rep = llc_ratio_g[g_llc.inverse[rep]]
                m_llc_rep = ratio_llc_rep * loads
                cold_fraction = 0.0
                if m_llc_rep > 0.0:
                    cold_fraction = min(1.0, micro.cold_loads / m_llc_rep)
                result = cold_miss_mlp(
                    profile.cold, f_l, ratio_llc_rep, cold_fraction,
                    mix.load_fraction, c,
                )
                mlp_g[gi] = result.mlp
            mlp = mlp_g[g_cold.inverse]
        else:  # "none": serialize all misses
            mlp = np.ones(n)

        if model.enable_mshr:
            in_flight = np.maximum(1, batch.mshr_entries).astype(np.float64)
            t_dram = batch.dram_latency.astype(np.float64)
            waiting = mlp - in_flight
            t_free = np.minimum(
                t_dram, (waiting + 1.0) / 2.0 * t_dram / in_flight
            )
            capped = in_flight + waiting * (t_dram - t_free) / t_dram
            mlp = np.where(mlp <= in_flight, mlp, capped)
        mlp = np.maximum(mlp, 1.0)

        # --- DRAM component -------------------------------------------
        memory_latency = batch.llc_latency + batch.dram_latency
        if model.enable_bus:
            memory_latency = memory_latency + batch.bus_transfer_cycles
        memory_latency = memory_latency.astype(np.float64)
        dram_cycles = m_llc * memory_latency / mlp
        if model.enable_bus:
            occupancy = (
                (m_llc + m_llc_store) * batch.bus_transfer_cycles
                / np.maximum(1, batch.memory_channels)
            )
            dram_cycles = np.maximum(dram_cycles, occupancy - base)

        # --- Chained LLC hits -----------------------------------------
        if model.enable_llc_chaining and n_uops > 0:
            load_fraction = mix.load_fraction
            loads_per_rob = load_fraction * batch.rob_size
            if loads > 0:
                hits_per_rob = (llc_hits / loads) * loads_per_rob
            else:
                hits_per_rob = np.zeros(n)
            f1 = micro.memory.independent_load_fraction() or 1.0
            paths = np.maximum(f1 * loads_per_rob, 1.0)
            loads_per_path = loads_per_rob / paths
            chain_avg = hits_per_rob / paths
            chain_max = np.minimum(hits_per_rob, loads_per_path)
            chain_expected = (
                chain_avg + np.maximum(chain_max - chain_avg, 0.0) / paths
            )
            serialized = batch.llc_latency * chain_expected
            rob_fill = batch.rob_size / np.maximum(deff, 1e-6)
            per_window = np.maximum(0.0, serialized - rob_fill)
            windows_per_run = n_uops / batch.rob_size
            chain_cycles = np.where(
                (hits_per_rob <= 0.0) | (loads_per_rob <= 0.0),
                0.0,
                per_window * windows_per_run,
            )
        else:
            chain_cycles = np.zeros(n)

        # Same summation order as sum(stack.values()) in the scalar path.
        cycles = (
            base + branch_cycles + icache_cycles + chain_cycles
            + dram_cycles
        )

        total_cycles += cycles * weight
        total_instr += n_instr * weight
        total_uops += mix.num_uops * weight
        components = {
            "base": base,
            "branch": branch_cycles,
            "icache": icache_cycles,
            "llc_chain": chain_cycles,
            "dram": dram_cycles,
        }
        for key in STACK_COMPONENTS:
            stack_totals[key] += components[key] * weight
        total_misses += m_llc * weight
        dram_mask = dram_cycles > 0.0
        mlp_weighted += np.where(dram_mask, mlp * dram_cycles, 0.0)
        mlp_weight += np.where(dram_mask, dram_cycles, 0.0)
        total_mispredictions += (
            miss_rate * mix.counts.get(UopKind.BRANCH, 0) * weight
        )

        window_rows.append({
            "start": micro.start,
            "instructions": n_instr,
            "cycles": cycles[int_reps].tolist(),
            "base": base[int_reps].tolist(),
            "branch": branch_cycles[int_reps].tolist(),
            "icache": icache_cycles[int_reps].tolist(),
            "llc_chain": chain_cycles[int_reps].tolist(),
            "dram": dram_cycles[int_reps].tolist(),
            "deff": deff[int_reps].tolist(),
            "mlp": mlp[int_reps].tolist(),
            "llc_misses": m_llc[int_reps].tolist(),
            "limiter": [
                limiter_g[g] for g in g_limits.inverse[int_reps].tolist()
            ],
        })

    safe_weight = np.where(mlp_weight != 0.0, mlp_weight, 1.0)
    final_mlp = np.where(
        mlp_weight != 0.0, mlp_weighted / safe_weight, 1.0
    )

    n_groups = len(g_int)
    cycles_l = total_cycles[int_reps].tolist()
    misses_l = total_misses[int_reps].tolist()
    mlp_l = final_mlp[int_reps].tolist()

    # Transposed window materialization, once per interval group.  The
    # inner loop bypasses the dataclass constructor (building the
    # instance __dict__ directly) -- at 10^4+ WindowPrediction objects
    # per call, the generated __init__ is a measurable fraction of the
    # whole batch evaluation.  Field names and values match the
    # constructor call in the scalar path exactly; the equivalence
    # harness pins the resulting objects ``==``.
    windows_by_group: List[List[WindowPrediction]] = [
        [] for _ in range(n_groups)
    ]
    new_window = WindowPrediction.__new__
    for row in window_rows:
        start = row["start"]
        instructions = row["instructions"]
        for cyc, base_c, branch_c, icache_c, chain_c, dram_c, deff_c, \
                mlp_c, limiter_c, misses_c, bucket in zip(
                    row["cycles"], row["base"], row["branch"],
                    row["icache"], row["llc_chain"], row["dram"],
                    row["deff"], row["mlp"], row["limiter"],
                    row["llc_misses"], windows_by_group):
            window = new_window(WindowPrediction)
            window.__dict__ = {
                "start": start,
                "instructions": instructions,
                "cycles": cyc,
                "stack": {
                    "base": base_c,
                    "branch": branch_c,
                    "icache": icache_c,
                    "llc_chain": chain_c,
                    "dram": dram_c,
                },
                "deff": deff_c,
                "mlp": mlp_c,
                "limiter": limiter_c,
                "llc_misses": misses_c,
            }
            bucket.append(window)

    stacks_by_group = [
        dict(zip(STACK_COMPONENTS, row))
        for row in zip(*[
            stack_totals[key][int_reps].tolist()
            for key in STACK_COMPONENTS
        ])
    ]

    workload = profile.name
    freq_l = batch.frequency_ghz.tolist()
    inverse_l = g_int.inverse.tolist()
    predictions: List[Prediction] = []
    new_prediction = Prediction.__new__
    for j, config in enumerate(cfgs):
        g = inverse_l[j]
        prediction = new_prediction(Prediction)
        prediction.__dict__ = {
            "config_name": config.name,
            "workload": workload,
            "cycles": cycles_l[g],
            "instructions": total_instr,
            "uops": total_uops,
            "stack": stacks_by_group[g],
            "windows": windows_by_group[g],
            "mlp": mlp_l[g],
            "llc_load_misses": misses_l[g],
            "branch_mispredictions": total_mispredictions,
            "frequency_ghz": config.frequency_ghz,
        }
        predictions.append(prediction)
    return predictions


# ----------------------------------------------------------------------
# Activity derivation
# ----------------------------------------------------------------------


def derive_activity_batch(
    profile: ApplicationProfile,
    predictions: Sequence[Prediction],
    configs: Union[BatchConfigs, Sequence[MachineConfig]],
    cache: Optional[ModelCache] = None,
) -> List[ActivityVector]:
    """Batched :func:`~repro.core.model.derive_activity` (Eq 3.16)."""
    batch = BatchConfigs.ensure(configs)
    n = len(batch)
    if n == 0:
        return []
    cfgs = batch.configs
    statstack = profile.statstack()
    instruction_statstack = profile.instruction_statstack()
    mix = profile.mix

    instructions = np.array(
        [p.instructions for p in predictions], dtype=np.float64
    )
    if mix.num_instructions:
        scale = instructions / mix.num_instructions
    else:
        scale = np.zeros(n)
    loads = mix.counts.get(UopKind.LOAD, 0) * scale
    stores = mix.counts.get(UopKind.STORE, 0) * scale
    branches = mix.counts.get(UopKind.BRANCH, 0) * scale

    def _ratios(model, stream, kind, sizes):
        if cache is None:
            return model.hierarchy_miss_ratios(list(sizes), kind=kind)
        return cache.get(
            ("activity", cache.token(profile), stream, kind)
            + tuple(sizes),
            lambda: model.hierarchy_miss_ratios(list(sizes), kind=kind),
        )

    g_data = batch.partition("l1d_bytes", "l2_bytes", "llc_bytes")
    g_instr = batch.partition("l1i_bytes", "l2_bytes", "llc_bytes")
    load_ratios_g = []
    store_ratios_g = []
    for rep in g_data.reps:
        c = cfgs[rep]
        sizes = (c.l1d.size_bytes, c.l2.size_bytes, c.llc.size_bytes)
        load_ratios_g.append(_ratios(statstack, "data", "load", sizes))
        store_ratios_g.append(_ratios(statstack, "data", "store", sizes))
    i_ratios_g = []
    for rep in g_instr.reps:
        c = cfgs[rep]
        i_sizes = (c.l1i.size_bytes, c.l2.size_bytes, c.llc.size_bytes)
        i_ratios_g.append(
            _ratios(instruction_statstack, "instr", "load", i_sizes)
        )

    def level(groups: ConfigGroups, ratios, idx: int) -> np.ndarray:
        return groups.gather([r[idx] for r in ratios])

    l1_data = loads + stores
    l2_data = (
        loads * level(g_data, load_ratios_g, 0)
        + stores * level(g_data, store_ratios_g, 0)
    )
    llc_data = (
        loads * level(g_data, load_ratios_g, 1)
        + stores * level(g_data, store_ratios_g, 1)
    )
    dram_data = (
        loads * level(g_data, load_ratios_g, 2)
        + stores * level(g_data, store_ratios_g, 2)
    )
    l1_instr = instructions
    l2_instr = instructions * level(g_instr, i_ratios_g, 0)
    llc_instr = instructions * level(g_instr, i_ratios_g, 1)
    dram_instr = instructions * level(g_instr, i_ratios_g, 2)

    l1_l = (l1_data + l1_instr).tolist()
    l2_l = (l2_data + l2_instr).tolist()
    llc_l = (llc_data + llc_instr).tolist()
    dram_l = (dram_data + dram_instr).tolist()
    branches_l = branches.tolist()

    # Per-kind counts vectorized once (count * scale elementwise equals
    # the scalar per-config multiply bit-for-bit), then zipped back into
    # per-config dicts in ``mix.counts`` insertion order.  Predictions
    # produced by :func:`predict_interval_batch` all share the same
    # instruction total, making the scale -- and hence the whole kind
    # dict -- identical across the batch; in that common case one dict
    # is built and shared (same read-only aliasing contract as the
    # window lists above).  As with WindowPrediction, the dataclass
    # constructor is bypassed for speed; the equivalence harness pins
    # the objects ``==``.
    kinds = list(mix.counts)
    scale_l = scale.tolist()
    if not kinds:
        kind_dicts: List[Dict] = [{} for _ in range(n)]
    elif n and all(value == scale_l[0] for value in scale_l):
        shared = {
            kind: count * scale_l[0] for kind, count in mix.counts.items()
        }
        kind_dicts = [shared] * n
    else:
        kind_dicts = [
            dict(zip(kinds, row))
            for row in zip(*[
                (count * scale).tolist() for count in mix.counts.values()
            ])
        ]

    activities: List[ActivityVector] = []
    new_activity = ActivityVector.__new__
    for j in range(n):
        prediction = predictions[j]
        activity = new_activity(ActivityVector)
        activity.__dict__ = {
            "cycles": prediction.cycles,
            "uops": prediction.uops,
            "uop_kind_counts": kind_dicts[j],
            "l1_accesses": l1_l[j],
            "l2_accesses": l2_l[j],
            "llc_accesses": llc_l[j],
            "dram_accesses": dram_l[j],
            "branch_lookups": branches_l[j],
        }
        activities.append(activity)
    return activities


# ----------------------------------------------------------------------
# Power model
# ----------------------------------------------------------------------


def _power_batch(
    batch: BatchConfigs, activities: Sequence[ActivityVector]
) -> Tuple[List[PowerBreakdown], List[float], List[float], List[float]]:
    """Breakdowns + (energy, edp, ed2p) for a batch, bitwise-exact."""
    n = len(batch)
    if n == 0:
        return [], [], [], []

    kinds = tuple(activities[0].uop_kind_counts)
    if any(tuple(a.uop_kind_counts) != kinds for a in activities):
        # Heterogeneous activity vectors (possible through the public
        # evaluate_batch API): fall back to the scalar model per config,
        # which is exact by definition.
        breakdowns, energy, edp, ed2p = [], [], [], []
        for config, activity in zip(batch.configs, activities):
            power_model = PowerModel(config)
            breakdowns.append(power_model.evaluate(activity))
            energy.append(power_model.energy_joules(activity))
            edp.append(power_model.edp(activity))
            ed2p.append(power_model.ed2p(activity))
        return breakdowns, energy, edp, ed2p

    cycles = np.array([a.cycles for a in activities], dtype=np.float64)
    uops = np.array([a.uops for a in activities], dtype=np.float64)
    l1 = np.array([a.l1_accesses for a in activities], dtype=np.float64)
    l2 = np.array([a.l2_accesses for a in activities], dtype=np.float64)
    llc = np.array([a.llc_accesses for a in activities], dtype=np.float64)
    dram = np.array(
        [a.dram_accesses for a in activities], dtype=np.float64
    )
    lookups = np.array(
        [a.branch_lookups for a in activities], dtype=np.float64
    )

    # Same structure order (and arithmetic) as PowerModel.structure_areas.
    mb = 1024.0 * 1024.0
    areas = {
        "core_logic": 0.8 * (batch.dispatch_width / 4.0),
        "rob_rf": 0.5 * (batch.rob_size / 128.0),
        "functional_units": 0.15 * batch.n_ports,
        "predictor": np.full(n, 0.1),
        "l1": 0.12 * (
            (batch.l1d_bytes + batch.l1i_bytes) / (64.0 * 1024.0)
        ),
        "l2": 0.25 * (batch.l2_bytes / (256.0 * 1024.0)),
        "llc": 2.2 * (batch.llc_bytes / (8.0 * mb)),
        "memctrl": np.full(n, 0.3),
    }

    # (vdd / REFERENCE_VDD) ** 2 per *unique* vdd with Python floats:
    # numpy's power kernel is not guaranteed bit-identical to CPython's.
    g_vdd = batch.partition("vdd")
    vscale = g_vdd.gather([
        (batch.configs[rep].vdd / REFERENCE_VDD) ** 2 for rep in g_vdd.reps
    ])

    static = {
        name: PowerModel.LEAKAGE_DENSITY * area * vscale
        for name, area in areas.items()
    }

    mask = cycles > 0.0
    freq_hz = batch.frequency_ghz * 1e9
    seconds = cycles / freq_hz
    safe_seconds = np.where(mask, seconds, 1.0)

    def watts(event: str, count: np.ndarray) -> np.ndarray:
        return (
            count * EVENT_ENERGY_NJ[event] * 1e-9 * vscale / safe_seconds
        )

    dynamic: Dict[str, np.ndarray] = {}
    dynamic["core_logic"] = watts("uop", uops) + watts("clock", cycles)
    fu = np.zeros(n)
    for kind in kinds:
        counts = np.array(
            [a.uop_kind_counts[kind] for a in activities], dtype=np.float64
        )
        fu = fu + watts(_UOP_EVENT.get(kind, "int_alu"), counts)
    dynamic["functional_units"] = fu
    dynamic["rob_rf"] = watts("uop", uops) * 0.6
    dynamic["predictor"] = watts("branch_lookup", lookups)
    dynamic["l1"] = watts("l1", l1)
    dynamic["l2"] = watts("l2", l2)
    dynamic["llc"] = watts("llc", llc)
    dynamic["memctrl"] = watts("dram", dram)

    static_total = np.zeros(n)
    for value in static.values():
        static_total = static_total + value
    dynamic_total = np.zeros(n)
    for value in dynamic.values():
        dynamic_total = dynamic_total + value
    dynamic_total = np.where(mask, dynamic_total, 0.0)
    total = static_total + dynamic_total
    energy = total * seconds
    edp = energy * seconds
    ed2p = edp * seconds

    static_names = list(static)
    dynamic_names = list(dynamic)
    static_rows = zip(*[value.tolist() for value in static.values()])
    dynamic_rows = zip(*[value.tolist() for value in dynamic.values()])
    breakdowns = []
    new_breakdown = PowerBreakdown.__new__
    for masked, static_row, dynamic_row in zip(
            mask.tolist(), static_rows, dynamic_rows):
        breakdown = new_breakdown(PowerBreakdown)
        breakdown.__dict__ = {
            "static": dict(zip(static_names, static_row)),
            "dynamic": (
                dict(zip(dynamic_names, dynamic_row)) if masked else {}
            ),
        }
        breakdowns.append(breakdown)
    return breakdowns, energy.tolist(), edp.tolist(), ed2p.tolist()


def evaluate_power_batch(
    configs: Union[BatchConfigs, Sequence[MachineConfig]],
    activities: Sequence[ActivityVector],
) -> List[PowerBreakdown]:
    """Batched :meth:`PowerModel.evaluate` over (config, activity) pairs."""
    batch = BatchConfigs.ensure(configs)
    if len(batch) != len(activities):
        raise ValueError(
            f"got {len(batch)} configs but {len(activities)} activities"
        )
    return _power_batch(batch, activities)[0]


# ----------------------------------------------------------------------
# Full pipeline
# ----------------------------------------------------------------------


def predict_model_batch(
    model,  # AnalyticalModel (imported lazily to avoid a module cycle)
    profile: ApplicationProfile,
    configs: Union[BatchConfigs, Sequence[MachineConfig]],
) -> List["ModelResult"]:
    """Batched :meth:`AnalyticalModel.predict`: N full results per call."""
    from repro.core.model import ModelResult

    batch = BatchConfigs.ensure(configs)
    predictions = predict_interval_batch(model.interval, profile, batch)
    activities = derive_activity_batch(
        profile, predictions, batch, cache=model.interval.cache
    )
    breakdowns, energy, edp, ed2p = _power_batch(batch, activities)
    return [
        ModelResult(
            performance=predictions[j],
            power=breakdowns[j],
            activity=activities[j],
            energy_joules=energy[j],
            edp=edp[j],
            ed2p=ed2p[j],
        )
        for j in range(len(batch))
    ]
