"""The micro-architecture independent interval model (thesis Eq 3.1).

Total cycles for one application on one machine configuration:

    C = N/Deff + m_bpred*(c_res + c_fe) + sum_i m_ILi*c_{Li+1}
        + m_LLC*(c_mem + c_bus)/MLP + P_hLLC

evaluated *per micro-trace* and combined (the TC'16 per-sample evaluation,
thesis §6.2.2: contention and MLP burstiness are visible only at small
time scales), with every input derived from the micro-architecture
independent profile:

* Deff from the uop mix + dependence chains (Eq 3.10);
* m_bpred from linear branch entropy via a per-predictor linear model;
* cache misses from StatStack miss ratios;
* MLP from the cold-miss or stride model, MSHR-capped;
* bus queuing and LLC hit chaining from Eqs 4.5--4.12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.branch import branch_resolution_time
from repro.core.dispatch import DispatchLimits, effective_dispatch_rate
from repro.core.machine import MachineConfig
from repro.core.memory_model import (
    icache_penalty,
    llc_chain_penalty,
    mshr_soft_cap,
)
from repro.core.mlp import (
    MLPResult,
    build_virtual_stream,
    cold_miss_mlp,
    stride_mlp,
)
from repro.frontend.entropy import EntropyMissRateModel
from repro.isa import UopKind
from repro.profiler.profile import ApplicationProfile, MicroTraceProfile

#: CPI stack component keys, in display order.
STACK_COMPONENTS: Tuple[str, ...] = (
    "base", "branch", "icache", "llc_chain", "dram"
)


class ModelCache:
    """Cross-configuration memo of micro-architecture independent work.

    Most of the interval model's per-(profile, config) cost is spent in
    computations whose inputs are a micro-trace plus a *small subset* of
    configuration fields: the branch resolution leaky bucket, the virtual
    load stream, the dispatch limits, and StatStack miss-ratio queries.
    Across a design-space grid those subsets collide constantly (a 243-
    config space has only 3 distinct LLC sizes), so memoizing on the
    exact dependency set collapses thousands of evaluations into a few
    dozen.

    Every key used by :class:`IntervalModel` enumerates *all* the inputs
    the computation reads, so a cache hit returns a value bitwise
    identical to recomputing it -- the cache changes wall-clock time,
    never results.  Profile-scoped keys use the profile's identity; the
    cache pins a reference to each profile it has seen so ``id`` reuse
    after garbage collection cannot alias keys.

    A cache is typically owned by one sweep (the sweep engine attaches a
    fresh one per run / per worker process); share one across sweeps only
    while the profile objects stay alive.

    Accounting: :attr:`hits` / :attr:`misses` count every :meth:`get`
    unconditionally (two plain integer adds -- results and wall-time
    are unaffected), and :meth:`flush_metrics` publishes the deltas
    accumulated since the previous flush into a
    :class:`~repro.obs.metrics.MetricsRegistry` under
    ``model_cache.hits`` / ``model_cache.misses``.  Engines flush at
    batch boundaries, so worker-side caches ship their counts back
    piggybacked on result messages (see :mod:`repro.api.pool`).
    """

    def __init__(self) -> None:
        self._memo: Dict[Tuple, object] = {}
        self._pins: Dict[int, object] = {}
        #: Lifetime memo lookups answered from the memo.
        self.hits = 0
        #: Lifetime memo lookups that had to compute.
        self.misses = 0
        self._flushed_hits = 0
        self._flushed_misses = 0

    def token(self, profile: "ApplicationProfile") -> int:
        """A key component identifying ``profile`` for this cache's life."""
        ident = id(profile)
        if ident not in self._pins:
            self._pins[ident] = profile
        return ident

    def get(self, key: Tuple, compute: Callable[[], object]) -> object:
        """The memoized value for ``key``, computing it on first use."""
        try:
            value = self._memo[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._memo[key] = value
            return value
        self.hits += 1
        return value

    def __len__(self) -> int:
        return len(self._memo)

    def flush_metrics(self, metrics) -> None:
        """Publish hit/miss counts accumulated since the last flush.

        Increments ``model_cache.hits`` / ``model_cache.misses`` on
        ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry` or
        the no-op default) by the deltas since the previous flush, so
        repeated flushing never double-counts.  Flushing into a
        disabled registry is a no-op that keeps the deltas pending.
        """
        if not metrics.enabled:
            return
        delta_hits = self.hits - self._flushed_hits
        delta_misses = self.misses - self._flushed_misses
        if delta_hits:
            metrics.inc("model_cache.hits", delta_hits)
            self._flushed_hits = self.hits
        if delta_misses:
            metrics.inc("model_cache.misses", delta_misses)
            self._flushed_misses = self.misses

    def clear(self) -> None:
        """Drop all memoized values and pinned profiles.

        Accounting survives: :attr:`hits` / :attr:`misses` are lifetime
        counters and keep counting across clears.
        """
        self._memo.clear()
        self._pins.clear()


@dataclass
class WindowPrediction:
    """Per-micro-trace prediction (phase analysis, Fig 6.14)."""

    start: int
    instructions: float
    cycles: float
    stack: Dict[str, float]
    deff: float
    mlp: float
    limiter: str
    llc_misses: float = 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class Prediction:
    """Full performance prediction for one (profile, config) pair."""

    config_name: str
    workload: str
    cycles: float
    instructions: float
    uops: float
    stack: Dict[str, float]
    windows: List[WindowPrediction] = field(default_factory=list)
    mlp: float = 1.0
    llc_load_misses: float = 0.0
    branch_mispredictions: float = 0.0
    frequency_ghz: float = 2.66

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def seconds(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e9)

    def cpi_stack(self) -> Dict[str, float]:
        """The stack normalized to cycles-per-instruction."""
        if not self.instructions:
            return {key: 0.0 for key in self.stack}
        return {
            key: value / self.instructions
            for key, value in self.stack.items()
        }


#: Fallback entropy model: an ideal predictor mispredicts ~E/2 of
#: branches; the small intercept mirrors the residual alias misses of the
#: thesis' fitted predictors (Fig 3.9).
DEFAULT_ENTROPY_MODEL = EntropyMissRateModel(
    predictor_name="generic",
    slope=0.45,
    intercept=0.005,
    history_bits=12,
)


class IntervalModel:
    """Evaluates the interval equation for profiles and configurations.

    Parameters
    ----------
    entropy_model:
        Branch predictor miss-rate model; defaults to the generic linear
        entropy fit.
    mlp_model:
        ``"stride"`` (CAL'18 virtual stream), ``"cold"`` (ISPASS'15
        cold-window model) or ``"none"`` (serialize all misses).
    enable_llc_chaining / enable_mshr / enable_bus:
        Feature toggles for the corresponding penalty terms.
    cache:
        Optional :class:`ModelCache` memoizing micro-architecture
        independent intermediates across configurations.  Results are
        bitwise identical with or without it.
    """

    def __init__(
        self,
        entropy_model: Optional[EntropyMissRateModel] = None,
        mlp_model: str = "stride",
        enable_llc_chaining: bool = True,
        enable_mshr: bool = True,
        enable_bus: bool = True,
        cache: Optional[ModelCache] = None,
    ) -> None:
        if mlp_model not in ("stride", "cold", "none"):
            raise ValueError("mlp_model must be 'stride', 'cold' or 'none'")
        self.entropy_model = entropy_model or DEFAULT_ENTROPY_MODEL
        self.mlp_model = mlp_model
        self.enable_llc_chaining = enable_llc_chaining
        self.enable_mshr = enable_mshr
        self.enable_bus = enable_bus
        self.cache = cache

    def _memo(self, key: Tuple, compute: Callable[[], object]) -> object:
        """Memoize through the attached cache, or just compute."""
        if self.cache is None:
            return compute()
        return self.cache.get(key, compute)

    # ------------------------------------------------------------------

    def _window_weight(
        self, profile: ApplicationProfile, micro: MicroTraceProfile
    ) -> float:
        """How many trace instructions this micro-trace represents."""
        window = profile.sampling.window_length
        represented = min(window, profile.num_instructions - micro.start)
        if micro.length == 0:
            return 0.0
        return represented / micro.length

    def _evaluate_window(
        self,
        profile: ApplicationProfile,
        micro: MicroTraceProfile,
        config: MachineConfig,
        miss_rate_bpred: float,
    ) -> WindowPrediction:
        mix = micro.mix
        n_uops = float(mix.num_uops)
        n_instr = float(mix.num_instructions)
        statstack = profile.statstack()
        tok = self.cache.token(profile) if self.cache is not None else 0

        limits = self._memo(
            ("limits", tok, micro.start, config.dispatch_width,
             config.rob_size, config.ports, config.uop_latencies),
            lambda: effective_dispatch_rate(mix, micro.chains, config),
        )
        deff = limits.effective()
        base = n_uops / deff

        # --- Branch component -----------------------------------------
        branches = float(mix.counts.get(UopKind.BRANCH, 0))
        mispredictions = miss_rate_bpred * branches
        branch_cycles = 0.0
        if mispredictions > 0.0:
            interval_uops = n_uops / mispredictions
            average_latency = mix.average_latency(config.latencies())
            resolution = self._memo(
                ("branch", tok, micro.start, average_latency,
                 interval_uops, config.dispatch_width, config.rob_size),
                lambda: branch_resolution_time(
                    micro.chains, average_latency, interval_uops, config
                ),
            )
            branch_cycles = mispredictions * (
                resolution + config.frontend_refill
            )

        # --- Instruction cache ------------------------------------------
        i_sizes = (config.l1i.size_bytes, config.l2.size_bytes,
                   config.llc.size_bytes)
        i_ratios = self._memo(
            ("iratios", tok) + i_sizes,
            lambda: profile.instruction_statstack().hierarchy_miss_ratios(
                list(i_sizes), kind="load"
            ),
        )
        icache_cycles = icache_penalty(n_instr, i_ratios, config)

        # --- Data cache misses -------------------------------------------
        loads = float(mix.counts.get(UopKind.LOAD, 0))
        stores = float(mix.counts.get(UopKind.STORE, 0))

        def _load_ratio(size: int) -> float:
            return self._memo(
                ("dratio", tok, micro.start, "load", size),
                lambda: statstack.miss_ratio_of(
                    micro.load_reuse, micro.cold_loads, size
                ),
            )

        ratio_l2 = _load_ratio(config.l2.size_bytes)
        ratio_llc = _load_ratio(config.llc.size_bytes)
        store_ratio_llc = self._memo(
            ("dratio", tok, micro.start, "store", config.llc.size_bytes),
            lambda: statstack.miss_ratio_of(
                micro.store_reuse, micro.cold_stores, config.llc.size_bytes
            ),
        )
        m_l2 = ratio_l2 * loads
        m_llc = ratio_llc * loads
        m_llc_store = store_ratio_llc * stores
        llc_hits = max(0.0, m_l2 - m_llc)

        # --- MLP ----------------------------------------------------------
        f_l = self._memo(
            ("fl", tok, micro.start),
            lambda: micro.memory.load_dependence_distribution(),
        )
        if self.mlp_model == "stride":
            # With the prefetcher off, the virtual stream and its MLP
            # depend only on the listed fields, so both memoize across
            # configurations; prefetching adds deff/table/page/timing
            # dependencies, so that path always recomputes.
            def _build_stream():
                return build_virtual_stream(
                    micro.memory, statstack, config, deff=deff,
                    load_reuse_by_pc=micro.load_reuse_by_pc,
                    cold_by_pc=micro.cold_by_pc,
                )

            if config.prefetch:
                stream = _build_stream()
                result = stride_mlp(stream, f_l, config, deff=deff)
            else:
                stream = self._memo(
                    ("stream", tok, micro.start, config.llc.size_bytes),
                    _build_stream,
                )
                result = self._memo(
                    ("smlp", tok, micro.start, config.llc.size_bytes,
                     config.rob_size, config.mshr_entries,
                     config.llc.latency, config.dram_latency, deff),
                    lambda: stride_mlp(stream, f_l, config, deff=deff),
                )
            if config.prefetch:
                # The virtual stream carries the prefetch-adjusted miss
                # weights; rescale StatStack's count by that reduction.
                raw = sum(1.0 for vl in stream.loads if vl.miss_weight > 0.0)
                reduction = (
                    stream.total_miss_weight / raw if raw > 0.0 else 1.0
                )
                m_llc *= min(1.0, reduction)
        elif self.mlp_model == "cold":
            cold_fraction = 0.0
            if m_llc > 0.0:
                cold_fraction = min(1.0, micro.cold_loads / m_llc)
            result = cold_miss_mlp(
                profile.cold,
                f_l,
                ratio_llc,
                cold_fraction,
                mix.load_fraction,
                config,
            )
        else:  # "none": serialize all misses
            result = MLPResult(mlp=1.0, llc_misses=m_llc)

        mlp = result.mlp
        if self.enable_mshr:
            mlp = mshr_soft_cap(mlp, config)
        mlp = max(mlp, 1.0)

        # --- DRAM component -----------------------------------------------
        # The full main-memory round trip: LLC tag check that discovered
        # the miss, the line's own bus transfer, DRAM access.
        memory_latency = float(config.llc.latency + config.dram_latency)
        if self.enable_bus:
            memory_latency += config.bus_transfer_cycles
        dram_cycles = m_llc * memory_latency / mlp
        if self.enable_bus:
            # Bus congestion enters as a bandwidth floor (the §4.7
            # saturated-bus regime): no amount of MLP makes the memory
            # component smaller than the total bus occupancy of all
            # transfers (loads and stores) minus what hides under the
            # base component.  This replaces the per-miss queue of
            # Eq 4.5, which double-counts congestion once the floor
            # binds (validated against the reference simulator's
            # in-order bus).
            occupancy = (
                (m_llc + m_llc_store) * config.bus_transfer_cycles
                / max(1, config.memory_channels)
            )
            dram_cycles = max(dram_cycles, occupancy - base)

        # --- Chained LLC hits ----------------------------------------------
        chain_cycles = 0.0
        if self.enable_llc_chaining and n_uops > 0:
            load_fraction = mix.load_fraction
            loads_per_rob = load_fraction * config.rob_size
            hits_per_rob = (
                (llc_hits / loads) * loads_per_rob if loads > 0 else 0.0
            )
            f1 = micro.memory.independent_load_fraction() or 1.0
            chain_cycles = llc_chain_penalty(
                hits_per_rob, f1, loads_per_rob, deff, n_uops, config
            )

        stack = {
            "base": base,
            "branch": branch_cycles,
            "icache": icache_cycles,
            "llc_chain": chain_cycles,
            "dram": dram_cycles,
        }
        cycles = sum(stack.values())
        return WindowPrediction(
            start=micro.start,
            instructions=n_instr,
            cycles=cycles,
            stack=stack,
            deff=deff,
            mlp=mlp,
            limiter=limits.limiter(),
            llc_misses=m_llc,
        )

    # ------------------------------------------------------------------

    def predict(
        self,
        profile: ApplicationProfile,
        config: MachineConfig,
    ) -> Prediction:
        """Evaluate the interval model over all micro-traces."""
        miss_rate = self.entropy_model.predict_from_profile(
            profile.branch_entropy
        )

        total_cycles = 0.0
        total_instr = 0.0
        total_uops = 0.0
        total_misses = 0.0
        total_mispredictions = 0.0
        mlp_weighted = 0.0
        mlp_weight = 0.0
        stack = {key: 0.0 for key in STACK_COMPONENTS}
        windows: List[WindowPrediction] = []

        for micro in profile.micro_traces:
            weight = self._window_weight(profile, micro)
            if weight == 0.0:
                continue
            window = self._evaluate_window(profile, micro, config, miss_rate)
            windows.append(window)
            total_cycles += window.cycles * weight
            total_instr += window.instructions * weight
            total_uops += micro.mix.num_uops * weight
            for key in stack:
                stack[key] += window.stack[key] * weight
            total_misses += window.llc_misses * weight
            dram = window.stack["dram"]
            if dram > 0.0:
                mlp_weighted += window.mlp * dram
                mlp_weight += dram
            total_mispredictions += (
                miss_rate * micro.mix.counts.get(UopKind.BRANCH, 0) * weight
            )

        mlp = mlp_weighted / mlp_weight if mlp_weight else 1.0
        return Prediction(
            config_name=config.name,
            workload=profile.name,
            cycles=total_cycles,
            instructions=total_instr,
            uops=total_uops,
            stack=stack,
            windows=windows,
            mlp=mlp,
            llc_load_misses=total_misses,
            branch_mispredictions=total_mispredictions,
            frequency_ghz=config.frequency_ghz,
        )

    def predict_batch(
        self,
        profile: ApplicationProfile,
        configs: Sequence[MachineConfig],
    ) -> List[Prediction]:
        """Batched :meth:`predict`: one array program over all configs.

        Accepts a config sequence or a prebuilt
        :class:`~repro.core.batch.BatchConfigs`.  Results (and any
        attached :class:`ModelCache` state) are bitwise identical to
        calling :meth:`predict` per configuration.
        """
        from repro.core.batch import predict_interval_batch

        return predict_interval_batch(self, profile, configs)
