"""Memory-side penalty models: MSHR cap, bus queuing, LLC hit chaining.

* :func:`mshr_soft_cap` -- thesis Eq 4.4: misses beyond the MSHR file
  overlap only partially with outstanding ones ('soft' cap on MLP).
* :func:`bus_queue_cycles` -- thesis Eqs 4.5--4.6: concurrent misses
  serialize on the memory bus; store misses are folded into the
  concurrency factor because they consume bandwidth even though they do
  not stall the core.
* :func:`llc_chain_penalty` -- thesis Eqs 4.7--4.12: chains of dependent
  LLC *hits* whose serialized latency exceeds the ROB fill time show up
  as a visible penalty.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.machine import MachineConfig


def mshr_soft_cap(
    mlp: float,
    config: MachineConfig,
) -> float:
    """Apply the MSHR soft cap (Eq 4.4) to a raw MLP estimate.

    With ``M`` MSHR entries, ``min(mlp, M)`` misses proceed in parallel;
    the remainder wait an average ``T_MSHRfree`` before overlapping for
    the rest of the DRAM access:

        MLP = DRAM_MSHR + DRAM_wait * (T_DRAM - T_MSHRfree) / T_DRAM

    ``T_MSHRfree`` is the average queueing delay before a slot frees:
    the k-th waiting request waits ~k * T/M (entries retire at rate M/T),
    so the average over W waiters is (W+1)/2 * T/M, clamped at T -- deep
    overflow degenerates to the hard cap M, light overflow overlaps
    most of the access (the thesis' soft-cap behaviour).
    """
    entries = max(1, config.mshr_entries)
    if mlp <= entries:
        return mlp
    t_dram = float(config.dram_latency)
    in_flight = float(entries)
    waiting = mlp - in_flight
    t_free = min(t_dram, (waiting + 1.0) / 2.0 * t_dram / in_flight)
    return in_flight + waiting * (t_dram - t_free) / t_dram


def bus_queue_cycles(
    mlp: float,
    llc_load_misses: float,
    llc_store_misses: float,
    config: MachineConfig,
) -> float:
    """Average per-miss bus queuing latency (Eqs 4.5--4.6).

    The i-th of MLP' concurrent misses waits i bus-transfer slots, so the
    mean bus latency is ``(MLP' + 1)/2 * c_transfer``.  MLP' rescales the
    load-only MLP by total (load+store) traffic; multiple channels divide
    the effective concurrency.
    """
    transfer = float(config.bus_transfer_cycles)
    if llc_load_misses <= 0.0:
        return transfer
    scaled = mlp * (llc_load_misses + llc_store_misses) / llc_load_misses
    scaled /= max(1, config.memory_channels)
    scaled = max(scaled, 1.0)
    return (scaled + 1.0) / 2.0 * transfer


def llc_chain_penalty(
    llc_hits_per_rob: float,
    independent_load_fraction: float,
    loads_per_rob: float,
    deff: float,
    num_uops: float,
    config: MachineConfig,
) -> float:
    """Total chained-LLC-hit penalty over ``num_uops`` uops (Eqs 4.7-4.12).

    ``llc_hits_per_rob``: expected loads per ROB window that miss L2 but
    hit the LLC.  ``independent_load_fraction`` is f(1) from the
    inter-load dependence distribution, so the number of load dependence
    paths per ROB is ``f(1) * loads_per_rob``.
    """
    if llc_hits_per_rob <= 0.0 or loads_per_rob <= 0.0:
        return 0.0
    paths = max(independent_load_fraction * loads_per_rob, 1.0)
    loads_per_path = loads_per_rob / paths

    chain_avg = llc_hits_per_rob / paths
    chain_max = min(llc_hits_per_rob, loads_per_path)
    chain_expected = chain_avg + max(chain_max - chain_avg, 0.0) / paths

    serialized = config.llc.latency * chain_expected
    rob_fill = config.rob_size / max(deff, 1e-6)
    per_window = max(0.0, serialized - rob_fill)
    windows = num_uops / config.rob_size
    return per_window * windows


def icache_penalty(
    instruction_count: float,
    level_miss_ratios: Sequence[float],
    config: MachineConfig,
) -> float:
    """Instruction-cache penalty: sum_i m_ILi * c_{Li+1} (Eq 3.1 term 3).

    ``level_miss_ratios`` are per-level I-stream miss ratios (L1I, L2,
    LLC); each level's misses pay the next level's access latency.
    """
    next_latency = [
        config.l2.latency, config.llc.latency, config.dram_latency
    ]
    penalty = 0.0
    for ratio, latency in zip(level_miss_ratios, next_latency):
        penalty += instruction_count * ratio * latency
    return penalty
