"""Effective dispatch rate modeling (thesis §3.3--3.4, Eq 3.10).

The base component of the interval model divides the uop count by the
*effective* dispatch rate

    Deff = min( D,
                ROB / (lat * CP(ROB)),
                N / max_p N_p,
                min_i N * U_i / N_i,
                min_j N * U_j / (N_j * lat_j) )

whose terms are: the physical dispatch width; the dependence-chain limit
(Little's law over the ROB, Eq 3.7); the busiest issue port; pipelined
functional-unit contention; and non-pipelined unit occupancy.

Ports are assigned with the thesis' greedy schedule: uop kinds servable by
a single port go first, then multi-port kinds are balanced over their
least-loaded ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.machine import MachineConfig, NON_PIPELINED, PortSpec
from repro.isa import UopKind
from repro.profiler.dependences import DependenceChains
from repro.profiler.mix import UopMix


def schedule_ports(
    uop_counts: Mapping[UopKind, int],
    ports: Sequence[PortSpec],
) -> List[float]:
    """Greedy issue-port schedule; returns per-port activity counts.

    Single-port kinds are committed first (they have no choice), then each
    remaining kind is spread over its candidate ports, always topping up
    the least-loaded one (thesis §3.4's balanced split).
    """
    activity = [0.0] * len(ports)
    single: List[Tuple[UopKind, int]] = []
    multi: List[Tuple[UopKind, int]] = []
    for kind, count in uop_counts.items():
        serving = [i for i, port in enumerate(ports) if kind in port.kinds]
        if not serving:
            # Kind unservable on this machine: treat as using the least
            # loaded port so the model degrades gracefully.
            multi.append((kind, count))
        elif len(serving) == 1:
            single.append((kind, count))
        else:
            multi.append((kind, count))

    for kind, count in single:
        index = next(
            i for i, port in enumerate(ports) if kind in port.kinds
        )
        activity[index] += count

    # Schedule scarcer kinds first so the balancing has room to even out.
    multi.sort(key=lambda item: item[1])
    for kind, count in multi:
        serving = [i for i, port in enumerate(ports) if kind in port.kinds]
        if not serving:
            serving = list(range(len(ports)))
        remaining = float(count)
        # Water-filling: raise the lowest-loaded serving ports together.
        while remaining > 1e-9:
            serving.sort(key=lambda i: activity[i])
            lowest = activity[serving[0]]
            # Ports tied at the lowest level.
            tied = [i for i in serving if activity[i] - lowest < 1e-9]
            if len(tied) == len(serving):
                share = remaining / len(tied)
                for i in tied:
                    activity[i] += share
                remaining = 0.0
                break
            next_level = min(
                activity[i] for i in serving if activity[i] - lowest >= 1e-9
            )
            fill = min(remaining, (next_level - lowest) * len(tied))
            for i in tied:
                activity[i] += fill / len(tied)
            remaining -= fill
    return activity


@dataclass
class DispatchLimits:
    """The competing limits of Eq 3.10, for analysis and plotting."""

    dispatch_width: float
    dependences: float
    functional_ports: float
    functional_units: float  # pipelined and non-pipelined combined

    def effective(self) -> float:
        return max(
            1e-6,
            min(
                self.dispatch_width,
                self.dependences,
                self.functional_ports,
                self.functional_units,
            ),
        )

    def limiter(self) -> str:
        """Name of the binding constraint (Fig 3.6)."""
        values = {
            "dispatch": self.dispatch_width,
            "dependences": self.dependences,
            "functional_port": self.functional_ports,
            "functional_unit": self.functional_units,
        }
        return min(values, key=values.get)


def effective_dispatch_rate(
    mix: UopMix,
    chains: DependenceChains,
    config: MachineConfig,
) -> DispatchLimits:
    """Evaluate every term of Eq 3.10 for one instruction mix."""
    n = max(mix.num_uops, 1)
    latencies = config.latencies()
    average_latency = mix.average_latency(latencies)

    # Term 2: ROB / (lat * CP(ROB)).
    cp = max(chains.cp.at(config.rob_size), 1.0)
    dependences = config.rob_size / (average_latency * cp)

    # Term 3: the busiest port limits throughput to N / N_p.
    activity = schedule_ports(mix.counts, config.ports)
    busiest = max(activity) if activity else 0.0
    functional_ports = n / busiest if busiest > 0 else float(
        config.dispatch_width
    )

    # Terms 4 and 5: pipelined and non-pipelined functional units.
    functional_units = float("inf")
    for kind, count in mix.counts.items():
        if count == 0:
            continue
        units = max(config.units_of(kind), 1)
        if kind in NON_PIPELINED:
            limit = n * units / (count * config.latency_of(kind))
        else:
            limit = n * units / count
        functional_units = min(functional_units, limit)
    if functional_units == float("inf"):
        functional_units = float(config.dispatch_width)

    return DispatchLimits(
        dispatch_width=float(config.dispatch_width),
        dependences=dependences,
        functional_ports=functional_ports,
        functional_units=functional_units,
    )
