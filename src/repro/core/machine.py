"""Machine configurations: cores, memory hierarchies, design spaces.

The reference configuration follows thesis Table 6.1/6.4 (Intel
Nehalem-like): 4-wide dispatch, 128-entry ROB, 6 issue ports, 32 KB L1I/D,
256 KB L2, 8 MB LLC, 200-cycle DRAM, 10 MSHRs, tournament-class branch
predictor, 2.66 GHz.

The design space (Table 6.3) is the cartesian product of three values for
each of five parameters: dispatch width, ROB size, L1D size, LLC size and
frequency -- 3^5 = 243 configurations, matching the thesis count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.caches.cache import CacheConfig
from repro.isa import UopKind


@dataclass(frozen=True)
class PortSpec:
    """One issue port and the uop kinds it can forward."""

    name: str
    kinds: FrozenSet[UopKind]


def nehalem_ports() -> Tuple[PortSpec, ...]:
    """The six-port Nehalem issue stage (thesis Fig 3.5)."""
    return (
        PortSpec("P0", frozenset({UopKind.INT_ALU, UopKind.FP_MUL,
                                  UopKind.DIV, UopKind.MOVE})),
        PortSpec("P1", frozenset({UopKind.INT_ALU, UopKind.INT_MUL,
                                  UopKind.FP_ALU, UopKind.MOVE})),
        PortSpec("P2", frozenset({UopKind.LOAD})),
        PortSpec("P3", frozenset({UopKind.STORE})),
        PortSpec("P4", frozenset({UopKind.STORE})),
        PortSpec("P5", frozenset({UopKind.BRANCH, UopKind.MOVE})),
    )


def narrow_ports() -> Tuple[PortSpec, ...]:
    """A three-port low-power issue stage."""
    return (
        PortSpec("P0", frozenset({UopKind.INT_ALU, UopKind.INT_MUL,
                                  UopKind.FP_ALU, UopKind.FP_MUL,
                                  UopKind.DIV, UopKind.MOVE})),
        PortSpec("P1", frozenset({UopKind.LOAD, UopKind.STORE})),
        PortSpec("P2", frozenset({UopKind.INT_ALU, UopKind.BRANCH,
                                  UopKind.MOVE})),
    )


#: Non-pipelined uop kinds (occupy their unit for the full latency).
NON_PIPELINED: FrozenSet[UopKind] = frozenset({UopKind.DIV})


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine description consumed by model and simulator."""

    name: str = "nehalem"
    # Core
    dispatch_width: int = 4
    rob_size: int = 128
    frontend_refill: int = 6  # c_fe: front-end refill after redirect
    ports: Tuple[PortSpec, ...] = field(default_factory=nehalem_ports)
    uop_latencies: Tuple[Tuple[UopKind, int], ...] = (
        (UopKind.INT_ALU, 1),
        (UopKind.INT_MUL, 3),
        (UopKind.FP_ALU, 3),
        (UopKind.FP_MUL, 5),
        (UopKind.DIV, 18),
        (UopKind.LOAD, 2),
        (UopKind.STORE, 1),
        (UopKind.BRANCH, 1),
        (UopKind.MOVE, 1),
    )
    # Branch prediction
    predictor: str = "tournament"
    # Memory hierarchy (L1D, L2, LLC); L1I mirrors L1D geometry.
    l1d: CacheConfig = CacheConfig(32 * 1024, 8, 64, latency=4)
    l2: CacheConfig = CacheConfig(256 * 1024, 8, 64, latency=12)
    llc: CacheConfig = CacheConfig(8 * 1024 * 1024, 16, 64, latency=30)
    l1i: CacheConfig = CacheConfig(32 * 1024, 8, 64, latency=1)
    dram_latency: int = 200
    bus_transfer_cycles: int = 16  # cache line / bus width, per access
    memory_channels: int = 1
    mshr_entries: int = 10
    # Prefetching
    prefetch: bool = False
    prefetch_table: int = 64
    prefetch_degree: int = 1
    dram_page_bytes: int = 4096
    # Clock / voltage (power model)
    frequency_ghz: float = 2.66
    vdd: float = 1.1
    technology_nm: int = 45

    # ------------------------------------------------------------------

    def latency_of(self, kind: UopKind) -> int:
        for k, latency in self.uop_latencies:
            if k is kind:
                return latency
        return 1

    def latencies(self) -> Dict[UopKind, int]:
        return dict(self.uop_latencies)

    def cache_levels(self) -> List[CacheConfig]:
        return [self.l1d, self.l2, self.llc]

    def level_sizes(self) -> List[int]:
        return [c.size_bytes for c in self.cache_levels()]

    def level_latencies(self) -> List[int]:
        """Hit latency per level, then DRAM."""
        return [c.latency for c in self.cache_levels()] + [self.dram_latency]

    def units_of(self, kind: UopKind) -> int:
        """Number of functional units of one kind (one per serving port)."""
        return sum(1 for port in self.ports if kind in port.kinds)

    def with_frequency(self, frequency_ghz: float,
                       vdd: Optional[float] = None) -> "MachineConfig":
        """A DVFS variant of this config (latencies stay in cycles)."""
        new_vdd = vdd if vdd is not None else dvfs_vdd(frequency_ghz)
        return replace(
            self,
            name=f"{self.name}@{frequency_ghz:.2f}GHz",
            frequency_ghz=frequency_ghz,
            vdd=new_vdd,
        )


def dvfs_vdd(frequency_ghz: float) -> float:
    """Supply voltage for a frequency (linear DVFS rail, 45 nm-ish).

    Anchored at 2.66 GHz -> 1.1 V with ~0.12 V per GHz slope, floored at
    the near-threshold limit.
    """
    return max(0.7, 1.1 + 0.12 * (frequency_ghz - 2.66))


def nehalem() -> MachineConfig:
    """The reference architecture (thesis Table 6.1/6.4)."""
    return MachineConfig()


def low_power_core() -> MachineConfig:
    """A small in-order-ish core used for comparison plots (Fig 6.13)."""
    return MachineConfig(
        name="low-power",
        dispatch_width=2,
        rob_size=32,
        frontend_refill=4,
        ports=narrow_ports(),
        l1d=CacheConfig(16 * 1024, 4, 64, latency=3),
        l2=CacheConfig(128 * 1024, 8, 64, latency=10),
        llc=CacheConfig(1 * 1024 * 1024, 8, 64, latency=24),
        l1i=CacheConfig(16 * 1024, 4, 64, latency=1),
        mshr_entries=4,
        frequency_ghz=1.2,
        vdd=0.85,
    )


#: Design-space axes (Table 6.3): 3 values x 5 parameters = 243 cores.
DESIGN_SPACE_AXES: Dict[str, Sequence] = {
    "dispatch_width": (2, 4, 6),
    "rob_size": (64, 128, 256),
    "l1d_kb": (16, 32, 64),
    "llc_mb": (2, 4, 8),
    "frequency_ghz": (1.66, 2.66, 3.66),
}


#: Parameters understood by :func:`config_from_params`, with defaults.
CONFIG_PARAM_DEFAULTS: Dict[str, object] = {
    "dispatch_width": 4,
    "rob_size": 128,
    "l1d_kb": 32,
    "l2_kb": 256,
    "llc_mb": 8,
    "frequency_ghz": 2.66,
    "mshr_entries": None,  # None: derived from dispatch width
    "prefetch": False,
}


def config_from_params(params: Dict[str, object]) -> MachineConfig:
    """Build a named design-space configuration from a parameter dict.

    This is the single mapping from abstract design-space coordinates
    (``dispatch_width``, ``rob_size``, ``l1d_kb``, ``l2_kb``,
    ``llc_mb``, ``frequency_ghz``, ``mshr_entries``, ``prefetch``) to a
    concrete :class:`MachineConfig`, shared by the historical
    :func:`design_space` grid and the declarative
    :class:`~repro.explore.space.DesignSpace`.  Omitted parameters take
    the Nehalem-like reference values; for parameters at their default,
    nothing extra is appended to the generated name, so dicts drawn
    from the classic five axes reproduce the historical config names
    (and configs) bitwise.

    Parameters
    ----------
    params:
        Mapping from parameter name to value.  Unknown names raise
        ``ValueError`` (catching typos in externally supplied spaces).

    Returns
    -------
    MachineConfig
        The fully populated configuration.
    """
    unknown = set(params) - set(CONFIG_PARAM_DEFAULTS)
    if unknown:
        raise ValueError(
            f"unknown design-space parameter(s): {sorted(unknown)}; "
            f"known: {sorted(CONFIG_PARAM_DEFAULTS)}"
        )
    width = int(params.get("dispatch_width", 4))
    rob = int(params.get("rob_size", 128))
    l1_kb = int(params.get("l1d_kb", 32))
    l2_kb = int(params.get("l2_kb", 256))
    llc_mb = params.get("llc_mb", 8)
    freq = params.get("frequency_ghz", 2.66)
    mshr = params.get("mshr_entries")
    prefetch = bool(params.get("prefetch", False))
    name = f"w{width}-rob{rob}-l1{l1_kb}k-llc{llc_mb}m-f{freq:.2f}"
    if l2_kb != 256:
        name += f"-l2{l2_kb}k"
    if mshr is not None:
        name += f"-mshr{int(mshr)}"
    if prefetch:
        name += "-pf"
    return MachineConfig(
        name=name,
        dispatch_width=width,
        rob_size=rob,
        ports=nehalem_ports() if width >= 4 else narrow_ports(),
        l1d=CacheConfig(l1_kb * 1024, 8, 64, latency=4),
        l1i=CacheConfig(l1_kb * 1024, 8, 64, latency=1),
        l2=CacheConfig(l2_kb * 1024, 8, 64, latency=12),
        llc=CacheConfig(int(llc_mb * 1024) * 1024, 16, 64, latency=30),
        mshr_entries=(max(4, 2 + width * 2) if mshr is None
                      else int(mshr)),
        prefetch=prefetch,
        frequency_ghz=freq,
        vdd=dvfs_vdd(freq),
    )


def design_space(
    axes: Optional[Dict[str, Sequence]] = None,
) -> List[MachineConfig]:
    """Enumerate the design space (243 configs with the default axes)."""
    axes = axes or DESIGN_SPACE_AXES
    names = list(axes)
    return [
        config_from_params(dict(zip(names, values)))
        for values in itertools.product(*(axes[n] for n in names))
    ]


@dataclass(frozen=True)
class DVFSPoint:
    """One DVFS operating point."""

    frequency_ghz: float
    vdd: float


def dvfs_points() -> List[DVFSPoint]:
    """The DVFS grid of Table 7.2."""
    return [
        DVFSPoint(f, dvfs_vdd(f))
        for f in (1.2, 1.6, 2.0, 2.4, 2.66, 3.0, 3.4)
    ]
