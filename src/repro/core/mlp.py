"""Memory-level parallelism models (thesis §4.3--4.5, CAL'18).

Two alternative estimators for the MLP divisor of the interval equation:

* :func:`cold_miss_mlp` -- the ISPASS'15 model (Eqs 4.1--4.3): burstiness
  is carried by the cold-miss window distribution; conflict/capacity
  misses are assumed uniformly spread.
* :func:`stride_mlp` -- the CAL'18 model: a *virtual instruction stream*
  is rebuilt from per-static-load spacing and stride distributions, each
  occurrence is marked hit/miss through the (global) StatStack transform
  applied to its load's local reuse distances, and an abstract model
  hovers ROB-sized windows over the stream counting independent misses.
  The stride prefetcher's effect (Eq 4.13) is applied as fractional miss
  weights on prefetchable occurrences.

Both return an :class:`MLPResult` whose ``mlp`` is >= 1 by construction
(MLP is defined as outstanding misses given at least one).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.machine import MachineConfig
from repro.profiler.memory import (
    ColdMissProfile,
    MicroTraceMemoryProfile,
    StaticLoadProfile,
    classify_strides,
)
from repro.statstack.model import StatStack


@dataclass
class MLPResult:
    """MLP estimate plus the window-level data downstream models need."""

    mlp: float
    llc_misses: float          # (possibly fractional) misses in the span
    window_misses: List[float] = field(default_factory=list)

    def clamped(self, lower: float = 1.0) -> "MLPResult":
        return MLPResult(
            mlp=max(self.mlp, lower),
            llc_misses=self.llc_misses,
            window_misses=self.window_misses,
        )


def _independence_factor(
    load_dependence: Mapping[int, float], miss_rate: float
) -> float:
    """sum_l f(l) * (1 - M)^(l-1): probability a miss is independent.

    A load that is the l-th load on its dependence chain issues in
    parallel with an earlier miss only if none of its l-1 predecessors
    missed (thesis Eq 4.1 reasoning).
    """
    if not load_dependence:
        return 1.0
    survival = max(0.0, min(1.0, 1.0 - miss_rate))
    return sum(
        fraction * (survival ** max(depth - 1, 0))
        for depth, fraction in load_dependence.items()
    )


def cold_miss_mlp(
    cold: ColdMissProfile,
    load_dependence: Mapping[int, float],
    llc_load_miss_rate: float,
    cold_fraction: float,
    load_fraction: float,
    config: MachineConfig,
    line_size: int = 64,
) -> MLPResult:
    """The cold-miss MLP model (thesis Eqs 4.1--4.3).

    ``cold_fraction`` is the fraction of LLC load misses that are cold;
    ``load_fraction`` the fraction of uops that are loads.
    """
    rob = config.rob_size
    m_cold_window = cold.cold_misses_per_occupied_window(rob, line_size)
    loads_per_rob = load_fraction * rob
    m_cf_per_rob = max(0.0, llc_load_miss_rate * (1.0 - cold_fraction)) * (
        loads_per_rob
    )

    independence = _independence_factor(load_dependence, llc_load_miss_rate)
    mlp_cold = m_cold_window * independence
    mlp_cf = m_cf_per_rob * independence

    cold_weight = min(max(cold_fraction, 0.0), 1.0)
    mlp = cold_weight * mlp_cold + (1.0 - cold_weight) * mlp_cf
    return MLPResult(mlp=mlp, llc_misses=0.0).clamped()


# ----------------------------------------------------------------------
# Stride MLP model
# ----------------------------------------------------------------------


@dataclass
class VirtualLoad:
    """One load occurrence in the reconstructed virtual stream."""

    position: int
    pc: int
    miss_weight: float  # 0 = hit; 1 = full DRAM miss; (0,1) = partly hidden
    independence: float = 1.0  # P(no predecessor load on its chain misses)


@dataclass
class VirtualStream:
    """The reconstructed instruction stream skeleton (loads only)."""

    loads: List[VirtualLoad]
    length: int

    @property
    def total_miss_weight(self) -> float:
        return sum(load.miss_weight for load in self.loads)


def _per_load_miss_probability(
    load: StaticLoadProfile,
    statstack: StatStack,
    cache_bytes: int,
) -> float:
    """Miss probability of one static load at one cache size.

    Local (in-micro-trace) reuse distances go through the global StatStack
    transform; occurrences with no local reuse fall back to the global
    load miss ratio (their reuse, if any, is beyond the micro-trace).
    """
    local_hist: Dict[int, int] = {}
    for distance in load.local_reuse:
        local_hist[distance] = local_hist.get(distance, 0) + 1
    n_local = len(load.local_reuse)
    n_total = load.occurrences
    n_far = n_total - n_local
    global_ratio = statstack.miss_ratio(cache_bytes, kind="load")
    if n_total == 0:
        return global_ratio
    p_local = (
        statstack.miss_ratio_of(local_hist, 0, cache_bytes)
        if n_local else 0.0
    )
    return (n_local * p_local + n_far * global_ratio) / n_total


def _new_line_flags(
    load: StaticLoadProfile, line_size: int
) -> List[bool]:
    """Which occurrences touch a different line than their predecessor.

    Reconstructed from the stride distribution: dominant strides replayed
    cyclically from address 0 (only line *changes* matter, not absolute
    addresses).  Random/unique loads change lines on every occurrence.
    """
    category, strides = classify_strides(load)
    n = load.occurrences
    if category in ("RANDOM", "UNIQUE") or not strides:
        return [True] * n
    flags = [True]  # first occurrence always starts a line
    addr = 0
    for k in range(1, n):
        stride = strides[(k - 1) % len(strides)]
        new_addr = addr + stride
        flags.append(new_addr // line_size != addr // line_size)
        addr = new_addr
    return flags


def build_virtual_stream(
    memory: MicroTraceMemoryProfile,
    statstack: StatStack,
    config: MachineConfig,
    line_size: int = 64,
    deff: float = 4.0,
    target_misses: Optional[float] = None,
    load_reuse_by_pc: Optional[Dict[int, Dict[int, int]]] = None,
    cold_by_pc: Optional[Dict[int, int]] = None,
) -> VirtualStream:
    """Rebuild the virtual load stream and mark (weighted) LLC misses.

    Misses are assigned per static load by deterministic thinning: the
    load's miss probability accumulates over its new-line occurrences and
    emits a miss every time the accumulator crosses 1 -- preserving both
    the expected miss count and the recurrence structure (burstiness).

    ``target_misses`` (when given) rescales per-load miss probabilities so
    the stream's expected miss count matches the micro-trace's attributed
    StatStack estimate -- per-static-load probabilities alone blend in the
    global miss ratio and can misplace phase-local behaviour.

    When ``config.prefetch`` is set, prefetchable occurrences (strided,
    stride within a DRAM page, trainer still in the prefetch table) have
    their miss weight reduced per the timeliness rule of Eq 4.13.
    """
    llc_bytes = config.llc.size_bytes
    loads: List[VirtualLoad] = []

    # Emulated prefetcher training table (LRU over static loads).
    table: "OrderedDict[int, int]" = OrderedDict()  # pc -> last position

    per_load_flags: Dict[int, List[bool]] = {}
    per_load_prob: Dict[int, float] = {}
    per_load_category: Dict[int, Tuple[str, List[int]]] = {}
    for pc, load in memory.static_loads.items():
        per_load_flags[pc] = _new_line_flags(load, line_size)
        attributed = (
            load_reuse_by_pc.get(pc) if load_reuse_by_pc is not None
            else None
        )
        if attributed is not None or (cold_by_pc and pc in cold_by_pc):
            # Exact per-load attributed reuse (full-stream distances).
            hist = attributed or {}
            cold = cold_by_pc.get(pc, 0) if cold_by_pc else 0
            seen = sum(hist.values()) + cold
            probability = statstack.miss_ratio_of(hist, cold, llc_bytes)
            # Occurrences the attribution pass didn't see keep the
            # local/global estimate.
            if seen < load.occurrences:
                fallback = _per_load_miss_probability(
                    load, statstack, llc_bytes
                )
                probability = (
                    seen * probability
                    + (load.occurrences - seen) * fallback
                ) / load.occurrences
            per_load_prob[pc] = probability
        else:
            per_load_prob[pc] = _per_load_miss_probability(
                load, statstack, llc_bytes
            )
        per_load_category[pc] = classify_strides(load)

    if target_misses is not None:
        expected = sum(
            per_load_prob[pc] * memory.static_loads[pc].occurrences
            for pc in memory.static_loads
        )
        if expected > 0.0:
            factor = target_misses / expected
            per_load_prob = {
                pc: min(1.0, p * factor)
                for pc, p in per_load_prob.items()
            }

    occurrence_index: Dict[int, int] = {pc: 0 for pc in memory.static_loads}
    accumulator: Dict[int, float] = {pc: 0.5 for pc in memory.static_loads}
    previous_position: Dict[int, int] = {}

    # Replay loads in stream order.
    ordered: List[Tuple[int, int]] = []  # (position, pc)
    for pc, load in memory.static_loads.items():
        for position in load.positions:
            ordered.append((position, pc))
    ordered.sort()

    for position, pc in ordered:
        k = occurrence_index[pc]
        occurrence_index[pc] = k + 1
        flags = per_load_flags[pc]
        new_line = flags[k] if k < len(flags) else True
        load = memory.static_loads[pc]

        miss_weight = 0.0
        if new_line:
            n = load.occurrences
            n_new = max(1, sum(flags))
            probability = per_load_prob[pc] * n / n_new
            accumulator[pc] += min(probability, 1.0)
            if accumulator[pc] >= 1.0:
                accumulator[pc] -= 1.0
                miss_weight = 1.0

        # Prefetcher (Eq 4.13): only strided loads within a page train it.
        if miss_weight > 0.0 and config.prefetch:
            category, strides = per_load_category[pc]
            strided = category.startswith("STRIDE") or category.startswith(
                "FILTER"
            )
            in_page = strides and all(
                abs(s) < config.dram_page_bytes for s in strides
            )
            trainer = table.get(pc)
            if strided and in_page and trainer is not None:
                gap = position - trainer
                if gap >= config.rob_size:
                    miss_weight = 0.0  # timely prefetch
                else:
                    hidden = gap / max(deff, 1e-6)
                    miss_weight = max(
                        0.0,
                        (config.dram_latency - hidden) / config.dram_latency,
                    )
        # Train the table on every occurrence of the load.
        if pc in table:
            table.move_to_end(pc)
        elif config.prefetch:
            if len(table) >= config.prefetch_table:
                table.popitem(last=False)
        table[pc] = position
        if not config.prefetch:
            # Keep table bounded even when unused (cheap no-op semantics).
            if len(table) > 4096:
                table.popitem(last=False)

        # Independence: a miss overlaps earlier misses only if the l-1
        # predecessor loads on its chain all hit; chains mostly reuse the
        # same static load (pointer chases), so its own probability is
        # the chain-miss proxy.
        depth = load.mean_depth
        chain_p = min(1.0, per_load_prob[pc])
        independence = (1.0 - chain_p) ** max(depth - 1.0, 0.0)

        loads.append(VirtualLoad(position=position, pc=pc,
                                 miss_weight=miss_weight,
                                 independence=independence))

    return VirtualStream(loads=loads, length=memory.length)


def stride_mlp(
    stream: VirtualStream,
    load_dependence: Mapping[int, float],
    config: MachineConfig,
    deff: float = 4.0,
) -> MLPResult:
    """Hover ROB-sized windows over the virtual stream (thesis §4.5).

    MLP of a window is its (weighted) miss count scaled per static load by
    the chain-independence factor; the micro-trace MLP is the mean over
    windows containing at least one miss.

    A second *pipelined-MLP* term captures overlap across consecutive
    windows: independent misses spaced s cycles apart with latency c keep
    c/s requests outstanding even when each ROB window holds only one (the
    ROB slides, it does not step).  The window MLP is the larger of the
    in-window parallelism and this train overlap, which only independent
    misses enjoy.
    """
    rob = config.rob_size
    memory_latency = float(config.llc.latency + config.dram_latency)
    window_misses: List[float] = []
    window_independent: List[float] = []
    if stream.length == 0:
        return MLPResult(mlp=1.0, llc_misses=0.0)

    # Global train-overlap bound: independent misses at density d per uop
    # overlap when the next one enters the (sliding) ROB before the
    # current one returns.  Outstanding count = min(latency /
    # spacing_cycles, ROB / spacing_uops, MSHRs), with the spacing taken
    # from the micro-trace-global independent-miss density (per-window
    # density is quantization-biased at small ROB sizes).
    total_raw = sum(
        load.miss_weight * load.independence for load in stream.loads
    )
    density = total_raw / stream.length  # independent misses per uop
    pipeline_global = 0.0
    if density > 0.0:
        pipeline_global = min(
            memory_latency * density * max(deff, 1e-6),
            rob * density,
            float(max(config.mshr_entries, 1)),
        )

    for start in range(0, stream.length, rob):
        end = start + rob
        weight = 0.0
        # Group the window's misses by static load: a serialized chain
        # (pointer chase) keeps one miss outstanding no matter how many of
        # its occurrences fall in the window, while independent loads
        # (depth ~1) each contribute fully.  Parallel chains therefore
        # add up -- two chases overlap with each other even though each is
        # internally serial.
        per_pc_weight: Dict[int, float] = {}
        per_pc_independence: Dict[int, float] = {}
        for load in stream.loads:
            if start <= load.position < end and load.miss_weight > 0.0:
                weight += load.miss_weight
                per_pc_weight[load.pc] = (
                    per_pc_weight.get(load.pc, 0.0) + load.miss_weight
                )
                per_pc_independence[load.pc] = load.independence
        if weight > 0.0:
            independent = 0.0
            raw_independent = 0.0  # chain-free miss mass only
            for pc, m_pc in per_pc_weight.items():
                head = min(m_pc, 1.0)
                tail = max(m_pc - 1.0, 0.0)
                chain_independence = per_pc_independence[pc]
                independent += head + tail * chain_independence
                raw_independent += m_pc * chain_independence
            independent = max(independent, 1.0)
            window_misses.append(weight)
            window_independent.append(
                max(independent, pipeline_global, 1.0)
            )

    if not window_misses:
        return MLPResult(mlp=1.0, llc_misses=stream.total_miss_weight)

    mlp = sum(window_independent) / len(window_independent)
    return MLPResult(
        mlp=mlp,
        llc_misses=stream.total_miss_weight,
        window_misses=window_misses,
    ).clamped()
