"""Branch misprediction penalty (thesis §3.5, Algorithm 3.2).

The penalty of one misprediction is the branch *resolution time* plus the
fixed front-end refill.  The resolution time depends on how full the ROB
is when the mispredicted branch dispatches, which the 'leaky bucket'
algorithm of Michaud et al. estimates: instructions enter at the dispatch
width and leave at the independent-instruction rate I(ROB) until the
interval's useful instructions are exhausted; the branch then resolves
after ``lat * ABP(ROB_occupancy)`` cycles.
"""

from __future__ import annotations

from repro.core.machine import MachineConfig
from repro.profiler.dependences import DependenceChains


def _independent_instructions(
    chains: DependenceChains, rob_occupancy: float, average_latency: float
) -> float:
    """I(ROB) = ROB / (lat * CP(ROB)) (thesis Eq 3.6)."""
    occupancy = max(rob_occupancy, 1.0)
    cp = max(chains.cp.at(int(occupancy)), 1.0)
    return occupancy / (average_latency * cp)


def branch_resolution_time(
    chains: DependenceChains,
    average_latency: float,
    instructions_per_interval: float,
    config: MachineConfig,
) -> float:
    """Algorithm 3.2: resolution time of a mispredicted branch.

    ``instructions_per_interval`` is the number of (useful) uops between
    two mispredictions.  Returns cycles from dispatch to execution of the
    branch.
    """
    dispatch_width = float(config.dispatch_width)
    rob_size = float(config.rob_size)
    remaining = max(instructions_per_interval, 0.0)
    occupancy = 0.0

    # The loop always terminates: each iteration removes at least
    # ``leave >= some positive amount`` from ``remaining`` via the
    # enter/leave cycle, and we additionally bound the iteration count.
    max_iterations = int(remaining / max(1.0, 1.0)) + config.rob_size + 16
    iterations = 0
    while remaining > dispatch_width and iterations < max_iterations:
        iterations += 1
        if occupancy + dispatch_width <= rob_size:
            remaining -= dispatch_width
            occupancy += dispatch_width
        else:
            entered = rob_size - occupancy
            remaining -= entered
            occupancy = rob_size
        leave = min(
            _independent_instructions(chains, occupancy, average_latency),
            dispatch_width,
        )
        leave = max(leave, 1.0)  # guard against stagnation
        occupancy = max(0.0, occupancy - leave)

    abp = max(chains.abp.at(max(int(occupancy), 1)), 1.0)
    return average_latency * abp


def branch_penalty(
    chains: DependenceChains,
    average_latency: float,
    instructions_per_interval: float,
    config: MachineConfig,
) -> float:
    """Full per-misprediction penalty: resolution + front-end refill."""
    resolution = branch_resolution_time(
        chains, average_latency, instructions_per_interval, config
    )
    return resolution + config.frontend_refill
