"""The paper's primary contribution: the micro-architecture independent
analytical performance and power model.

Usage sketch::

    from repro.workloads import make_workload, generate_trace
    from repro.profiler import profile_application
    from repro.core import AnalyticalModel, nehalem

    trace = generate_trace(make_workload("gcc"), max_instructions=100_000)
    profile = profile_application(trace)          # one-time cost
    model = AnalyticalModel()
    prediction = model.predict(profile, nehalem())  # per-config, fast
    print(prediction.cpi, prediction.cpi_stack, prediction.power_watts)
"""

from repro.core.machine import (
    DVFSPoint,
    MachineConfig,
    PortSpec,
    config_from_params,
    design_space,
    dvfs_points,
    low_power_core,
    nehalem,
)
from repro.core.dispatch import (
    DispatchLimits,
    effective_dispatch_rate,
    schedule_ports,
)
from repro.core.branch import branch_resolution_time
from repro.core.mlp import (
    cold_miss_mlp,
    stride_mlp,
    VirtualStream,
    build_virtual_stream,
)
from repro.core.memory_model import (
    bus_queue_cycles,
    llc_chain_penalty,
    mshr_soft_cap,
)
from repro.core.interval import IntervalModel, ModelCache, Prediction
from repro.core.power import ActivityVector, PowerBreakdown, PowerModel
from repro.core.model import AnalyticalModel
from repro.core.batch import BatchConfigs

__all__ = [
    "DVFSPoint",
    "MachineConfig",
    "PortSpec",
    "config_from_params",
    "design_space",
    "dvfs_points",
    "low_power_core",
    "nehalem",
    "DispatchLimits",
    "effective_dispatch_rate",
    "schedule_ports",
    "branch_resolution_time",
    "cold_miss_mlp",
    "stride_mlp",
    "VirtualStream",
    "build_virtual_stream",
    "bus_queue_cycles",
    "llc_chain_penalty",
    "mshr_soft_cap",
    "IntervalModel",
    "ModelCache",
    "Prediction",
    "ActivityVector",
    "PowerBreakdown",
    "PowerModel",
    "AnalyticalModel",
    "BatchConfigs",
]
