"""McPAT-style analytical power model (thesis §2.4, §3.6, §4.10, §6.3).

Power = static + dynamic:

* static (Eq 2.1): ``P_s = I_l * V_dd`` with leakage proportional to the
  area of each structure (sized from the machine configuration);
* dynamic (Eq 2.2): ``P_d = 1/2 C V^2 a f`` expressed per structure as
  (events/cycle) * (energy/event at V_dd) * frequency.

Both the analytical model (predicted activity factors, Eq 3.16) and the
reference simulator (measured activity factors) feed the same backend,
exactly as the paper routes both through McPAT.  Per-event energies and
per-area leakage densities are calibrated so the reference Nehalem-like
core lands near 10 W with roughly 40% static power at 45 nm (thesis §2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.machine import MachineConfig
from repro.isa import UopKind

#: Per-event dynamic energy at the reference voltage (nJ).
EVENT_ENERGY_NJ: Dict[str, float] = {
    "uop": 0.45,            # rename + ROB + RF + bypass per uop
    "int_alu": 0.10,
    "int_mul": 0.25,
    "fp_alu": 0.30,
    "fp_mul": 0.40,
    "div": 1.50,
    "load_agen": 0.08,
    "store_agen": 0.08,
    "branch_lookup": 0.12,
    "l1": 0.20,
    "l2": 0.60,
    "llc": 1.80,
    "dram": 18.0,
    "clock": 0.55,          # clock tree + pipeline latches, per cycle
}

_UOP_EVENT = {
    UopKind.INT_ALU: "int_alu",
    UopKind.INT_MUL: "int_mul",
    UopKind.FP_ALU: "fp_alu",
    UopKind.FP_MUL: "fp_mul",
    UopKind.DIV: "div",
    UopKind.LOAD: "load_agen",
    UopKind.STORE: "store_agen",
    UopKind.BRANCH: "branch_lookup",
    UopKind.MOVE: "int_alu",
}

REFERENCE_VDD = 1.1


@dataclass
class ActivityVector:
    """Event counts over one run (the McPAT XML activity summary)."""

    cycles: float = 0.0
    uops: float = 0.0
    uop_kind_counts: Dict[UopKind, float] = field(default_factory=dict)
    l1_accesses: float = 0.0
    l2_accesses: float = 0.0
    llc_accesses: float = 0.0
    dram_accesses: float = 0.0
    branch_lookups: float = 0.0

    def merge_scaled(self, other: "ActivityVector", scale: float) -> None:
        self.cycles += other.cycles * scale
        self.uops += other.uops * scale
        for kind, count in other.uop_kind_counts.items():
            self.uop_kind_counts[kind] = (
                self.uop_kind_counts.get(kind, 0.0) + count * scale
            )
        self.l1_accesses += other.l1_accesses * scale
        self.l2_accesses += other.l2_accesses * scale
        self.llc_accesses += other.llc_accesses * scale
        self.dram_accesses += other.dram_accesses * scale
        self.branch_lookups += other.branch_lookups * scale


@dataclass
class PowerBreakdown:
    """Static + dynamic watts per structure (the power stack, Fig 6.7)."""

    static: Dict[str, float] = field(default_factory=dict)
    dynamic: Dict[str, float] = field(default_factory=dict)

    @property
    def static_total(self) -> float:
        return sum(self.static.values())

    @property
    def dynamic_total(self) -> float:
        return sum(self.dynamic.values())

    @property
    def total(self) -> float:
        return self.static_total + self.dynamic_total

    def stack(self) -> Dict[str, float]:
        """Combined per-structure watts (static + dynamic)."""
        keys = set(self.static) | set(self.dynamic)
        return {
            key: self.static.get(key, 0.0) + self.dynamic.get(key, 0.0)
            for key in sorted(keys)
        }


class PowerModel:
    """Computes power from a machine configuration and activity vector."""

    #: Leakage density: watts per mm^2-equivalent area unit at 1.1 V.
    LEAKAGE_DENSITY = 1.0

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

    # -- area model (arbitrary area units ~ mm^2) ----------------------

    def structure_areas(self) -> Dict[str, float]:
        """Area per structure, scaling with configured sizes."""
        config = self.config
        mb = 1024.0 * 1024.0
        return {
            "core_logic": 0.8 * (config.dispatch_width / 4.0),
            "rob_rf": 0.5 * (config.rob_size / 128.0),
            "functional_units": 0.15 * len(config.ports),
            "predictor": 0.1,
            "l1": 0.12 * (
                (config.l1d.size_bytes + config.l1i.size_bytes)
                / (64.0 * 1024.0)
            ),
            "l2": 0.25 * (config.l2.size_bytes / (256.0 * 1024.0)),
            "llc": 2.2 * (config.llc.size_bytes / (8.0 * mb)),
            "memctrl": 0.3,
        }

    # -- power ----------------------------------------------------------

    def _voltage_scale_dynamic(self) -> float:
        return (self.config.vdd / REFERENCE_VDD) ** 2

    def _voltage_scale_static(self) -> float:
        # Leakage grows superlinearly with Vdd; model ~V^2 as well.
        return (self.config.vdd / REFERENCE_VDD) ** 2

    def static_power(self) -> Dict[str, float]:
        scale = self._voltage_scale_static()
        return {
            name: self.LEAKAGE_DENSITY * area * scale
            for name, area in self.structure_areas().items()
        }

    def dynamic_power(self, activity: ActivityVector) -> Dict[str, float]:
        """Dynamic watts per structure from activity factors (Eq 3.16)."""
        if activity.cycles <= 0.0:
            return {}
        freq_hz = self.config.frequency_ghz * 1e9
        vscale = self._voltage_scale_dynamic()
        seconds = activity.cycles / freq_hz

        def watts(event: str, count: float) -> float:
            return (
                count * EVENT_ENERGY_NJ[event] * 1e-9 * vscale / seconds
            )

        power: Dict[str, float] = {}
        power["core_logic"] = watts("uop", activity.uops) + watts(
            "clock", activity.cycles
        )
        fu = 0.0
        for kind, count in activity.uop_kind_counts.items():
            event = _UOP_EVENT.get(kind, "int_alu")
            fu += watts(event, count)
        power["functional_units"] = fu
        power["rob_rf"] = watts("uop", activity.uops) * 0.6
        power["predictor"] = watts("branch_lookup", activity.branch_lookups)
        power["l1"] = watts("l1", activity.l1_accesses)
        power["l2"] = watts("l2", activity.l2_accesses)
        power["llc"] = watts("llc", activity.llc_accesses)
        power["memctrl"] = watts("dram", activity.dram_accesses)
        return power

    def evaluate(self, activity: ActivityVector) -> PowerBreakdown:
        return PowerBreakdown(
            static=self.static_power(),
            dynamic=self.dynamic_power(activity),
        )

    @staticmethod
    def evaluate_batch(configs, activities) -> "List[PowerBreakdown]":
        """Batched :meth:`evaluate` over aligned (config, activity) pairs.

        ``configs`` is a sequence of :class:`MachineConfig` (or a
        prebuilt :class:`~repro.core.batch.BatchConfigs`); breakdowns
        are bitwise identical to ``PowerModel(c).evaluate(a)`` per pair.
        """
        from repro.core.batch import evaluate_power_batch

        return evaluate_power_batch(configs, activities)

    # -- energy metrics ---------------------------------------------------

    def energy_joules(self, activity: ActivityVector) -> float:
        breakdown = self.evaluate(activity)
        seconds = activity.cycles / (self.config.frequency_ghz * 1e9)
        return breakdown.total * seconds

    def edp(self, activity: ActivityVector) -> float:
        """Energy-delay product (J*s)."""
        seconds = activity.cycles / (self.config.frequency_ghz * 1e9)
        return self.energy_joules(activity) * seconds

    def ed2p(self, activity: ActivityVector) -> float:
        """Energy-delay-squared product (J*s^2)."""
        seconds = activity.cycles / (self.config.frequency_ghz * 1e9)
        return self.energy_joules(activity) * seconds * seconds
