"""The analytical model facade: profile x configuration -> prediction.

Couples the interval performance model with the power backend and derives
the activity factors from the performance prediction (thesis Eq 3.16),
mirroring the paper's flow where profile statistics feed McPAT directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.backends import resolve_model_backend
from repro.core.interval import IntervalModel, ModelCache, Prediction
from repro.core.machine import MachineConfig
from repro.core.power import ActivityVector, PowerBreakdown, PowerModel
from repro.frontend.entropy import EntropyMissRateModel
from repro.isa import UopKind
from repro.profiler.profile import ApplicationProfile


@dataclass
class ModelResult:
    """Performance + power prediction for one (workload, config) pair.

    Attributes
    ----------
    performance:
        The interval-model performance prediction (cycles, CPI stack,
        per-window breakdown).
    power:
        The power breakdown evaluated at the predicted activity.
    activity:
        The activity factors derived from the performance prediction.
    energy_joules / edp / ed2p:
        Energy, energy-delay and energy-delay-squared products.
    """

    performance: Prediction
    power: PowerBreakdown
    activity: ActivityVector
    energy_joules: float
    edp: float
    ed2p: float

    # -- convenience ------------------------------------------------------

    @property
    def cpi(self) -> float:
        """Predicted cycles per instruction."""
        return self.performance.cpi

    @property
    def cycles(self) -> float:
        """Predicted total cycle count."""
        return self.performance.cycles

    @property
    def seconds(self) -> float:
        """Predicted wall-clock execution time in seconds."""
        return self.performance.seconds

    @property
    def power_watts(self) -> float:
        """Predicted total power draw in watts."""
        return self.power.total

    def cpi_stack(self) -> Dict[str, float]:
        """The CPI stack, normalized to cycles per instruction."""
        return self.performance.cpi_stack()

    def power_stack(self) -> Dict[str, float]:
        """The power breakdown per component, in watts."""
        return self.power.stack()


def derive_activity(
    profile: ApplicationProfile,
    prediction: Prediction,
    config: MachineConfig,
    cache: Optional[ModelCache] = None,
) -> ActivityVector:
    """Predicted activity factors from the profile + prediction (Eq 3.16).

    Cache access counts cascade through the StatStack miss ratios; the
    instruction stream contributes L1I lookups and its own L2/LLC traffic.

    Parameters
    ----------
    profile:
        The micro-architecture independent application profile.
    prediction:
        The interval-model performance prediction for this pair.
    config:
        The machine configuration being evaluated.
    cache:
        Optional :class:`ModelCache`; memoizes the per-level StatStack
        miss-ratio queries across configurations sharing cache sizes.

    Returns
    -------
    ActivityVector
        Per-structure access counts for the power model.
    """
    statstack = profile.statstack()
    instruction_statstack = profile.instruction_statstack()
    mix = profile.mix
    scale = (
        prediction.instructions / mix.num_instructions
        if mix.num_instructions else 0.0
    )

    loads = mix.counts.get(UopKind.LOAD, 0) * scale
    stores = mix.counts.get(UopKind.STORE, 0) * scale
    branches = mix.counts.get(UopKind.BRANCH, 0) * scale
    instructions = prediction.instructions

    def _ratios(model, stream, kind, sizes):
        if cache is None:
            return model.hierarchy_miss_ratios(list(sizes), kind=kind)
        return cache.get(
            ("activity", cache.token(profile), stream, kind)
            + tuple(sizes),
            lambda: model.hierarchy_miss_ratios(list(sizes), kind=kind),
        )

    sizes = (config.l1d.size_bytes, config.l2.size_bytes,
             config.llc.size_bytes)
    load_ratios = _ratios(statstack, "data", "load", sizes)
    store_ratios = _ratios(statstack, "data", "store", sizes)
    i_sizes = (config.l1i.size_bytes, config.l2.size_bytes,
               config.llc.size_bytes)
    i_ratios = _ratios(instruction_statstack, "instr", "load", i_sizes)

    l1_data = loads + stores
    l2_data = loads * load_ratios[0] + stores * store_ratios[0]
    llc_data = loads * load_ratios[1] + stores * store_ratios[1]
    dram_data = loads * load_ratios[2] + stores * store_ratios[2]
    l1_instr = instructions
    l2_instr = instructions * i_ratios[0]
    llc_instr = instructions * i_ratios[1]
    dram_instr = instructions * i_ratios[2]

    return ActivityVector(
        cycles=prediction.cycles,
        uops=prediction.uops,
        uop_kind_counts={
            kind: count * scale for kind, count in mix.counts.items()
        },
        l1_accesses=l1_data + l1_instr,
        l2_accesses=l2_data + l2_instr,
        llc_accesses=llc_data + llc_instr,
        dram_accesses=dram_data + dram_instr,
        branch_lookups=branches,
    )


class AnalyticalModel:
    """Top-level model: one profile, any number of configurations.

    Parameters
    ----------
    entropy_model:
        Branch predictor miss-rate model; defaults to the generic linear
        entropy fit.
    mlp_model:
        MLP estimator: ``"stride"``, ``"cold"`` or ``"none"``.
    enable_llc_chaining / enable_mshr / enable_bus:
        Toggles for the corresponding interval-model penalty terms.
    cache:
        Optional :class:`~repro.core.interval.ModelCache` shared by the
        performance and activity derivations.  Purely a performance
        lever: predictions are bitwise identical with or without it.

    Examples
    --------
    >>> model = AnalyticalModel()                      # doctest: +SKIP
    >>> result = model.predict(profile, nehalem())     # doctest: +SKIP
    >>> result.cpi, result.power_watts                 # doctest: +SKIP
    """

    def __init__(
        self,
        entropy_model: Optional[EntropyMissRateModel] = None,
        mlp_model: str = "stride",
        enable_llc_chaining: bool = True,
        enable_mshr: bool = True,
        enable_bus: bool = True,
        cache: Optional[ModelCache] = None,
    ) -> None:
        self.interval = IntervalModel(
            entropy_model=entropy_model,
            mlp_model=mlp_model,
            enable_llc_chaining=enable_llc_chaining,
            enable_mshr=enable_mshr,
            enable_bus=enable_bus,
            cache=cache,
        )

    @property
    def cache(self) -> Optional[ModelCache]:
        """The attached :class:`ModelCache`, or ``None``."""
        return self.interval.cache

    @cache.setter
    def cache(self, value: Optional[ModelCache]) -> None:
        """Attach (or detach, with ``None``) a :class:`ModelCache`."""
        self.interval.cache = value

    def predict_performance(
        self, profile: ApplicationProfile, config: MachineConfig
    ) -> Prediction:
        """Performance-only prediction (skips the power backend).

        Parameters
        ----------
        profile:
            The application profile.
        config:
            The machine configuration.

        Returns
        -------
        Prediction
            Cycles, CPI stack and per-window breakdown.
        """
        return self.interval.predict(profile, config)

    def predict(
        self, profile: ApplicationProfile, config: MachineConfig
    ) -> ModelResult:
        """Full performance + power prediction for one pair.

        Parameters
        ----------
        profile:
            The application profile.
        config:
            The machine configuration.

        Returns
        -------
        ModelResult
            Performance, power, activity and energy metrics.
        """
        prediction = self.interval.predict(profile, config)
        activity = derive_activity(
            profile, prediction, config, cache=self.interval.cache
        )
        power_model = PowerModel(config)
        breakdown = power_model.evaluate(activity)
        return ModelResult(
            performance=prediction,
            power=breakdown,
            activity=activity,
            energy_joules=power_model.energy_joules(activity),
            edp=power_model.edp(activity),
            ed2p=power_model.ed2p(activity),
        )

    def predict_batch(
        self,
        profile: ApplicationProfile,
        configs: Sequence[MachineConfig],
        backend: Optional[str] = None,
    ) -> List[ModelResult]:
        """Full predictions for a whole config batch on one profile.

        Parameters
        ----------
        profile:
            The application profile.
        configs:
            A sequence of configurations, or a prebuilt
            :class:`~repro.core.batch.BatchConfigs`.
        backend:
            ``"batch"`` (vectorized, default), ``"scalar"`` (the
            per-config reference loop), or ``None`` to take the
            ``REPRO_MODEL_BACKEND`` environment default.  Both backends
            return bitwise-identical results and leave any attached
            :class:`ModelCache` in an identical state; unknown names
            raise ``ValueError`` before any evaluation.

        Returns
        -------
        list of ModelResult
            One result per configuration, in input order.
        """
        backend = resolve_model_backend(backend)
        if backend == "scalar":
            from repro.core.batch import BatchConfigs

            if isinstance(configs, BatchConfigs):
                configs = configs.configs
            return [self.predict(profile, config) for config in configs]
        from repro.core.batch import predict_model_batch

        return predict_model_batch(self, profile, configs)
