"""The analytical model facade: profile x configuration -> prediction.

Couples the interval performance model with the power backend and derives
the activity factors from the performance prediction (thesis Eq 3.16),
mirroring the paper's flow where profile statistics feed McPAT directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.interval import IntervalModel, Prediction
from repro.core.machine import MachineConfig
from repro.core.power import ActivityVector, PowerBreakdown, PowerModel
from repro.frontend.entropy import EntropyMissRateModel
from repro.isa import UopKind
from repro.profiler.profile import ApplicationProfile


@dataclass
class ModelResult:
    """Performance + power prediction for one (workload, config) pair."""

    performance: Prediction
    power: PowerBreakdown
    activity: ActivityVector
    energy_joules: float
    edp: float
    ed2p: float

    # -- convenience ------------------------------------------------------

    @property
    def cpi(self) -> float:
        return self.performance.cpi

    @property
    def cycles(self) -> float:
        return self.performance.cycles

    @property
    def seconds(self) -> float:
        return self.performance.seconds

    @property
    def power_watts(self) -> float:
        return self.power.total

    def cpi_stack(self) -> Dict[str, float]:
        return self.performance.cpi_stack()

    def power_stack(self) -> Dict[str, float]:
        return self.power.stack()


def derive_activity(
    profile: ApplicationProfile,
    prediction: Prediction,
    config: MachineConfig,
) -> ActivityVector:
    """Predicted activity factors from the profile + prediction (Eq 3.16).

    Cache access counts cascade through the StatStack miss ratios; the
    instruction stream contributes L1I lookups and its own L2/LLC traffic.
    """
    statstack = profile.statstack()
    instruction_statstack = profile.instruction_statstack()
    mix = profile.mix
    scale = (
        prediction.instructions / mix.num_instructions
        if mix.num_instructions else 0.0
    )

    loads = mix.counts.get(UopKind.LOAD, 0) * scale
    stores = mix.counts.get(UopKind.STORE, 0) * scale
    branches = mix.counts.get(UopKind.BRANCH, 0) * scale
    instructions = prediction.instructions

    sizes = [config.l1d.size_bytes, config.l2.size_bytes,
             config.llc.size_bytes]
    load_ratios = statstack.hierarchy_miss_ratios(sizes, kind="load")
    store_ratios = statstack.hierarchy_miss_ratios(sizes, kind="store")
    i_sizes = [config.l1i.size_bytes, config.l2.size_bytes,
               config.llc.size_bytes]
    i_ratios = instruction_statstack.hierarchy_miss_ratios(
        i_sizes, kind="load"
    )

    l1_data = loads + stores
    l2_data = loads * load_ratios[0] + stores * store_ratios[0]
    llc_data = loads * load_ratios[1] + stores * store_ratios[1]
    dram_data = loads * load_ratios[2] + stores * store_ratios[2]
    l1_instr = instructions
    l2_instr = instructions * i_ratios[0]
    llc_instr = instructions * i_ratios[1]
    dram_instr = instructions * i_ratios[2]

    return ActivityVector(
        cycles=prediction.cycles,
        uops=prediction.uops,
        uop_kind_counts={
            kind: count * scale for kind, count in mix.counts.items()
        },
        l1_accesses=l1_data + l1_instr,
        l2_accesses=l2_data + l2_instr,
        llc_accesses=llc_data + llc_instr,
        dram_accesses=dram_data + dram_instr,
        branch_lookups=branches,
    )


class AnalyticalModel:
    """Top-level model: one profile, any number of configurations."""

    def __init__(
        self,
        entropy_model: Optional[EntropyMissRateModel] = None,
        mlp_model: str = "stride",
        enable_llc_chaining: bool = True,
        enable_mshr: bool = True,
        enable_bus: bool = True,
    ) -> None:
        self.interval = IntervalModel(
            entropy_model=entropy_model,
            mlp_model=mlp_model,
            enable_llc_chaining=enable_llc_chaining,
            enable_mshr=enable_mshr,
            enable_bus=enable_bus,
        )

    def predict_performance(
        self, profile: ApplicationProfile, config: MachineConfig
    ) -> Prediction:
        return self.interval.predict(profile, config)

    def predict(
        self, profile: ApplicationProfile, config: MachineConfig
    ) -> ModelResult:
        prediction = self.interval.predict(profile, config)
        activity = derive_activity(profile, prediction, config)
        power_model = PowerModel(config)
        breakdown = power_model.evaluate(activity)
        return ModelResult(
            performance=prediction,
            power=breakdown,
            activity=activity,
            energy_joules=power_model.energy_joules(activity),
            edp=power_model.edp(activity),
            ed2p=power_model.ed2p(activity),
        )
