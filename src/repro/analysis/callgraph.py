"""A cross-module call graph built purely from the AST.

The graph is the shared substrate of every flow-sensitive rule: the
nondeterminism-taint rule walks it forward from fingerprint/cache sinks
to prove no wall-clock or hash-order source is reachable, and the
worker-shipping rule walks it from pool dispatch sites to prove shipped
callables stay pure.

Resolution is deliberately conservative and syntactic -- no imports are
executed, no types inferred beyond what the source spells out:

* bare names resolve through function-local ``def``s, module-level
  bindings, then ``import`` aliases;
* dotted chains (``time.perf_counter``, ``np.random.rand``) have their
  base alias expanded to the real module path and are recorded as
  *external references* even when the target is not part of the
  analyzed tree;
* ``self.method()`` resolves within the enclosing class;
* ``x.method()`` resolves when ``x`` is locally constructed from an
  analyzed class (``x = Thing(...)``), when the parameter is annotated
  with an analyzed class name, or -- as a last resort -- when exactly
  one analyzed class defines a method of that name (the unique-name
  fallback; ambiguous names produce no edge rather than a guess).

Everything iterates in sorted order: the analyzer must itself satisfy
the determinism contract it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "dotted_parts",
    "module_name_for",
]


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """The ``a.b.c`` parts of a Name/Attribute chain, or ``None``.

    Chains hanging off calls or subscripts (``f().x``, ``d[k].y``) are
    not simple references and return ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def module_name_for(path: Path) -> str:
    """The dotted module name of a source file, inferred from packages.

    Walks up from the file while ``__init__.py`` siblings exist, so
    ``src/repro/api/pool.py`` maps to ``repro.api.pool`` regardless of
    where the tree is checked out.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class CallSite:
    """One call expression inside a function body.

    Attributes
    ----------
    text:
        The source-level dotted rendering (``self.put``, ``time.time``).
    external:
        The alias-expanded dotted name (``numpy.random.rand`` for
        ``np.random.rand``); ``None`` when the callee is not a simple
        name chain.
    resolved:
        Qualified names of analyzed functions this call may target
        (empty when the callee is external or unresolvable).
    lineno:
        1-based source line of the call.
    node:
        The :class:`ast.Call` node itself.
    """

    text: str
    external: Optional[str]
    resolved: Tuple[str, ...]
    lineno: int
    node: ast.Call


@dataclass
class FunctionInfo:
    """One analyzed function or method.

    ``qualname`` is ``module.Class.name`` for methods and
    ``module.name`` for module-level functions; nested functions append
    their own name to the enclosing function's qualname.
    """

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    path: str
    lineno: int
    node: ast.AST
    is_nested: bool = False
    calls: List[CallSite] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One analyzed source file: bindings, imports, functions, AST."""

    name: str
    path: str
    tree: ast.Module
    #: import alias -> fully qualified dotted target.
    imports: Dict[str, str] = field(default_factory=dict)
    #: every name bound at module level (defs, classes, assigns, imports).
    bindings: Dict[str, int] = field(default_factory=dict)
    #: names defined (not imported) at module level -> line.
    defined: Dict[str, int] = field(default_factory=dict)
    #: class bare name -> {method bare name -> function qualname}.
    classes: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: the literal ``__all__`` list, when one is declared.
    dunder_all: Optional[List[str]] = None
    #: line of the ``__all__`` assignment (for findings).
    dunder_all_line: int = 0
    functions: List[str] = field(default_factory=list)

    def qualify(self, parts: Sequence[str]) -> List[str]:
        """Expand the chain's base through this module's import map."""
        if parts and parts[0] in self.imports:
            return self.imports[parts[0]].split(".") + list(parts[1:])
        return list(parts)


class CallGraph:
    """Functions, modules and resolved call edges for a file set.

    Build with :meth:`build`; then :attr:`functions` maps qualified
    names to :class:`FunctionInfo` (each carrying its resolved
    :class:`CallSite` list) and :attr:`modules` maps dotted module
    names to :class:`ModuleInfo`.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare method name -> sorted qualnames of analyzed methods.
        self.methods_by_name: Dict[str, List[str]] = {}
        #: bare class name -> sorted qualnames of analyzed classes.
        self.classes_by_name: Dict[str, List[str]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls, files: Sequence[Tuple[str, str, ast.Module]]
    ) -> "CallGraph":
        """Build the graph from ``(path, module name, parsed AST)`` triples.

        ``path`` is the repo-relative reporting path; the dotted module
        name is supplied by the caller (usually via
        :func:`module_name_for` on the absolute location, so package
        detection works regardless of the working directory).
        """
        graph = cls()
        for path, name, tree in files:
            graph._collect_module(path, name, tree)
        for qualname in sorted(graph.functions):
            graph._resolve_calls(graph.functions[qualname])
        return graph

    def _collect_module(self, path: str, name: str,
                        tree: ast.Module) -> None:
        module = ModuleInfo(name=name, path=path, tree=tree)
        self.modules[name] = module
        self._collect_scope(module, tree.body, qualprefix=name, cls=None,
                            toplevel=True)

    def _collect_scope(self, module: ModuleInfo, body: Sequence[ast.stmt],
                       qualprefix: str, cls: Optional[str],
                       toplevel: bool, nested: bool = False) -> None:
        """Register bindings and function defs for one statement list.

        ``toplevel`` statements contribute to the module's binding /
        export maps; ``If``/``Try``/``With``/loop bodies at module
        level are walked as module scope too (conditional imports and
        version-gated definitions still bind module names).
        """
        for stmt in body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._collect_import(module, stmt, toplevel)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(module, stmt, qualprefix, cls,
                                       toplevel, nested)
            elif isinstance(stmt, ast.ClassDef):
                self._collect_class(module, stmt, qualprefix, toplevel)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if toplevel:
                    self._collect_assign(module, stmt)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                for sub in self._stmt_bodies(stmt):
                    self._collect_scope(module, sub, qualprefix, cls,
                                        toplevel, nested)

    @staticmethod
    def _stmt_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        """Every statement list nested directly under a compound stmt."""
        bodies = []
        for attr in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, attr, None)
            if sub:
                bodies.append(sub)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    def _collect_import(self, module: ModuleInfo, stmt: ast.stmt,
                        toplevel: bool) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else bound
                if toplevel:
                    module.imports[bound] = target
                    module.bindings[bound] = stmt.lineno
        elif isinstance(stmt, ast.ImportFrom):
            base = self._import_base(module, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                if toplevel:
                    module.imports[bound] = f"{base}.{alias.name}"
                    module.bindings[bound] = stmt.lineno

    @staticmethod
    def _import_base(module: ModuleInfo, stmt: ast.ImportFrom) -> str:
        """The absolute package a ``from ... import`` resolves against."""
        if not stmt.level:
            return stmt.module or ""
        parts = module.name.split(".")
        is_package = module.path.endswith("__init__.py")
        if not is_package:
            parts = parts[:-1]
        if stmt.level > 1:
            parts = parts[:-(stmt.level - 1)] if stmt.level - 1 else parts
        base = ".".join(parts)
        if stmt.module:
            base = f"{base}.{stmt.module}" if base else stmt.module
        return base

    def _collect_function(self, module: ModuleInfo, node: ast.AST,
                          qualprefix: str, cls: Optional[str],
                          toplevel: bool, nested: bool) -> None:
        qualname = f"{qualprefix}.{node.name}"
        info = FunctionInfo(
            qualname=qualname, module=module.name, name=node.name,
            cls=cls, path=module.path, lineno=node.lineno, node=node,
            is_nested=nested,
        )
        self.functions[qualname] = info
        module.functions.append(qualname)
        if cls is not None and not nested:
            module.classes.setdefault(cls, {})[node.name] = qualname
            self.methods_by_name.setdefault(node.name, []).append(qualname)
        if toplevel and cls is None:
            module.bindings[node.name] = node.lineno
            module.defined[node.name] = node.lineno
        # Nested defs are functions in their own right.
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(module, stmt, qualname, cls,
                                       toplevel=False, nested=True)

    def _collect_class(self, module: ModuleInfo, node: ast.ClassDef,
                       qualprefix: str, toplevel: bool) -> None:
        qualname = f"{qualprefix}.{node.name}"
        module.classes.setdefault(node.name, {})
        self.classes_by_name.setdefault(node.name, []).append(qualname)
        if toplevel:
            module.bindings[node.name] = node.lineno
            module.defined[node.name] = node.lineno
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(module, stmt, qualname,
                                       cls=node.name, toplevel=False,
                                       nested=False)

    def _collect_assign(self, module: ModuleInfo, stmt: ast.stmt) -> None:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                module.bindings[target.id] = stmt.lineno
                module.defined[target.id] = stmt.lineno
                if target.id == "__all__" and isinstance(stmt, ast.Assign):
                    names = _literal_strings(stmt.value)
                    if names is not None:
                        module.dunder_all = names
                        module.dunder_all_line = stmt.lineno
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        module.bindings[elt.id] = stmt.lineno
                        module.defined[elt.id] = stmt.lineno

    # -- call resolution ------------------------------------------------

    def _resolve_calls(self, info: FunctionInfo) -> None:
        module = self.modules[info.module]
        local_types = _local_instance_types(info.node, module, self)
        local_defs = {
            stmt.name: f"{info.qualname}.{stmt.name}"
            for stmt in info.node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if parts is None:
                continue
            text = ".".join(parts)
            external = ".".join(module.qualify(parts))
            resolved = self._resolve_target(
                parts, info, module, local_types, local_defs
            )
            if resolved:
                external = None
            info.calls.append(CallSite(
                text=text, external=external,
                resolved=tuple(sorted(resolved)),
                lineno=node.lineno, node=node,
            ))

    def _resolve_target(self, parts: Sequence[str], info: FunctionInfo,
                        module: ModuleInfo,
                        local_types: Dict[str, str],
                        local_defs: Dict[str, str]) -> List[str]:
        """Analyzed-function targets for one callee chain (may be [])."""
        if len(parts) == 1:
            return self._resolve_bare(parts[0], info, module, local_defs)
        base, rest = parts[0], parts[1:]
        if base == "self" and info.cls is not None and len(rest) == 1:
            return self._resolve_method(module, info.cls, rest[0],
                                        allow_fallback=True)
        # x.method() where x was locally built from an analyzed class,
        # or an annotated parameter of an analyzed class type.
        if base in local_types and len(rest) == 1:
            cls_qual = local_types[base]
            cls_module, _, cls_name = cls_qual.rpartition(".")
            owner = self.modules.get(cls_module)
            if owner is not None:
                hit = owner.classes.get(cls_name, {}).get(rest[0])
                if hit:
                    return [hit]
            return []
        # ClassName.method() via a module-level or imported class name.
        qualified = module.qualify(parts)
        dotted = ".".join(qualified)
        if dotted in self.functions:
            return [dotted]
        if len(qualified) >= 2:
            cls_dotted = ".".join(qualified[:-1])
            cls_module, _, cls_name = cls_dotted.rpartition(".")
            owner = self.modules.get(cls_module)
            if owner is not None and cls_name in owner.classes:
                hit = owner.classes[cls_name].get(qualified[-1])
                return [hit] if hit else []
        # obj.method() with an unknown receiver: unique-name fallback.
        if len(rest) == 1:
            return self._resolve_method(None, None, rest[0],
                                        allow_fallback=True)
        return []

    def _resolve_bare(self, name: str, info: FunctionInfo,
                      module: ModuleInfo,
                      local_defs: Dict[str, str]) -> List[str]:
        if name in local_defs:
            return [local_defs[name]]
        candidate = f"{module.name}.{name}"
        if candidate in self.functions:
            return [candidate]
        if name in module.classes:
            init = module.classes[name].get("__init__")
            return [init] if init else []
        if name in module.imports:
            target = module.imports[name]
            if target in self.functions:
                return [target]
            tgt_module, _, tgt_name = target.rpartition(".")
            owner = self.modules.get(tgt_module)
            if owner is not None and tgt_name in owner.classes:
                init = owner.classes[tgt_name].get("__init__")
                return [init] if init else []
        return []

    def _resolve_method(self, module: Optional[ModuleInfo],
                        cls: Optional[str], method: str,
                        allow_fallback: bool) -> List[str]:
        if module is not None and cls is not None:
            hit = module.classes.get(cls, {}).get(method)
            if hit:
                return [hit]
        if allow_fallback:
            candidates = self.methods_by_name.get(method, [])
            if len(candidates) == 1:
                return [candidates[0]]
        return []

    # -- traversal ------------------------------------------------------

    def callees(self, qualname: str) -> List[str]:
        """Resolved analyzed callees of one function (sorted, unique)."""
        info = self.functions.get(qualname)
        if info is None:
            return []
        out = set()
        for call in info.calls:
            out.update(call.resolved)
        return sorted(out)

    def reachable(self, start: str) -> Dict[str, List[str]]:
        """Every function reachable from ``start`` via resolved calls.

        Returns ``{qualname: path}`` where ``path`` is the call chain
        from ``start`` to that function (inclusive), following the
        first-discovered (BFS, sorted-neighbor) route -- deterministic
        for a given tree.
        """
        paths: Dict[str, List[str]] = {start: [start]}
        queue = [start]
        while queue:
            current = queue.pop(0)
            for callee in self.callees(current):
                if callee not in paths:
                    paths[callee] = paths[current] + [callee]
                    queue.append(callee)
        return paths


def _literal_strings(node: ast.AST) -> Optional[List[str]]:
    """The string elements of a literal list/tuple, or ``None``."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            out.append(elt.value)
        else:
            return None
    return out


def _local_instance_types(func_node: ast.AST, module: ModuleInfo,
                          graph: CallGraph) -> Dict[str, str]:
    """Map local variable names to analyzed-class qualnames.

    Recognizes ``x = ClassName(...)`` assignments anywhere in the
    function and parameters annotated with an analyzed class name
    (``pool: WorkerPool``) -- enough for the flow rules without real
    type inference.
    """
    types: Dict[str, str] = {}

    def class_qual(name_parts: Sequence[str]) -> Optional[str]:
        qualified = module.qualify(name_parts)
        cls_name = qualified[-1]
        cls_module = ".".join(qualified[:-1]) or module.name
        owner = graph.modules.get(cls_module)
        if owner is not None and cls_name in owner.classes:
            return f"{cls_module}.{cls_name}"
        if len(name_parts) == 1 and name_parts[0] in module.classes:
            return f"{module.name}.{name_parts[0]}"
        return None

    args = getattr(func_node, "args", None)
    if args is not None:
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            if arg.annotation is not None:
                parts = dotted_parts(arg.annotation)
                if parts:
                    hit = class_qual(parts)
                    if hit:
                        types[arg.arg] = hit
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            parts = dotted_parts(node.value.func)
            if not parts:
                continue
            hit = class_qual(parts)
            if not hit:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    types[target.id] = hit
    return types
