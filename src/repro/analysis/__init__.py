"""Determinism & contract static analysis for the reproduction.

The repository's core contracts -- bitwise-identical results at any
worker count, fingerprints that never absorb wall-clock or environment
state, content-addressed caches keyed purely by their inputs -- cannot
be exhaustively tested; they can, however, be *proved absent of known
hazards* at CI time.  This zero-dependency package walks the AST of the
analyzed tree, builds a cross-module call graph, and enforces a catalog
of rules (see :mod:`repro.analysis.rules`): nondeterminism taint into
fingerprint/cache sinks, worker-pool shipping safety, seeded-RNG
discipline, the telemetry timing contract, ``__all__`` consistency, and
the migrated public-API docstring guarantee.

Front doors: the ``repro lint`` CLI subcommand and ``tools/lint.py``
(CI), both thin wrappers over :func:`run_lint`.  Intentional exceptions
live in an explicit, reviewed baseline file
(``tools/lint_baseline.toml``; see :mod:`repro.analysis.baseline`) --
the shipped baseline is empty and the CI gate keeps it that way.

Examples
--------
>>> from repro.analysis import run_lint
>>> report = run_lint(["src/repro"])                   # doctest: +SKIP
>>> report.ok                                          # doctest: +SKIP
True
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.engine import LintContext, LintError, run_lint
from repro.analysis.report import Finding, LintReport
from repro.analysis.rules import (
    DOCSTRING_TARGETS,
    RULES,
    Rule,
    register_rule,
)

__all__ = [
    "Baseline",
    "BaselineError",
    "DOCSTRING_TARGETS",
    "Finding",
    "LintContext",
    "LintError",
    "LintReport",
    "RULES",
    "Rule",
    "register_rule",
    "run_lint",
]
