"""The lint baseline: explicit, reviewed exceptions to the rules.

A baseline file (conventionally ``tools/lint_baseline.toml``) lists
finding keys that are *intentional* -- hazards a human looked at and
accepted.  Lint subtracts matching findings from the report, so the CI
gate can require a completely clean run while still leaving a paper
trail for every exception: adding an entry is a reviewed diff, and a
stale entry (matching nothing) is reported so the file never rots.

The file is a small TOML subset parsed here with zero dependencies
(``tomllib`` only exists on Python >= 3.11 and this project supports
3.9)::

    # comments and blank lines are fine
    [baseline]
    entries = [
        "raw-timing:src/repro/api/pool.py:_dispatch",
        "determinism-taint:src/repro/x.py:sink<-time.time",
    ]

Only what the baseline needs is supported: ``[section]`` headers and
``key = value`` pairs where the value is a string, integer, boolean, or
a (possibly multi-line) array of strings.  Entries match finding keys
(``rule:path:symbol``, see :class:`~repro.analysis.report.Finding`)
with :func:`fnmatch.fnmatchcase` semantics, so one entry can cover a
family of accepted findings (``"exports:src/repro/legacy/*"``).
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis.report import Finding

__all__ = ["Baseline", "BaselineError", "parse_toml"]


class BaselineError(ValueError):
    """A baseline file is malformed (bad TOML subset or schema)."""


def _parse_scalar(text: str, where: str) -> Any:
    """One TOML scalar: quoted string, boolean, or integer."""
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        body = text[1:-1]
        if '"' in body or "\\" in body:
            raise BaselineError(
                f"{where}: escapes are not supported in strings: {text}"
            )
        return body
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        raise BaselineError(f"{where}: unsupported value {text!r}") from None


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment (quote-aware) and surrounding whitespace."""
    out = []
    in_string = False
    for char in line:
        if char == '"':
            in_string = not in_string
        if char == "#" and not in_string:
            break
        out.append(char)
    return "".join(out).strip()


def parse_toml(text: str, filename: str = "<baseline>") -> Dict[str, Any]:
    """Parse the supported TOML subset into nested dicts.

    Supports ``[section]`` headers, ``key = scalar`` and
    ``key = [ "...", ... ]`` arrays of strings (single- or multi-line).
    Anything else raises :class:`BaselineError` -- a baseline that
    cannot be read must fail loudly, never silently un-suppress.
    """
    root: Dict[str, Any] = {}
    table = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        where = f"{filename}:{index + 1}"
        line = _strip_comment(lines[index])
        index += 1
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            if not name:
                raise BaselineError(f"{where}: empty section name")
            table = root.setdefault(name, {})
            continue
        if "=" not in line:
            raise BaselineError(f"{where}: expected 'key = value': {line!r}")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if value.startswith("["):
            # Array (possibly spanning lines): gather until the closing
            # bracket, then split on commas outside quotes.
            while not value.endswith("]"):
                if index >= len(lines):
                    raise BaselineError(f"{where}: unterminated array")
                value += " " + _strip_comment(lines[index])
                index += 1
            body = value[1:-1].strip()
            items: List[Any] = []
            for part in _split_array(body, where):
                items.append(_parse_scalar(part, where))
            table[key] = items
        else:
            table[key] = _parse_scalar(value, where)
    return root


def _split_array(body: str, where: str) -> List[str]:
    """Split an array body on commas that sit outside quoted strings."""
    parts: List[str] = []
    current = []
    in_string = False
    for char in body:
        if char == '"':
            in_string = not in_string
        if char == "," and not in_string:
            part = "".join(current).strip()
            if part:
                parts.append(part)
            current = []
        else:
            current.append(char)
    if in_string:
        raise BaselineError(f"{where}: unterminated string in array")
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class Baseline:
    """A set of accepted finding keys loaded from a baseline file.

    Parameters
    ----------
    entries:
        Finding-key patterns (``rule:path:symbol``, fnmatch wildcards
        allowed).  Order is irrelevant; matching is case-sensitive.

    Examples
    --------
    >>> base = Baseline(["raw-timing:src/x.py:stamp"])
    >>> from repro.analysis.report import Finding
    >>> f = Finding("raw-timing", "src/x.py", 3, "stamp", "...")
    >>> base.matches(f)
    True
    """

    def __init__(self, entries: Sequence[str] = ()) -> None:
        self.entries: List[str] = list(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file (the TOML subset described above).

        The schema is one ``[baseline]`` table with an ``entries``
        array of strings; anything else is a :class:`BaselineError`.
        """
        with open(path) as handle:
            data = parse_toml(handle.read(), filename=path)
        section = data.get("baseline", {})
        entries = section.get("entries", [])
        if not isinstance(entries, list) or any(
            not isinstance(entry, str) for entry in entries
        ):
            raise BaselineError(
                f"{path}: [baseline] entries must be an array of strings"
            )
        return cls(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        """Whether any baseline entry accepts this finding's key."""
        return any(fnmatchcase(finding.key, entry)
                   for entry in self.entries)

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Partition findings into (surviving, suppressed, stale entries).

        ``stale`` lists baseline entries that matched no finding in
        this run -- candidates for deletion, surfaced as warnings so
        the baseline only ever shrinks toward empty.
        """
        surviving: List[Finding] = []
        suppressed: List[Finding] = []
        used = set()
        for finding in findings:
            hit = None
            for entry in self.entries:
                if fnmatchcase(finding.key, entry):
                    hit = entry
                    break
            if hit is None:
                surviving.append(finding)
            else:
                suppressed.append(finding)
                used.add(hit)
        stale = [entry for entry in self.entries if entry not in used]
        return surviving, suppressed, stale
