"""The lint engine: file discovery, parsing, rule dispatch, baseline.

:func:`run_lint` is the one entry point behind both front doors (the
``repro lint`` CLI subcommand and ``tools/lint.py`` in CI): it collects
``.py`` files from the given paths in sorted order, parses them once,
builds the shared :class:`~repro.analysis.callgraph.CallGraph`, runs
every requested rule from the :data:`~repro.analysis.rules.RULES`
registry, subtracts the baseline, and returns a
:class:`~repro.analysis.report.LintReport`.

The engine is itself bound by the contracts it checks: discovery order
is sorted, findings are sorted, and nothing reads clocks, environment
or RNGs -- the same inputs always produce the same report, bytes for
bytes.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import (
    CallGraph,
    ModuleInfo,
    module_name_for,
)
from repro.analysis.report import Finding, LintReport, sort_findings
from repro.analysis.rules import RULES

__all__ = ["LintContext", "LintError", "run_lint"]


class LintError(ValueError):
    """The lint run cannot proceed (bad paths, rules, or sources)."""


class LintContext:
    """Everything a rule sees: parsed modules, the call graph, options.

    Attributes
    ----------
    graph:
        The cross-module :class:`~repro.analysis.callgraph.CallGraph`.
    modules:
        The analyzed :class:`~repro.analysis.callgraph.ModuleInfo`
        records, sorted by path (rules iterate this for deterministic
        output).
    options:
        Free-form per-rule configuration (tests override taint sinks,
        docstring targets, ...); empty for production runs.
    root:
        The directory findings' paths are relative to.
    """

    def __init__(self, graph: CallGraph, options: Dict[str, Any],
                 root: Path) -> None:
        self.graph = graph
        self.modules: List[ModuleInfo] = sorted(
            graph.modules.values(), key=lambda m: m.path
        )
        self.options = options
        self.root = root


def _relative_posix(path: Path, root: Path) -> str:
    """``path`` relative to ``root`` when possible, posix-separated."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _discover(paths: Sequence[Union[str, Path]],
              root: Path) -> List[Tuple[str, Path]]:
    """Sorted ``(repo-relative posix path, absolute path)`` pairs."""
    files: Dict[str, Path] = {}
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for source in sorted(path.rglob("*.py")):
                files[_relative_posix(source, root)] = source
        elif path.is_file():
            files[_relative_posix(path, root)] = path
        else:
            raise LintError(f"no such file or directory: {entry}")
    return sorted(files.items())


def run_lint(
    paths: Sequence[Union[str, Path]],
    root: Optional[Union[str, Path]] = None,
    baseline: Optional[Union[str, Path, Baseline]] = None,
    rules: Optional[Sequence[str]] = None,
    options: Optional[Dict[str, Any]] = None,
) -> LintReport:
    """Run the static-analysis pass and return its report.

    Parameters
    ----------
    paths:
        Files and/or directories to analyze (directories recurse over
        ``*.py`` in sorted order).
    root:
        Directory findings' paths are reported relative to (defaults
        to the current working directory); baseline keys are anchored
        here, so CI and local runs agree.
    baseline:
        A :class:`~repro.analysis.baseline.Baseline`, or the path of a
        baseline file, or ``None`` for no exceptions.
    rules:
        Rule names to run (default: every registered rule).  Unknown
        names raise :class:`LintError`.
    options:
        Per-rule configuration overrides (see each rule's docs).

    Returns
    -------
    LintReport
        Sorted findings (baseline already applied), the suppressed
        findings, and run metadata.

    Raises
    ------
    LintError
        For unknown paths or rule names, and for files that fail to
        parse (a lint pass that silently skips unparseable code would
        certify nothing).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    selected = list(rules) if rules is not None else sorted(RULES)
    unknown = [name for name in selected if name not in RULES]
    if unknown:
        raise LintError(
            "unknown rule(s): " + ", ".join(sorted(unknown))
            + " (known: " + ", ".join(sorted(RULES)) + ")"
        )
    if isinstance(baseline, (str, Path)):
        baseline = Baseline.load(str(baseline))
    elif baseline is None:
        baseline = Baseline()

    discovered = _discover(paths, root_path)
    parsed: List[Tuple[str, ast.Module]] = []
    for rel, path in discovered:
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"{rel}: cannot parse: {exc}") from exc
        parsed.append((rel, tree))

    # Reporting paths stay repo-relative; module names come from the
    # absolute location so package detection is cwd-independent.
    graph = CallGraph.build([
        (rel, module_name_for(path), tree)
        for (rel, tree), (_, path) in zip(parsed, discovered)
    ])

    context = LintContext(graph, dict(options or {}), root_path)
    findings: List[Finding] = []
    for name in selected:
        findings.extend(RULES[name].check(context))
    surviving, suppressed, stale = baseline.apply(sort_findings(findings))
    return LintReport(
        findings=surviving,
        suppressed=suppressed,
        files=[rel for rel, _ in discovered],
        rules=list(selected),
        unused_baseline=stale,
    )
