"""Findings and reports: the output side of the static-analysis pass.

A :class:`Finding` is one rule violation anchored to a file, line and
symbol; a :class:`LintReport` is the outcome of one
:func:`~repro.analysis.engine.run_lint` call -- the surviving findings,
the baseline-suppressed count, and enough metadata (files scanned,
rules run) to render the human text output or the machine-readable JSON
artifact CI uploads.

Findings carry a stable :attr:`~Finding.key` --
``rule:path:symbol`` -- which is what baseline entries match against
(see :mod:`repro.analysis.baseline`): keys survive unrelated line-number
churn, so a reviewed exception stays suppressed until the flagged code
itself changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["Finding", "LintReport", "REPORT_FORMAT_VERSION",
           "sort_findings"]

#: JSON report format version written by :meth:`LintReport.to_json_dict`.
REPORT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location.

    Parameters
    ----------
    rule:
        Name of the rule that produced the finding (registry key).
    path:
        Repo-relative posix path of the offending file.
    line:
        1-based line number of the violation.
    symbol:
        The qualified name the finding is about (function, class,
        exported name, or a ``sink<-source`` pair for taint paths).
        Part of the stable baseline key, so it must not contain line
        numbers.
    message:
        Human-readable, single-line description.
    """

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    @property
    def key(self) -> str:
        """The stable baseline-matching key: ``rule:path:symbol``."""
        return f"{self.rule}:{self.path}:{self.symbol}"

    def render(self) -> str:
        """The one-line human form: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (includes the baseline key)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "key": self.key,
        }


@dataclass
class LintReport:
    """The outcome of one lint run.

    Attributes
    ----------
    findings:
        Violations that survived the baseline, sorted by
        ``(path, line, rule, symbol)``.
    suppressed:
        Findings matched (and silenced) by baseline entries.
    files:
        Repo-relative paths of every file analyzed.
    rules:
        Names of the rules that ran.
    unused_baseline:
        Baseline entries that matched no finding -- stale exceptions
        that should be deleted from the baseline file.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    rules: List[str] = field(default_factory=list)
    unused_baseline: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no surviving findings)."""
        return not self.findings

    def render_lines(self) -> List[str]:
        """Human-readable report: one line per finding plus a summary."""
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            lines.append("")
        summary = (f"{len(self.findings)} finding(s), "
                   f"{len(self.suppressed)} suppressed by baseline "
                   f"({len(self.files)} files, "
                   f"{len(self.rules)} rules)")
        lines.append(summary)
        for entry in self.unused_baseline:
            lines.append(f"warning: stale baseline entry (matched "
                         f"nothing): {entry}")
        return lines

    def to_json_dict(self) -> Dict[str, Any]:
        """The machine-readable artifact CI uploads."""
        return {
            "format_version": REPORT_FORMAT_VERSION,
            "ok": self.ok,
            "rules": list(self.rules),
            "files": list(self.files),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "unused_baseline": list(self.unused_baseline),
        }


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Findings in the canonical deterministic report order."""
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.rule, f.symbol))
