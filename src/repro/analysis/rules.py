"""The rule catalog: every contract the static-analysis pass enforces.

Each rule is a function from a :class:`~repro.analysis.engine.LintContext`
to a list of :class:`~repro.analysis.report.Finding`, registered under a
stable name via :func:`register_rule`.  The shipped rules defend the
reproduction's core contracts:

``determinism-taint``
    No nondeterministic *source* (wall-clock reads, unseeded
    module-level RNG draws, ``os.environ`` reads, unsorted directory
    listings, ``id()``/``hash()``, set iteration) may be reachable --
    through the cross-module call graph -- from a fingerprint /
    serialization / persistent-cache-key *sink*.  A leak here silently
    poisons every content-addressed store.
``worker-state``
    Callables shipped through ``WorkerPool.imap`` (or a raw
    ``multiprocessing`` pool) must be module-level and must not mutate
    module-level state: the single-process race detector for the pool.
    The pool's own dispatch shim is the checked *mechanism* and is
    exempt by construction (its worker-side state cache is the
    documented broadcast protocol).
``unseeded-rng``
    Every RNG construction (``random.Random``, ``numpy.random
    .default_rng``/``RandomState``) must take an explicit, non-``None``
    seed; ``random.SystemRandom`` is never reproducible and always
    flagged.
``raw-timing``
    ``time.perf_counter`` and friends may only be read inside
    ``repro.obs`` -- everywhere else, ``span.seconds`` is the single
    timing source (the PR 7 telemetry contract).
``exports``
    In every module that declares ``__all__``, each exported name must
    exist and each public module-level symbol must be exported or
    underscore-private.
``docstrings``
    The documentation guarantee migrated from ``tools/lint_docs.py``:
    modules, public classes and public functions in the guaranteed
    packages (:data:`DOCSTRING_TARGETS`) carry docstrings.
``supervision-exceptions``
    The fault-tolerance layer (:data:`SUPERVISION_MODULES`) may not use
    bare ``except`` or blanket ``except Exception`` / ``BaseException``
    handlers: a supervisor that swallows everything turns real bugs
    into silent retries, so every handler there must name the concrete
    failure classes it absorbs.
``async-safety``
    Coroutines in the service layer (:data:`ASYNC_MODULES`) may not
    reach blocking calls -- ``time.sleep``, raw ``open``/``os.replace``
    file IO, ``WorkerPool.imap``, ``subprocess`` -- through the call
    graph: one blocking call on the event loop stalls every connected
    client.  Blocking work belongs behind ``loop.run_in_executor``
    (passing a function *as an argument* creates no call edge, so the
    executor route is structurally exempt).

The in-memory :class:`~repro.core.interval.ModelCache` keys ``id()`` on
purpose (pinned profiles make identity a safe per-process key), so the
taint sinks are the *persistent* surfaces: fingerprints, profile/run
serialization, and the on-disk stores.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    dotted_parts,
)
from repro.analysis.report import Finding

__all__ = [
    "Rule",
    "RULES",
    "register_rule",
    "ASYNC_MODULES",
    "DOCSTRING_TARGETS",
    "SUPERVISION_MODULES",
    "TAINT_SINKS",
    "TIME_CLOCKS",
]


@dataclass(frozen=True)
class Rule:
    """One registered rule: a name, a summary, and its check function."""

    name: str
    summary: str
    check: Callable


#: Registry of every shipped rule, keyed by rule name.
RULES: Dict[str, Rule] = {}


def register_rule(name: str, summary: str):
    """Class/function decorator registering a rule under ``name``."""
    def decorate(func: Callable) -> Callable:
        RULES[name] = Rule(name=name, summary=summary, check=func)
        return func
    return decorate


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _walk_own(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs.

    Nested functions and classes are analyzed as functions in their own
    right; attributing their bodies to the enclosing function would
    taint callers that merely *define* a helper without running it.
    """
    def subtree(node: ast.AST) -> Iterator[ast.AST]:
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        for child in ast.iter_child_nodes(node):
            yield from subtree(child)

    for child in ast.iter_child_nodes(root):
        yield from subtree(child)


def _sorted_wrapped_calls(root: ast.AST) -> Set[int]:
    """ids of Call nodes passed directly to ``sorted(...)``.

    ``sorted(os.listdir(p))`` is deterministic; the inner listing call
    is exempt from the filesystem-order taint source.
    """
    exempt: Set[int] = set()
    for node in _walk_own(root):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"):
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    exempt.add(id(arg))
    return exempt


def _local_names(func_node: ast.AST) -> Set[str]:
    """Names bound locally in a function (params + assignments)."""
    names: Set[str] = set()
    args = getattr(func_node, "args", None)
    if args is not None:
        for arg in (list(getattr(args, "posonlyargs", [])) + list(args.args)
                    + list(args.kwonlyargs)):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    for node in _walk_own(func_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
    return names


# ----------------------------------------------------------------------
# Rule: determinism-taint
# ----------------------------------------------------------------------

#: Wall-clock reads (every one a taint source).
TIME_CLOCKS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
})

_DATETIME_SOURCES = frozenset({
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "datetime.now",
    "datetime.utcnow", "datetime.today",
})

_FS_SOURCES = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

_FS_METHODS = frozenset({"iterdir", "glob", "rglob", "scandir"})

#: RNG constructors that are fine *when seeded* (checked by
#: ``unseeded-rng``); everything else on these modules draws from
#: hidden global state and is a taint source outright.
_SEEDABLE_RANDOM = frozenset({"Random", "SystemRandom"})
_SEEDABLE_NP_RANDOM = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator",
})

#: Fingerprint / serialization / persistent-cache-key sinks, matched
#: against qualified function names with fnmatch semantics.
TAINT_SINKS: Tuple[str, ...] = (
    "*.canonical_fingerprint",
    "*.profile_fingerprint",
    "*.profile_to_dict",
    "*.save_profile",
    "*ProfileStore.put",
    "*ProfileStore.warm",
    "*ProfileStore.save_tables",
    "*ExperimentSpec.to_dict",
    "*ExperimentSpec.fingerprint",
    "*RunResult.to_dict",
    "*RunResult.save",
    "*RunResult.fingerprint",
    "*RunStore.put",
    "*RunStore.path",
)


def _taint_sources(info: FunctionInfo,
                   module: ModuleInfo) -> List[Tuple[int, str]]:
    """Nondeterministic source sites in one function body.

    Returns ``(line, label)`` pairs, deduplicated and sorted.
    """
    sites: Set[Tuple[int, str]] = set()
    exempt = _sorted_wrapped_calls(info.node)
    shadowed = set(module.bindings) - set(module.imports)

    def qualified(node: ast.AST) -> Optional[str]:
        parts = dotted_parts(node)
        if parts is None:
            return None
        return ".".join(module.qualify(parts))

    for node in _walk_own(info.node):
        if isinstance(node, ast.Call):
            dotted = qualified(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if dotted in TIME_CLOCKS or dotted in _DATETIME_SOURCES:
                sites.add((node.lineno, dotted))
            elif (parts[0] == "random" and len(parts) == 2
                    and parts[1] not in _SEEDABLE_RANDOM):
                sites.add((node.lineno, dotted))
            elif (parts[:2] == ["numpy", "random"] and len(parts) == 3
                    and parts[2] not in _SEEDABLE_NP_RANDOM):
                sites.add((node.lineno, dotted))
            elif dotted in _FS_SOURCES and id(node) not in exempt:
                sites.add((node.lineno, dotted))
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _FS_METHODS
                    and id(node) not in exempt
                    and dotted not in _FS_SOURCES):
                sites.add((node.lineno, f"*.{node.func.attr}()"))
            elif dotted == "os.getenv":
                sites.add((node.lineno, dotted))
            elif dotted in ("id", "hash") and dotted not in shadowed:
                sites.add((node.lineno, f"{dotted}()"))
        elif isinstance(node, ast.Attribute):
            dotted = qualified(node)
            if dotted == "os.environ":
                sites.add((node.lineno, "os.environ"))
        elif isinstance(node, (ast.For, ast.comprehension)):
            iterable = node.iter
            if isinstance(iterable, (ast.Set, ast.SetComp)):
                sites.add((iterable.lineno, "set iteration"))
            elif (isinstance(iterable, ast.Call)
                    and isinstance(iterable.func, ast.Name)
                    and iterable.func.id == "set"
                    and "set" not in shadowed):
                sites.add((iterable.lineno, "set iteration"))
    return sorted(sites)


@register_rule(
    "determinism-taint",
    "no nondeterministic source may reach a fingerprint/serialization/"
    "cache-key sink through the call graph",
)
def _check_determinism_taint(ctx) -> List[Finding]:
    """Walk the call graph forward from every sink; report sources."""
    graph: CallGraph = ctx.graph
    sink_patterns = tuple(ctx.options.get("taint_sinks", TAINT_SINKS))
    source_cache: Dict[str, List[Tuple[int, str]]] = {}
    findings: List[Finding] = []
    sinks = sorted(
        qualname for qualname in graph.functions
        if any(fnmatchcase(qualname, pat) for pat in sink_patterns)
    )
    for sink in sinks:
        for reached, chain in sorted(graph.reachable(sink).items()):
            info = graph.functions[reached]
            if reached not in source_cache:
                module = graph.modules[info.module]
                source_cache[reached] = _taint_sources(info, module)
            for line, label in source_cache[reached]:
                route = " -> ".join(
                    graph.functions[q].name for q in reversed(chain)
                )
                sink_name = sink.split(".")[-1]
                findings.append(Finding(
                    rule="determinism-taint",
                    path=info.path,
                    line=line,
                    symbol=f"{sink_name}<-{label}",
                    message=(
                        f"nondeterministic source '{label}' (in "
                        f"{info.qualname}) reaches sink '{sink}' via "
                        f"{route}"
                    ),
                ))
    return findings


# ----------------------------------------------------------------------
# Rule: worker-state
# ----------------------------------------------------------------------

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "sort", "reverse",
})


def _module_state_mutations(info: FunctionInfo,
                            module: ModuleInfo) -> List[Tuple[int, str]]:
    """Sites where a function mutates module-level state."""
    sites: List[Tuple[int, str]] = []
    local = _local_names(info.node)
    module_names = set(module.defined)

    def is_module_name(node: ast.AST) -> Optional[str]:
        if (isinstance(node, ast.Name) and node.id in module_names
                and node.id not in local):
            return node.id
        return None

    for node in _walk_own(info.node):
        if isinstance(node, ast.Global):
            for name in node.names:
                sites.append((node.lineno, f"declares 'global {name}'"))
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                name = is_module_name(base)
                if name is not None and base is not target:
                    sites.append((node.lineno,
                                  f"writes into module-level '{name}'"))
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS):
                name = is_module_name(func.value)
                if name is not None:
                    sites.append((
                        node.lineno,
                        f"calls '{name}.{func.attr}(...)' on "
                        f"module-level state",
                    ))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                name = is_module_name(base)
                if name is not None:
                    sites.append((node.lineno,
                                  f"deletes from module-level '{name}'"))
    return sites


@register_rule(
    "worker-state",
    "callables shipped through a worker pool must be module-level and "
    "must not mutate module-level state",
)
def _check_worker_state(ctx) -> List[Finding]:
    """Check every ``.imap(func, ...)`` dispatch site's shipped callable."""
    graph: CallGraph = ctx.graph
    findings: List[Finding] = []
    for qualname in sorted(graph.functions):
        info = graph.functions[qualname]
        module = graph.modules[info.module]
        # The pool implementation module is the mechanism under test,
        # not a client: its internal dispatch shim deliberately keeps a
        # worker-side state cache (the broadcast protocol).
        if "WorkerPool" in module.classes:
            continue
        for call in info.calls:
            if call.text.split(".")[-1] != "imap" or "." not in call.text:
                continue
            if not call.node.args:
                continue
            shipped = call.node.args[0]
            if isinstance(shipped, ast.Lambda):
                findings.append(Finding(
                    rule="worker-state", path=info.path,
                    line=call.lineno, symbol=f"{qualname}.<lambda>",
                    message=("lambda shipped to a worker pool: dispatch "
                             "targets must be module-level (picklable) "
                             "functions"),
                ))
                continue
            if not isinstance(shipped, ast.Name):
                continue
            target = _resolve_shipped(graph, module, shipped.id, info)
            if target is None:
                continue
            if target.is_nested or target.cls is not None:
                findings.append(Finding(
                    rule="worker-state", path=info.path,
                    line=call.lineno, symbol=target.qualname,
                    message=(f"'{target.name}' shipped to a worker pool "
                             f"is not a module-level function (closures "
                             f"do not pickle and hide shared state)"),
                ))
                continue
            for mutated in _shipped_closure(graph, target):
                mut_module = graph.modules[mutated.module]
                for line, what in _module_state_mutations(mutated,
                                                          mut_module):
                    suffix = ("" if mutated is target
                              else f" (via {mutated.name})")
                    findings.append(Finding(
                        rule="worker-state", path=info.path,
                        line=call.lineno, symbol=target.qualname,
                        message=(f"'{target.name}' shipped to a worker "
                                 f"pool {what} at {mutated.path}:{line}"
                                 f"{suffix}; shipped callables must not "
                                 f"mutate module-level state"),
                    ))
    return findings


def _resolve_shipped(graph: CallGraph, module: ModuleInfo, name: str,
                     caller: FunctionInfo) -> Optional[FunctionInfo]:
    """The function a bare name at a dispatch site refers to, if known."""
    nested = f"{caller.qualname}.{name}"
    if nested in graph.functions:
        return graph.functions[nested]
    candidate = f"{module.name}.{name}"
    if candidate in graph.functions:
        return graph.functions[candidate]
    target = module.imports.get(name)
    if target in graph.functions:
        return graph.functions[target]
    return None


def _shipped_closure(graph: CallGraph,
                     target: FunctionInfo) -> List[FunctionInfo]:
    """The shipped function plus its same-module transitive callees.

    Module-level mutable state travels with the shipped function's
    *module* under pickle, so the race surface is the closure of calls
    that stay inside that module.
    """
    seen = {target.qualname}
    queue = [target.qualname]
    out = [target]
    while queue:
        current = queue.pop(0)
        for callee in graph.callees(current):
            if callee in seen:
                continue
            info = graph.functions.get(callee)
            if info is None or info.module != target.module:
                continue
            seen.add(callee)
            queue.append(callee)
            out.append(info)
    return out


# ----------------------------------------------------------------------
# Rule: unseeded-rng
# ----------------------------------------------------------------------

_RNG_CONSTRUCTORS = frozenset({
    "random.Random", "numpy.random.RandomState",
    "numpy.random.default_rng",
})


@register_rule(
    "unseeded-rng",
    "every RNG construction must take an explicit, non-None seed",
)
def _check_unseeded_rng(ctx) -> List[Finding]:
    """Flag seedless ``Random()`` / ``default_rng()`` constructions."""
    findings: List[Finding] = []
    for module in ctx.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if parts is None:
                continue
            dotted = ".".join(module.qualify(parts))
            if dotted == "random.SystemRandom":
                findings.append(Finding(
                    rule="unseeded-rng", path=module.path,
                    line=node.lineno, symbol=dotted,
                    message=("random.SystemRandom draws OS entropy and "
                             "can never reproduce; use a seeded "
                             "random.Random"),
                ))
                continue
            if dotted not in _RNG_CONSTRUCTORS:
                continue
            seeded = False
            if node.args:
                first = node.args[0]
                seeded = not (isinstance(first, ast.Constant)
                              and first.value is None)
            else:
                for keyword in node.keywords:
                    if keyword.arg in ("seed", "x"):
                        seeded = not (
                            isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is None
                        )
            if not seeded:
                findings.append(Finding(
                    rule="unseeded-rng", path=module.path,
                    line=node.lineno, symbol=dotted,
                    message=(f"'{dotted}()' constructed without an "
                             f"explicit seed; pass a seed so runs "
                             f"reproduce"),
                ))
    return findings


# ----------------------------------------------------------------------
# Rule: raw-timing
# ----------------------------------------------------------------------

#: Modules allowed to read wall clocks (the telemetry layer itself).
_TIMING_ALLOWED = ("repro.obs", "repro.obs.*")


@register_rule(
    "raw-timing",
    "no raw clock reads outside repro.obs: span.seconds is the single "
    "timing source",
)
def _check_raw_timing(ctx) -> List[Finding]:
    """Flag ``time.perf_counter``-family references outside the obs layer."""
    allowed = tuple(ctx.options.get("timing_allowed_modules",
                                    _TIMING_ALLOWED))
    clock_names = {name.split(".")[-1] for name in TIME_CLOCKS}
    findings: List[Finding] = []
    for module in ctx.modules:
        if any(fnmatchcase(module.name, pat) for pat in allowed):
            continue
        seen: Set[Tuple[int, str]] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in clock_names:
                        seen.add((node.lineno, f"time.{alias.name}"))
            elif isinstance(node, ast.Attribute):
                parts = dotted_parts(node)
                if parts is None:
                    continue
                dotted = ".".join(module.qualify(parts))
                if dotted in TIME_CLOCKS:
                    seen.add((node.lineno, dotted))
        for line, label in sorted(seen):
            findings.append(Finding(
                rule="raw-timing", path=module.path, line=line,
                symbol=label,
                message=(f"raw clock read '{label}' outside repro.obs; "
                         f"time with 'with obs.span(...) as span' and "
                         f"read span.seconds (NullTracer still times)"),
            ))
    return findings


# ----------------------------------------------------------------------
# Rule: exports
# ----------------------------------------------------------------------


#: Public-by-convention module attributes the exports rule ignores:
#: ``logger = logging.getLogger(__name__)`` is the stdlib logging idiom
#: and is deliberately not part of any module's exported API.
_EXPORT_EXEMPT = frozenset({"logger"})


@register_rule(
    "exports",
    "__all__ names must exist; public module symbols must be exported "
    "or underscore-private",
)
def _check_exports(ctx) -> List[Finding]:
    """Check ``__all__`` consistency in every module declaring one."""
    findings: List[Finding] = []
    for module in ctx.modules:
        if module.dunder_all is None:
            continue
        exported = set(module.dunder_all)
        for name in module.dunder_all:
            if name not in module.bindings:
                findings.append(Finding(
                    rule="exports", path=module.path,
                    line=module.dunder_all_line, symbol=name,
                    message=(f"'{name}' is listed in __all__ but not "
                             f"defined or imported in the module"),
                ))
        for name in sorted(module.defined):
            if (name.startswith("_") or name in exported
                    or name in _EXPORT_EXEMPT):
                continue
            findings.append(Finding(
                rule="exports", path=module.path,
                line=module.defined[name], symbol=name,
                message=(f"public symbol '{name}' is neither exported "
                         f"in __all__ nor underscore-private"),
            ))
    return findings


# ----------------------------------------------------------------------
# Rule: docstrings (migrated from tools/lint_docs.py)
# ----------------------------------------------------------------------

#: The packages whose public APIs the documentation pass guarantees.
#: ``tools/lint_docs.py`` and the CI step report this same list.
DOCSTRING_TARGETS: Tuple[str, ...] = (
    "src/repro/explore",
    "src/repro/api",
    "src/repro/obs",
    "src/repro/analysis",
    "src/repro/faults",
    "src/repro/serve",
    "src/repro/core/model.py",
)


def _path_in_targets(path: str, targets: Sequence[str]) -> bool:
    """Whether a repo-relative path falls under any target entry."""
    for target in targets:
        target = target.rstrip("/")
        if path == target or path.startswith(target + "/"):
            return True
        if fnmatchcase(path, target):
            return True
    return False


def _walk_docstrings(node: ast.AST, qualname: str, path: str,
                     findings: List[Finding]) -> None:
    for child in getattr(node, "body", []):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            if child.name.startswith("_"):
                continue
            child_name = f"{qualname}.{child.name}"
            if ast.get_docstring(child) is None:
                # Properties wrapping one-line returns still need docs;
                # no exemptions keeps the rule easy to reason about.
                findings.append(Finding(
                    rule="docstrings", path=path, line=child.lineno,
                    symbol=child_name,
                    message=f"missing docstring: {child_name}",
                ))
            if isinstance(child, ast.ClassDef):
                _walk_docstrings(child, child_name, path, findings)


@register_rule(
    "docstrings",
    "modules and public APIs in the guaranteed packages carry "
    "docstrings",
)
def _check_docstrings(ctx) -> List[Finding]:
    """Require docstrings on public APIs under the guaranteed targets."""
    targets = tuple(ctx.options.get("docstring_targets",
                                    DOCSTRING_TARGETS))
    findings: List[Finding] = []
    for module in ctx.modules:
        if not _path_in_targets(module.path, targets):
            continue
        if ast.get_docstring(module.tree) is None:
            findings.append(Finding(
                rule="docstrings", path=module.path, line=1,
                symbol=module.name,
                message=f"missing module docstring: {module.path}",
            ))
        _walk_docstrings(module.tree, module.name, module.path,
                         findings)
    return findings


# ----------------------------------------------------------------------
# Rule: supervision-exceptions
# ----------------------------------------------------------------------

#: Module patterns (``fnmatch`` over dotted names) forming the
#: supervision layer: the code that catches other code's failures on
#: purpose, and must therefore say exactly which failures it catches.
SUPERVISION_MODULES: Tuple[str, ...] = (
    "repro.faults",
    "repro.faults.*",
    "repro.api.pool",
)


def _blanket_handler_label(type_node: Optional[ast.AST]) -> Optional[str]:
    """The offending label of a blanket handler, or ``None`` if named.

    Flags ``except:`` (no type), ``except Exception`` /
    ``BaseException``, and tuples containing either.  Handlers naming
    concrete classes -- including project exception types referenced by
    attribute -- pass.
    """
    if type_node is None:
        return "bare except"
    nodes = (type_node.elts if isinstance(type_node, ast.Tuple)
             else [type_node])
    for node in nodes:
        if (isinstance(node, ast.Name)
                and node.id in ("Exception", "BaseException")):
            return f"except {node.id}"
    return None


@register_rule(
    "supervision-exceptions",
    "no bare except / blanket Exception handlers in the supervision "
    "layer",
)
def _check_supervision_exceptions(ctx) -> List[Finding]:
    """Flag blanket exception handlers inside the supervision modules.

    The retry/restart machinery decides, per failure class, whether to
    retry, restart the pool, or give up -- a handler that catches
    ``Exception`` (or everything) erases that decision and turns
    deterministic bugs into silent retries.  Scope comes from the
    ``supervision_modules`` option (default
    :data:`SUPERVISION_MODULES`).
    """
    patterns = tuple(ctx.options.get("supervision_modules",
                                     SUPERVISION_MODULES))
    findings: List[Finding] = []
    for module in ctx.modules:
        if not any(fnmatchcase(module.name, pat) for pat in patterns):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = _blanket_handler_label(node.type)
            if label is None:
                continue
            findings.append(Finding(
                rule="supervision-exceptions", path=module.path,
                line=node.lineno, symbol=label,
                message=(f"{label} in supervision module "
                         f"'{module.name}': name the concrete failure "
                         f"classes this handler absorbs (blanket "
                         f"handlers turn real bugs into silent "
                         f"retries)"),
            ))
    return findings


# ----------------------------------------------------------------------
# Rule: async-safety
# ----------------------------------------------------------------------

#: Module patterns (``fnmatch`` over dotted names) forming the async
#: service layer, where the event loop must never block.
ASYNC_MODULES: Tuple[str, ...] = (
    "repro.serve",
    "repro.serve.*",
)

#: Dotted blocking calls that stall the event loop outright.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.replace",
    "os.rename",
})

#: Attribute-call method names that dispatch blocking work (the worker
#: pool's map surface).
_BLOCKING_METHODS = frozenset({"imap"})


def _blocking_sites(info: FunctionInfo,
                    module: ModuleInfo) -> List[Tuple[int, str]]:
    """Blocking call sites in one function body.

    Returns ``(line, label)`` pairs, deduplicated and sorted.  A
    function merely *passed* somewhere (e.g. into
    ``loop.run_in_executor``) is never a call site, so routing blocking
    work through the executor is exempt by construction.
    """
    sites: Set[Tuple[int, str]] = set()
    local = _local_names(info.node)
    shadowed = set(module.bindings) - set(module.imports)

    for node in _walk_own(info.node):
        if not isinstance(node, ast.Call):
            continue
        parts = dotted_parts(node.func)
        dotted = (".".join(module.qualify(parts))
                  if parts is not None else None)
        if dotted is not None:
            root = dotted.split(".")[0]
            if dotted in _BLOCKING_CALLS:
                sites.add((node.lineno, dotted))
                continue
            if root == "subprocess":
                sites.add((node.lineno, dotted))
                continue
            if (dotted == "open" and "open" not in local
                    and "open" not in shadowed):
                sites.add((node.lineno, "open()"))
                continue
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS):
            sites.add((node.lineno, f"*.{node.func.attr}()"))
    return sorted(sites)


@register_rule(
    "async-safety",
    "coroutines in the service layer may not reach blocking calls "
    "except through run_in_executor",
)
def _check_async_safety(ctx) -> List[Finding]:
    """Walk the call graph forward from every service-layer coroutine.

    Any ``async def`` in the scoped modules (the ``async_modules``
    option, default :data:`ASYNC_MODULES`) is a start point; every
    function it can reach through *direct* calls is scanned for
    blocking sites.  Call edges come only from actual call expressions,
    so work handed to ``loop.run_in_executor`` (a function reference
    argument, never a call) stays invisible to the walk -- exactly the
    one sanctioned escape hatch.
    """
    graph: CallGraph = ctx.graph
    patterns = tuple(ctx.options.get("async_modules", ASYNC_MODULES))
    site_cache: Dict[str, List[Tuple[int, str]]] = {}
    findings: List[Finding] = []
    coroutines = sorted(
        qualname for qualname, info in graph.functions.items()
        if isinstance(info.node, ast.AsyncFunctionDef)
        and any(fnmatchcase(info.module, pat) for pat in patterns)
    )
    for coroutine in coroutines:
        for reached, chain in sorted(graph.reachable(coroutine).items()):
            info = graph.functions[reached]
            if reached not in site_cache:
                module = graph.modules[info.module]
                site_cache[reached] = _blocking_sites(info, module)
            for line, label in site_cache[reached]:
                route = " -> ".join(
                    graph.functions[q].name for q in chain
                )
                coroutine_name = coroutine.split(".")[-1]
                findings.append(Finding(
                    rule="async-safety",
                    path=info.path,
                    line=line,
                    symbol=f"{coroutine_name}<-{label}",
                    message=(
                        f"blocking call '{label}' (in {info.qualname}) "
                        f"is reachable from coroutine '{coroutine}' via "
                        f"{route}; the event loop must not block -- "
                        f"route it through loop.run_in_executor"
                    ),
                ))
    return findings
