"""Empirical (black-box regression) baseline model (thesis §7.5).

The thesis compares its mechanistic model against an empirical model
trained on simulation results.  This module implements that baseline as
polynomial ridge regression over configuration + workload features using
``numpy.linalg`` (the available offline substitute for sklearn).

The expected outcome -- which the thesis reports and our benches verify --
is that the empirical model predicts *average* performance/power well but
tracks per-design trends (and hence Pareto fronts) worse than the
mechanistic model unless trained on a dense sample of the same space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.machine import MachineConfig
from repro.profiler.profile import ApplicationProfile
from repro.isa import UopKind


def config_features(config: MachineConfig) -> List[float]:
    """Numeric features of a machine configuration.

    Parameters
    ----------
    config:
        The machine configuration to featurize.

    Returns
    -------
    list of float
        Width, log-sizes, frequency and MSHR count.
    """
    return [
        float(config.dispatch_width),
        float(np.log2(config.rob_size)),
        float(np.log2(config.l1d.size_bytes)),
        float(np.log2(config.l2.size_bytes)),
        float(np.log2(config.llc.size_bytes)),
        float(config.frequency_ghz),
        float(config.mshr_entries),
    ]


def workload_features(profile: ApplicationProfile) -> List[float]:
    """Numeric micro-architecture independent workload features.

    Parameters
    ----------
    profile:
        The application profile to featurize.

    Returns
    -------
    list of float
        Mix fractions, chain lengths, branch entropy and StatStack
        miss ratios at three cache sizes.
    """
    mix = profile.mix
    statstack = profile.statstack()
    mb = 1024 * 1024
    return [
        mix.uops_per_instruction,
        mix.load_fraction,
        mix.store_fraction,
        mix.branch_fraction,
        profile.chains.cp.at(128),
        profile.chains.ap.at(128),
        profile.branch_entropy.at(12),
        statstack.miss_ratio(32 * 1024, kind="load"),
        statstack.miss_ratio(256 * 1024, kind="load"),
        statstack.miss_ratio(8 * mb, kind="load"),
    ]


@dataclass
class EmpiricalModel:
    """Ridge regression with quadratic interaction features.

    Trained on (profile, config) -> target tuples; the target is
    typically simulated CPI or power.
    """

    ridge: float = 1e-3
    _weights: Optional[np.ndarray] = None
    _mean: Optional[np.ndarray] = None
    _std: Optional[np.ndarray] = None

    def _raw_features(
        self, profile: ApplicationProfile, config: MachineConfig
    ) -> np.ndarray:
        return np.array(
            workload_features(profile) + config_features(config),
            dtype=np.float64,
        )

    def _expand(self, x: np.ndarray) -> np.ndarray:
        """Standardized linear + pairwise interaction features + bias."""
        z = (x - self._mean) / self._std
        pairs = np.outer(z, z)[np.triu_indices(len(z))]
        return np.concatenate([[1.0], z, pairs])

    def fit_sweep(
        self,
        profiles: Sequence[ApplicationProfile],
        configs: Sequence[MachineConfig],
        engine=None,
        target: Optional[Callable[["object"], float]] = None,
    ) -> "EmpiricalModel":
        """Fit on a (profiles x configs) grid evaluated by the engine.

        The thesis trains its empirical baseline on simulated samples;
        this helper generates the training targets from the mechanistic
        model instead, streaming the grid through a
        :class:`~repro.explore.engine.SweepEngine` so large training
        sets benefit from its batching, workers and profile caches.

        Parameters
        ----------
        profiles / configs:
            The training grid.
        engine:
            Optional sweep engine; a serial default is built when
            omitted.
        target:
            Maps a :class:`~repro.explore.dse.DesignPoint` to the
            regression target; defaults to CPI.

        Returns
        -------
        EmpiricalModel
            ``self``, fitted.
        """
        from repro.explore.engine import SweepEngine

        engine = engine if engine is not None else SweepEngine()
        metric = target if target is not None else (lambda p: p.cpi)
        by_name = {profile.name: profile for profile in profiles}
        samples = [
            (by_name[point.workload], point.config, metric(point))
            for point in engine.iter_sweep(profiles, configs)
        ]
        return self.fit(samples)

    def fit(
        self,
        samples: Sequence[Tuple[ApplicationProfile, MachineConfig, float]],
    ) -> "EmpiricalModel":
        """Least-squares fit with L2 regularization.

        Parameters
        ----------
        samples:
            ``(profile, config, target)`` training triples; at least 3.

        Returns
        -------
        EmpiricalModel
            ``self``, fitted.

        Raises
        ------
        ValueError
            With fewer than 3 samples.
        """
        if len(samples) < 3:
            raise ValueError("need at least 3 training samples")
        raw = np.array(
            [self._raw_features(p, c) for p, c, _ in samples]
        )
        self._mean = raw.mean(axis=0)
        self._std = raw.std(axis=0)
        self._std[self._std == 0.0] = 1.0
        design = np.array([self._expand(x) for x in raw])
        targets = np.array([t for _, _, t in samples])
        n_features = design.shape[1]
        gram = design.T @ design + self.ridge * np.eye(n_features)
        self._weights = np.linalg.solve(gram, design.T @ targets)
        return self

    def predict(
        self, profile: ApplicationProfile, config: MachineConfig
    ) -> float:
        """Predict the fitted target for one (profile, config) pair.

        Parameters
        ----------
        profile / config:
            The pair to evaluate.

        Returns
        -------
        float
            The regression prediction.

        Raises
        ------
        RuntimeError
            If the model has not been fitted.
        """
        if self._weights is None:
            raise RuntimeError("model not fitted")
        x = self._raw_features(profile, config)
        return float(self._expand(x) @ self._weights)
