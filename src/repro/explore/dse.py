"""Design-space sweeps and error statistics (thesis §6.2.4, §6.3.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.machine import MachineConfig
from repro.core.model import AnalyticalModel, ModelResult
from repro.profiler.profile import ApplicationProfile


@dataclass
class DesignPoint:
    """One (workload, configuration) evaluation."""

    workload: str
    config: MachineConfig
    result: ModelResult

    @property
    def cpi(self) -> float:
        return self.result.cpi

    @property
    def seconds(self) -> float:
        return self.result.seconds

    @property
    def power_watts(self) -> float:
        return self.result.power_watts

    @property
    def energy_joules(self) -> float:
        return self.result.energy_joules


def evaluate_design_space(
    profiles: Sequence[ApplicationProfile],
    configs: Sequence[MachineConfig],
    model: Optional[AnalyticalModel] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Dict[str, List[DesignPoint]]:
    """Evaluate every profile against every configuration.

    This is the operation the micro-architecture independent profile makes
    cheap: the profiles were collected once; each (workload, config)
    evaluation is a pure model computation.
    """
    model = model or AnalyticalModel()
    results: Dict[str, List[DesignPoint]] = {}
    total = len(profiles) * len(configs)
    done = 0
    for profile in profiles:
        points: List[DesignPoint] = []
        for config in configs:
            points.append(
                DesignPoint(
                    workload=profile.name,
                    config=config,
                    result=model.predict(profile, config),
                )
            )
            done += 1
            if progress is not None:
                progress(done, total)
        results[profile.name] = points
    return results


def best_config_per_workload(
    results: Dict[str, List[DesignPoint]],
    metric: Callable[[DesignPoint], float] = lambda p: p.cpi,
) -> Dict[str, DesignPoint]:
    """The application-specific optimum per workload (thesis Fig 7.2).

    ``metric`` is minimized; defaults to CPI.
    """
    return {
        workload: min(points, key=metric)
        for workload, points in results.items()
    }


def best_average_config(
    results: Dict[str, List[DesignPoint]],
    metric: Callable[[DesignPoint], float] = lambda p: p.cpi,
) -> str:
    """The general-purpose core: best average metric across workloads.

    All workloads must have been evaluated over the same configuration
    list (as :func:`evaluate_design_space` guarantees).  Returns the
    winning configuration's name.
    """
    if not results:
        raise ValueError("no design-space results")
    workloads = list(results)
    n_configs = len(results[workloads[0]])
    for workload in workloads:
        if len(results[workload]) != n_configs:
            raise ValueError("workloads evaluated over different spaces")
    averages = []
    for index in range(n_configs):
        total = sum(metric(results[w][index]) for w in workloads)
        averages.append(total / len(workloads))
    best = min(range(n_configs), key=lambda i: averages[i])
    return results[workloads[0]][best].config.name


@dataclass
class ErrorStats:
    """Absolute-relative-error summary across a set of pairs."""

    mean: float
    maximum: float
    count: int
    per_item: List[Tuple[str, float]] = field(default_factory=list)


def error_statistics(
    predicted: Sequence[float],
    reference: Sequence[float],
    labels: Optional[Sequence[str]] = None,
) -> ErrorStats:
    """Mean/max absolute relative error of predictions vs references."""
    if len(predicted) != len(reference):
        raise ValueError("length mismatch")
    errors: List[Tuple[str, float]] = []
    for index, (p, r) in enumerate(zip(predicted, reference)):
        if r == 0:
            continue
        label = labels[index] if labels else str(index)
        errors.append((label, abs(p - r) / abs(r)))
    if not errors:
        return ErrorStats(mean=0.0, maximum=0.0, count=0)
    values = [e for _, e in errors]
    return ErrorStats(
        mean=sum(values) / len(values),
        maximum=max(values),
        count=len(values),
        per_item=errors,
    )
