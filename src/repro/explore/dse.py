"""Design-space sweeps and error statistics (thesis §6.2.4, §6.3.2).

:func:`evaluate_design_space` is kept as a thin compatibility shim over
the batched :class:`~repro.explore.engine.SweepEngine`; new code that
wants parallel workers, on-disk profile caching or streaming results
should use the engine directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.machine import MachineConfig
from repro.core.model import AnalyticalModel, ModelResult
from repro.profiler.profile import ApplicationProfile


@dataclass
class DesignPoint:
    """One (workload, configuration) evaluation.

    Attributes
    ----------
    workload:
        Name of the profiled application.
    config:
        The machine configuration evaluated.
    result:
        The full :class:`~repro.core.model.ModelResult` prediction.
    """

    workload: str
    config: MachineConfig
    result: ModelResult

    @property
    def cpi(self) -> float:
        """Predicted cycles per instruction."""
        return self.result.cpi

    @property
    def seconds(self) -> float:
        """Predicted wall-clock execution time in seconds."""
        return self.result.seconds

    @property
    def power_watts(self) -> float:
        """Predicted average power draw in watts."""
        return self.result.power_watts

    @property
    def energy_joules(self) -> float:
        """Predicted total energy in joules."""
        return self.result.energy_joules

    @property
    def edp(self) -> float:
        """Predicted energy-delay product."""
        return self.result.edp

    @property
    def ed2p(self) -> float:
        """Predicted energy-delay-squared product."""
        return self.result.ed2p


def evaluate_design_space(
    profiles: Sequence[ApplicationProfile],
    configs: Sequence[MachineConfig],
    model: Optional[AnalyticalModel] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    workers: int = 1,
    store=None,
) -> Dict[str, List[DesignPoint]]:
    """Evaluate every profile against every configuration.

    This is the operation the micro-architecture independent profile makes
    cheap: the profiles were collected once; each (workload, config)
    evaluation is a pure model computation.

    Compatibility shim over :class:`~repro.explore.engine.SweepEngine`
    (serial by default); results are bitwise identical to the historical
    serial loop for any worker count.

    Parameters
    ----------
    profiles:
        Application profiles to evaluate (one per workload).
    configs:
        Machine configurations forming the design space.
    model:
        Analytical model instance; defaults to a fresh one.
    progress:
        Optional ``progress(done, total)`` callback per design point.
    workers:
        Worker processes for the underlying engine; 1 = serial.
    store:
        Optional :class:`~repro.profiler.serialization.ProfileStore`
        for on-disk profile/intermediate caching.

    Returns
    -------
    dict of str to list of DesignPoint
        Per-workload design points, in configuration order.

    .. deprecated:: 1.1
        Use :class:`repro.api.Session` (``Session.run`` with a
        ``sweep`` :class:`~repro.api.spec.ExperimentSpec`) or
        :meth:`repro.explore.engine.SweepEngine.sweep` directly; both
        share caches and worker pools across calls instead of
        rebuilding them here.
    """
    import warnings

    from repro.explore.engine import SweepEngine

    warnings.warn(
        "evaluate_design_space() is deprecated; use "
        "repro.api.Session.run(ExperimentSpec('sweep', ...)) or "
        "repro.explore.engine.SweepEngine.sweep() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    engine = SweepEngine(
        model=model, workers=workers, store=store, progress=progress
    )
    return engine.sweep(profiles, configs)


def best_config_per_workload(
    results: Dict[str, List[DesignPoint]],
    metric: Callable[[DesignPoint], float] = lambda p: p.cpi,
) -> Dict[str, DesignPoint]:
    """The application-specific optimum per workload (thesis Fig 7.2).

    Parameters
    ----------
    results:
        Per-workload design points from a sweep.
    metric:
        Scalar to minimize per point; defaults to CPI.

    Returns
    -------
    dict of str to DesignPoint
        The metric-minimizing point for each workload.
    """
    return {
        workload: min(points, key=metric)
        for workload, points in results.items()
    }


def best_average_config(
    results: Dict[str, List[DesignPoint]],
    metric: Callable[[DesignPoint], float] = lambda p: p.cpi,
) -> str:
    """The general-purpose core: best average metric across workloads.

    All workloads must have been evaluated over the same configuration
    list (as :func:`evaluate_design_space` guarantees).

    Parameters
    ----------
    results:
        Per-workload design points, all over the same config list.
    metric:
        Scalar to average and minimize; defaults to CPI.

    Returns
    -------
    str
        The winning configuration's name.

    Raises
    ------
    ValueError
        If ``results`` is empty or the workloads were evaluated over
        differently-sized spaces.
    """
    if not results:
        raise ValueError("no design-space results")
    workloads = list(results)
    n_configs = len(results[workloads[0]])
    for workload in workloads:
        if len(results[workload]) != n_configs:
            raise ValueError("workloads evaluated over different spaces")
    averages = []
    for index in range(n_configs):
        total = sum(metric(results[w][index]) for w in workloads)
        averages.append(total / len(workloads))
    best = min(range(n_configs), key=lambda i: averages[i])
    return results[workloads[0]][best].config.name


@dataclass
class ErrorStats:
    """Absolute-relative-error summary across a set of pairs.

    Attributes
    ----------
    mean / maximum:
        Mean and maximum absolute relative error.
    count:
        Number of pairs with a nonzero reference.
    per_item:
        ``(label, error)`` per contributing pair.
    """

    mean: float
    maximum: float
    count: int
    per_item: List[Tuple[str, float]] = field(default_factory=list)


def error_statistics(
    predicted: Sequence[float],
    reference: Sequence[float],
    labels: Optional[Sequence[str]] = None,
) -> ErrorStats:
    """Mean/max absolute relative error of predictions vs references.

    Parameters
    ----------
    predicted / reference:
        Aligned value sequences; pairs with a zero reference are
        skipped.
    labels:
        Optional per-pair labels for :attr:`ErrorStats.per_item`.

    Returns
    -------
    ErrorStats
        The error summary.

    Raises
    ------
    ValueError
        If the sequences have different lengths.
    """
    if len(predicted) != len(reference):
        raise ValueError("length mismatch")
    errors: List[Tuple[str, float]] = []
    for index, (p, r) in enumerate(zip(predicted, reference)):
        if r == 0:
            continue
        label = labels[index] if labels else str(index)
        errors.append((label, abs(p - r) / abs(r)))
    if not errors:
        return ErrorStats(mean=0.0, maximum=0.0, count=0)
    values = [e for _, e in errors]
    return ErrorStats(
        mean=sum(values) / len(values),
        maximum=max(values),
        count=len(values),
        per_item=errors,
    )
