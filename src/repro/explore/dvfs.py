"""DVFS exploration and power-constrained optimization (thesis §7.2-7.3).

The analytical model's performance prediction is in cycles, so scaling
frequency (and the DVFS rail voltage) re-prices the same cycle count in
seconds and watts; memory latency in *cycles* scales with frequency
because DRAM time is constant in nanoseconds.  For simplicity -- and like
the thesis' DVFS study -- we re-evaluate the model per operating point
with a frequency-scaled DRAM latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.machine import DVFSPoint, MachineConfig, dvfs_points
from repro.core.model import AnalyticalModel, ModelResult
from repro.profiler.profile import ApplicationProfile


@dataclass
class DVFSResult:
    """Model evaluation at one DVFS operating point."""

    point: DVFSPoint
    result: ModelResult

    @property
    def seconds(self) -> float:
        """Predicted execution time at this operating point."""
        return self.result.seconds

    @property
    def power_watts(self) -> float:
        """Predicted average power at this operating point."""
        return self.result.power_watts

    @property
    def energy_joules(self) -> float:
        """Predicted total energy at this operating point."""
        return self.result.energy_joules

    @property
    def edp(self) -> float:
        """Energy-delay product at this operating point."""
        return self.result.edp

    @property
    def ed2p(self) -> float:
        """Energy-delay-squared product at this operating point."""
        return self.result.ed2p


def config_at(
    base: MachineConfig, point: DVFSPoint
) -> MachineConfig:
    """The base machine re-clocked to one DVFS point.

    DRAM latency is constant in wall-clock time, so its cycle count scales
    with frequency.
    """
    scale = point.frequency_ghz / base.frequency_ghz
    return replace(
        base,
        name=f"{base.name}@{point.frequency_ghz:.2f}GHz",
        frequency_ghz=point.frequency_ghz,
        vdd=point.vdd,
        dram_latency=max(1, int(round(base.dram_latency * scale))),
        bus_transfer_cycles=max(
            1, int(round(base.bus_transfer_cycles * scale))
        ),
    )


def explore_dvfs(
    profile: ApplicationProfile,
    base: MachineConfig,
    points: Optional[Sequence[DVFSPoint]] = None,
    model: Optional[AnalyticalModel] = None,
    engine=None,
) -> List[DVFSResult]:
    """Evaluate the model at each DVFS point (Table 7.2 / Fig 7.3).

    Parameters
    ----------
    profile:
        The application profile.
    base:
        The machine to re-clock.
    points:
        DVFS operating points; defaults to the Table 7.2 grid.
    model:
        Analytical model; defaults to a fresh one.  Ignored when
        ``engine`` is given.
    engine:
        Optional :class:`~repro.explore.engine.SweepEngine`; the grid is
        then evaluated through the engine (sharing its caches and
        worker pool) instead of a local serial loop.

    Returns
    -------
    list of DVFSResult
        One result per operating point, in ``points`` order.
    """
    points = list(points or dvfs_points())
    configs = [config_at(base, point) for point in points]
    if engine is not None:
        stream = list(engine.iter_sweep([profile], configs))
        if len(stream) != len(points):
            # zip() would silently truncate; a short stream means the
            # engine dropped results and the pairing would be wrong.
            raise ValueError(
                f"engine yielded {len(stream)} results for "
                f"{len(points)} DVFS operating points"
            )
        return [
            DVFSResult(point=point, result=design_point.result)
            for point, design_point in zip(points, stream)
        ]
    model = model or AnalyticalModel()
    return [
        DVFSResult(point=point, result=model.predict(profile, config))
        for point, config in zip(points, configs)
    ]


def optimal_ed2p(results: Sequence[DVFSResult]) -> DVFSResult:
    """The ED^2P-minimizing operating point (Fig 7.3)."""
    if not results:
        raise ValueError("no DVFS results")
    return min(results, key=lambda r: r.ed2p)


def best_under_power_cap(
    candidates: Sequence[Tuple[MachineConfig, ModelResult]],
    power_cap_watts: float,
) -> Optional[Tuple[MachineConfig, ModelResult]]:
    """Fastest design whose predicted power fits the cap (Table 7.1)."""
    feasible = [
        (config, result)
        for config, result in candidates
        if result.power_watts <= power_cap_watts
    ]
    if not feasible:
        return None
    return min(feasible, key=lambda item: item[1].seconds)
