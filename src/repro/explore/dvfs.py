"""DVFS exploration and power-constrained optimization (thesis §7.2-7.3).

The analytical model's performance prediction is in cycles, so scaling
frequency (and the DVFS rail voltage) re-prices the same cycle count in
seconds and watts; memory latency in *cycles* scales with frequency
because DRAM time is constant in nanoseconds.  For simplicity -- and like
the thesis' DVFS study -- we re-evaluate the model per operating point
with a frequency-scaled DRAM latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.machine import DVFSPoint, MachineConfig, dvfs_points
from repro.core.model import AnalyticalModel, ModelResult
from repro.profiler.profile import ApplicationProfile


@dataclass
class DVFSResult:
    """Model evaluation at one DVFS operating point."""

    point: DVFSPoint
    result: ModelResult

    @property
    def seconds(self) -> float:
        return self.result.seconds

    @property
    def power_watts(self) -> float:
        return self.result.power_watts

    @property
    def energy_joules(self) -> float:
        return self.result.energy_joules

    @property
    def edp(self) -> float:
        return self.result.edp

    @property
    def ed2p(self) -> float:
        return self.result.ed2p


def config_at(
    base: MachineConfig, point: DVFSPoint
) -> MachineConfig:
    """The base machine re-clocked to one DVFS point.

    DRAM latency is constant in wall-clock time, so its cycle count scales
    with frequency.
    """
    scale = point.frequency_ghz / base.frequency_ghz
    return replace(
        base,
        name=f"{base.name}@{point.frequency_ghz:.2f}GHz",
        frequency_ghz=point.frequency_ghz,
        vdd=point.vdd,
        dram_latency=max(1, int(round(base.dram_latency * scale))),
        bus_transfer_cycles=max(
            1, int(round(base.bus_transfer_cycles * scale))
        ),
    )


def explore_dvfs(
    profile: ApplicationProfile,
    base: MachineConfig,
    points: Optional[Sequence[DVFSPoint]] = None,
    model: Optional[AnalyticalModel] = None,
) -> List[DVFSResult]:
    """Evaluate the model at each DVFS point (Table 7.2 / Fig 7.3)."""
    model = model or AnalyticalModel()
    points = points or dvfs_points()
    results: List[DVFSResult] = []
    for point in points:
        config = config_at(base, point)
        results.append(DVFSResult(point=point,
                                  result=model.predict(profile, config)))
    return results


def optimal_ed2p(results: Sequence[DVFSResult]) -> DVFSResult:
    """The ED^2P-minimizing operating point (Fig 7.3)."""
    if not results:
        raise ValueError("no DVFS results")
    return min(results, key=lambda r: r.ed2p)


def best_under_power_cap(
    candidates: Sequence[Tuple[MachineConfig, ModelResult]],
    power_cap_watts: float,
) -> Optional[Tuple[MachineConfig, ModelResult]]:
    """Fastest design whose predicted power fits the cap (Table 7.1)."""
    feasible = [
        (config, result)
        for config, result in candidates
        if result.power_watts <= power_cap_watts
    ]
    if not feasible:
        return None
    return min(feasible, key=lambda item: item[1].seconds)
