"""Pareto frontier extraction and filtering metrics (thesis §7.4).

A design is Pareto-optimal when no other design is at least as good on
both objectives (delay, power) and strictly better on one.  The thesis
scores the *predicted* frontier against the *true* (simulated) frontier
with four metrics:

* **sensitivity** -- fraction of truly optimal designs the prediction
  found (recall);
* **specificity** -- fraction of truly non-optimal designs the prediction
  correctly excluded;
* **accuracy** -- overall fraction classified correctly;
* **HVR** (hypervolume ratio, Fig 7.8) -- the hypervolume dominated by
  the *true* points selected by the prediction divided by the hypervolume
  of the full true frontier; close to 1 means the predicted selection
  covers the whole interesting range even if individual picks differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Set, Tuple

Point = Tuple[float, float]  # (delay-like, power-like): lower is better


def _dominates(a: Point, b: Point) -> bool:
    """Whether ``a`` strictly Pareto-dominates ``b`` (both minimized)."""
    return (
        a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])
    )


class StreamingParetoFront:
    """Incrementally maintained 2-D Pareto frontier (both axes minimized).

    Built for the sweep engine's streaming mode: feed it design points
    as they arrive and read the frontier at any time -- the state after
    ``n`` points equals :func:`pareto_front` over those same ``n``
    points, including the convention that duplicated coordinates are all
    kept.

    Examples
    --------
    >>> front = StreamingParetoFront()
    >>> for x, y in [(2.0, 1.0), (1.0, 2.0), (3.0, 3.0)]:
    ...     _ = front.add(x, y)
    >>> [(x, y) for x, y, _ in front.frontier()]
    [(1.0, 2.0), (2.0, 1.0)]
    """

    def __init__(self) -> None:
        self._members: List[Tuple[float, float, Any]] = []

    def add(self, x: float, y: float, payload: Any = None) -> bool:
        """Offer a point to the frontier.

        Parameters
        ----------
        x / y:
            The two objectives (lower is better), e.g. seconds and
            watts.
        payload:
            Arbitrary object carried with the point (typically the
            :class:`~repro.explore.dse.DesignPoint`).

        Returns
        -------
        bool
            ``True`` when the point is currently non-dominated (it
            joined the frontier), ``False`` when an existing member
            strictly dominates it.
        """
        candidate = (x, y)
        for mx, my, _ in self._members:
            if _dominates((mx, my), candidate):
                return False
        self._members = [
            member for member in self._members
            if not _dominates(candidate, (member[0], member[1]))
        ]
        self._members.append((x, y, payload))
        return True

    def add_point(self, point: Any) -> bool:
        """Offer a (seconds, power) design point; see :meth:`add`."""
        return self.add(point.seconds, point.power_watts, point)

    def frontier(self) -> List[Tuple[float, float, Any]]:
        """The current frontier as ``(x, y, payload)``, sorted by ``x``."""
        return sorted(self._members, key=lambda member: member[:2])

    def __len__(self) -> int:
        return len(self._members)


def pareto_front(points: Sequence[Point]) -> List[int]:
    """Indices of the non-dominated points (both objectives minimized).

    Sort-based O(n log n) sweep: points are visited in ascending
    ``(x, y)`` order while tracking the best (lowest) ``y`` seen at any
    strictly smaller ``x``.  Within a group sharing one ``x`` only the
    lowest-``y`` members can be optimal (higher ones are dominated
    in-group), and they are optimal exactly when that ``y`` improves on
    everything to their left.  Equivalent, index set included, to the
    quadratic all-pairs scan (see :func:`_pareto_front_quadratic`).

    Ties: duplicated coordinates are all kept (they dominate nothing and
    are not strictly dominated).
    """
    n = len(points)
    order = sorted(range(n), key=lambda i: points[i])
    indices: List[int] = []
    best_y = float("inf")
    i = 0
    while i < n:
        x = points[order[i]][0]
        group_min_y = points[order[i]][1]  # sorted: first y is minimal
        j = i
        while j < n and points[order[j]][0] == x:
            j += 1
        if group_min_y < best_y:
            for k in range(i, j):
                if points[order[k]][1] == group_min_y:
                    indices.append(order[k])
            best_y = group_min_y
        i = j
    indices.sort()
    return indices


def _pareto_front_quadratic(points: Sequence[Point]) -> List[int]:
    """Reference all-pairs O(n^2) frontier; ground truth for tests."""
    indices: List[int] = []
    for i, (x_i, y_i) in enumerate(points):
        dominated = False
        for j, (x_j, y_j) in enumerate(points):
            if j == i:
                continue
            if (
                x_j <= x_i and y_j <= y_i
                and (x_j < x_i or y_j < y_i)
            ):
                dominated = True
                break
        if not dominated:
            indices.append(i)
    return indices


def hypervolume(points: Sequence[Point], reference: Point) -> float:
    """2-D hypervolume dominated by ``points`` w.r.t. ``reference``.

    Standard sweep: sort by x, accumulate rectangles up to the reference
    point (both objectives minimized; reference must be >= all points).
    """
    clipped = [
        (x, y) for x, y in points if x <= reference[0] and y <= reference[1]
    ]
    if not clipped:
        return 0.0
    # Keep the staircase: sort by x ascending; y must descend.
    clipped.sort()
    staircase: List[Point] = []
    best_y = float("inf")
    for x, y in clipped:
        if y < best_y:
            staircase.append((x, y))
            best_y = y
    volume = 0.0
    prev_x = reference[0]
    for x, y in reversed(staircase):
        volume += (prev_x - x) * (reference[1] - y)
        prev_x = x
    return volume


def hvr(
    true_points: Sequence[Point],
    selected_true_points: Sequence[Point],
    reference: Optional[Point] = None,
) -> float:
    """Hypervolume ratio (Fig 7.8).

    ``selected_true_points`` are the *true* coordinates of the designs the
    prediction picked; their dominated hypervolume is compared with the
    full true frontier's.

    The default reference point spans the **union** of both point sets
    (1.1x their per-axis maxima): a reference derived from the true
    frontier alone would clip selected designs lying beyond it to zero
    contribution, understating the ratio for predictions whose picks are
    dominated but far from the front.
    """
    if reference is None:
        xs = [p[0] for p in true_points]
        xs += [p[0] for p in selected_true_points]
        ys = [p[1] for p in true_points]
        ys += [p[1] for p in selected_true_points]
        reference = (max(xs) * 1.1, max(ys) * 1.1)
    denominator = hypervolume(true_points, reference)
    if denominator == 0.0:
        # Zero-extent true frontier (e.g. a point with a zero
        # coordinate): the ratio is undefined, so score by coverage
        # instead of rewarding every selection -- including the empty
        # one -- with a perfect 1.0.
        return 1.0 if set(true_points) <= set(selected_true_points) else 0.0
    return hypervolume(selected_true_points, reference) / denominator


@dataclass
class ParetoMetrics:
    """The four filtering-quality metrics of thesis §7.4."""

    sensitivity: float
    specificity: float
    accuracy: float
    hvr: float
    true_front_size: int
    predicted_front_size: int


def pareto_metrics(
    true_points: Sequence[Point],
    predicted_points: Sequence[Point],
) -> ParetoMetrics:
    """Score a predicted frontier against the true one.

    ``true_points[i]`` and ``predicted_points[i]`` must describe the same
    design (same index).  The predicted frontier is computed on predicted
    coordinates and then evaluated in true coordinates.
    """
    if len(true_points) != len(predicted_points):
        raise ValueError("point lists must align by design index")
    n = len(true_points)
    true_front: Set[int] = set(pareto_front(true_points))
    predicted_front: Set[int] = set(pareto_front(predicted_points))

    tp = len(true_front & predicted_front)
    fn = len(true_front - predicted_front)
    fp = len(predicted_front - true_front)
    tn = n - tp - fn - fp

    sensitivity = tp / (tp + fn) if (tp + fn) else 1.0
    specificity = tn / (tn + fp) if (tn + fp) else 1.0
    accuracy = (tp + tn) / n if n else 1.0

    selected_true_coordinates = [true_points[i] for i in predicted_front]
    all_true_front_coordinates = [true_points[i] for i in true_front]
    ratio = hvr(all_true_front_coordinates, selected_true_coordinates)

    return ParetoMetrics(
        sensitivity=sensitivity,
        specificity=specificity,
        accuracy=accuracy,
        hvr=ratio,
        true_front_size=len(true_front),
        predicted_front_size=len(predicted_front),
    )
