"""Declarative design spaces: parameters, constraints, serialization.

The paper's economics (profile once, evaluate thousands of configurations
analytically) make the *space* of configurations a first-class object.
:class:`DesignSpace` describes that space declaratively as a list of
typed :class:`Parameter` axes (integer/float ranges with steps, or
categorical choices) plus optional constraint expressions, and knows how
to

* **enumerate** every valid configuration in deterministic grid order
  (the cross product, constraint-filtered),
* **sample** and **mutate** points with a caller-supplied seeded RNG
  (the primitives the :mod:`repro.explore.search` optimizers build on),
* **serialize** to/from JSON so spaces travel next to profiles, and
* **construct** concrete :class:`~repro.core.machine.MachineConfig`
  objects through :func:`~repro.core.machine.config_from_params`.

:meth:`DesignSpace.default` reproduces the thesis Table 6.3 grid --
the same 243 configurations, bitwise, as the historical
:func:`~repro.core.machine.design_space` -- so the CLI can treat the
hardcoded grid as just another space.

Points are plain ``{parameter name: value}`` dicts throughout, which
keeps them JSON-serializable and trivially hashable (via
:meth:`DesignSpace.key`) for fitness caching.
"""

from __future__ import annotations

import ast
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.machine import (
    DESIGN_SPACE_AXES,
    MachineConfig,
    config_from_params,
)

__all__ = ["Parameter", "DesignSpace"]

#: Parameter kinds understood by :class:`Parameter`.
_KINDS = ("int", "float", "categorical")


@dataclass(frozen=True)
class Parameter:
    """One axis of a design space.

    A parameter is always a *finite grid* of values: integer and float
    parameters are defined by an inclusive ``[low, high]`` range walked
    in ``step`` increments, categorical parameters by an explicit
    ``choices`` tuple.  Finite grids keep spaces enumerable (so an
    exhaustive sweep is always available as ground truth) while ranges
    keep them compact to declare and serialize.

    Use the :meth:`integer`, :meth:`real` and :meth:`categorical`
    constructors rather than the raw dataclass fields.

    Attributes
    ----------
    name:
        Parameter name, a key understood by
        :func:`~repro.core.machine.config_from_params`
        (e.g. ``"rob_size"``).
    kind:
        ``"int"``, ``"float"`` or ``"categorical"``.
    low / high / step:
        Inclusive range and stride for ``int``/``float`` parameters.
    choices:
        Explicit values for ``categorical`` parameters.
    """

    name: str
    kind: str
    low: Optional[float] = None
    high: Optional[float] = None
    step: Optional[float] = None
    choices: Optional[Tuple] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown parameter kind: {self.kind!r}")
        if self.kind == "categorical":
            if not self.choices:
                raise ValueError(f"{self.name}: empty choices")
            if len(set(self.choices)) != len(self.choices):
                raise ValueError(
                    f"{self.name}: duplicate choices {self.choices} "
                    f"(they would bias sampling and break mutation)"
                )
        else:
            if self.low is None or self.high is None:
                raise ValueError(f"{self.name}: range requires low/high")
            if self.high < self.low:
                raise ValueError(f"{self.name}: high < low")
            if not self.step or self.step <= 0:
                raise ValueError(f"{self.name}: step must be positive")

    # -- constructors --------------------------------------------------

    @classmethod
    def integer(cls, name: str, low: int, high: int,
                step: int = 1) -> "Parameter":
        """An integer range parameter: ``low, low+step, ..., <= high``."""
        return cls(name=name, kind="int", low=int(low), high=int(high),
                   step=int(step))

    @classmethod
    def real(cls, name: str, low: float, high: float,
             step: float) -> "Parameter":
        """A float range parameter: ``low, low+step, ..., <= high``."""
        return cls(name=name, kind="float", low=float(low),
                   high=float(high), step=float(step))

    @classmethod
    def categorical(cls, name: str, choices: Sequence) -> "Parameter":
        """An explicit-choices parameter (values kept verbatim)."""
        return cls(name=name, kind="categorical", choices=tuple(choices))

    # -- the value grid ------------------------------------------------

    def values(self) -> Tuple:
        """Every value of this parameter, in ascending grid order.

        Float grids are generated as ``low + i * step`` (not by
        accumulation) and rounded to 12 decimals, so the grid is
        identical however it is traversed or re-serialized.
        """
        if self.kind == "categorical":
            return self.choices  # type: ignore[return-value]
        if self.kind == "int":
            return tuple(range(int(self.low), int(self.high) + 1,
                               int(self.step)))
        count = int((self.high - self.low) / self.step + 1e-9) + 1
        return tuple(round(self.low + i * self.step, 12)
                     for i in range(count))

    def sample(self, rng) -> object:
        """One uniformly random grid value drawn from ``rng``."""
        values = self.values()
        return values[rng.randrange(len(values))]

    def mutate(self, value, rng) -> object:
        """A *different* value near ``value``, drawn from ``rng``.

        Range parameters move one or two grid steps in either
        direction (clipped to the grid ends); categorical parameters
        jump uniformly to any other choice.  A single-valued parameter
        returns its lone value unchanged.
        """
        values = self.values()
        if len(values) == 1:
            return values[0]
        if self.kind == "categorical":
            others = [v for v in values if v != value]
            return others[rng.randrange(len(others))]
        try:
            index = values.index(value)
        except ValueError:
            return self.sample(rng)  # off-grid input: re-draw
        offsets = [o for o in (-2, -1, 1, 2)
                   if 0 <= index + o < len(values)]
        new_index = index + offsets[rng.randrange(len(offsets))]
        return values[new_index]

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable description of this parameter."""
        data: Dict[str, object] = {"name": self.name, "kind": self.kind}
        if self.kind == "categorical":
            data["choices"] = list(self.choices)  # type: ignore[arg-type]
        else:
            data.update(low=self.low, high=self.high, step=self.step)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Parameter":
        """Rebuild a parameter from :meth:`to_dict` output.

        Malformed descriptions (missing fields included) raise
        ``ValueError``, like every other bad-space path.
        """
        try:
            kind = data["kind"]
            if kind == "categorical":
                return cls.categorical(data["name"], data["choices"])
            if kind == "int":
                return cls.integer(data["name"], data["low"],
                                   data["high"], data.get("step", 1))
            return cls.real(data["name"], data["low"], data["high"],
                            data["step"])
        except KeyError as missing:
            raise ValueError(
                f"parameter description {data!r} is missing "
                f"required field {missing}"
            ) from None


#: JSON schema version written by :meth:`DesignSpace.to_json`.
_SPACE_VERSION = 1

#: AST node types a constraint expression may contain.  Names are
#: additionally restricted to the space's parameter names, so a
#: constraint can express arithmetic/boolean relations between
#: parameters and literals -- and nothing else (no calls, attributes,
#: subscripts or comprehensions; space files may come from untrusted
#: sources and must not be a code-execution vector).
_CONSTRAINT_NODES = (
    ast.Expression, ast.BoolOp, ast.And, ast.Or, ast.UnaryOp,
    ast.Not, ast.UAdd, ast.USub, ast.BinOp, ast.Add, ast.Sub,
    ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow, ast.Compare,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.In,
    ast.NotIn, ast.Constant, ast.Name, ast.Load, ast.Tuple, ast.List,
)


def _compile_constraint(expression: str, names: Sequence[str]):
    """Validate and compile one constraint expression.

    Only arithmetic/boolean/comparison syntax over the given parameter
    names and literals is accepted; anything else (function calls,
    attribute access, unknown names, statements) raises ``ValueError``
    at space-construction time rather than surfacing mid-enumeration.
    """
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as error:
        raise ValueError(
            f"invalid constraint {expression!r}: {error}") from None
    for node in ast.walk(tree):
        if not isinstance(node, _CONSTRAINT_NODES):
            raise ValueError(
                f"constraint {expression!r} uses disallowed syntax "
                f"({type(node).__name__}); only arithmetic, comparison "
                f"and boolean expressions over parameter names are "
                f"allowed"
            )
        if isinstance(node, ast.Name) and node.id not in names:
            raise ValueError(
                f"constraint {expression!r} references unknown "
                f"parameter {node.id!r}; parameters: {sorted(names)}"
            )
    return compile(tree, "<constraint>", "eval")


@dataclass(frozen=True)
class DesignSpace:
    """A declarative, finite configuration space.

    Attributes
    ----------
    parameters:
        The axes, in declaration order (which fixes enumeration order:
        the cross product iterates the *last* parameter fastest, like
        ``itertools.product``).
    constraints:
        Boolean expressions over parameter names (e.g.
        ``"rob_size >= 16 * dispatch_width"``), restricted to
        arithmetic/comparison/boolean syntax -- validated and compiled
        once at construction, so unknown names, typos and anything
        resembling code injection fail fast with ``ValueError``.
        Points violating any constraint are excluded from enumeration
        and never returned by sampling/mutation.
    name:
        Optional label carried through serialization.
    """

    parameters: Tuple[Parameter, ...]
    constraints: Tuple[str, ...] = ()
    name: str = "design-space"

    def __post_init__(self) -> None:
        from repro.core.machine import CONFIG_PARAM_DEFAULTS

        names = [p.name for p in self.parameters]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate parameter names: {names}")
        if not self.parameters:
            raise ValueError("a design space needs at least one parameter")
        # Fail at declaration/load time, not deep inside the first
        # evaluation batch: every axis must be a knob the config
        # constructor understands.
        unknown = set(names) - set(CONFIG_PARAM_DEFAULTS)
        if unknown:
            raise ValueError(
                f"unknown design-space parameter(s): {sorted(unknown)}; "
                f"known: {sorted(CONFIG_PARAM_DEFAULTS)}"
            )
        object.__setattr__(self, "parameters", tuple(self.parameters))
        object.__setattr__(self, "constraints", tuple(self.constraints))
        object.__setattr__(self, "_compiled", tuple(
            _compile_constraint(expression, names)
            for expression in self.constraints
        ))

    # -- basic geometry ------------------------------------------------

    def parameter(self, name: str) -> Parameter:
        """The parameter with the given name (``KeyError`` if absent)."""
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        raise KeyError(name)

    def grid_size(self) -> int:
        """Number of grid points ignoring constraints (cheap)."""
        size = 1
        for parameter in self.parameters:
            size *= len(parameter.values())
        return size

    def size(self) -> int:
        """Number of *valid* points (enumerates when constrained)."""
        if not self.constraints:
            return self.grid_size()
        return sum(1 for _ in self.iter_points())

    def satisfies(self, point: Dict[str, object]) -> bool:
        """Whether a point passes every constraint expression."""
        for code in self._compiled:
            if not eval(code, {"__builtins__": {}}, dict(point)):
                return False
        return True

    def key(self, point: Dict[str, object]) -> Tuple:
        """A hashable identity for a point (for fitness caches)."""
        return tuple(point[p.name] for p in self.parameters)

    # -- enumeration ---------------------------------------------------

    def iter_points(self) -> Iterator[Dict[str, object]]:
        """Yield every valid point in deterministic grid order."""
        names = [p.name for p in self.parameters]
        for values in itertools.product(
                *(p.values() for p in self.parameters)):
            point = dict(zip(names, values))
            if self.satisfies(point):
                yield point

    def points(self) -> List[Dict[str, object]]:
        """Every valid point, as a list (see :meth:`iter_points`)."""
        return list(self.iter_points())

    def config(self, point: Dict[str, object]) -> MachineConfig:
        """The concrete machine for one point.

        Delegates to :func:`~repro.core.machine.config_from_params`, so
        parameter names must be drawn from its vocabulary.
        """
        return config_from_params(point)

    def configs(self) -> List[MachineConfig]:
        """Every valid point as a :class:`MachineConfig`, grid order."""
        return [self.config(point) for point in self.iter_points()]

    # -- stochastic primitives (seeded RNG supplied by the caller) -----

    def sample(self, rng, max_tries: int = 10_000) -> Dict[str, object]:
        """One uniformly random valid point.

        Rejection-samples the constraint region; raises ``ValueError``
        after ``max_tries`` rejections (an effectively empty region).
        """
        for _ in range(max_tries):
            point = {p.name: p.sample(rng) for p in self.parameters}
            if self.satisfies(point):
                return point
        raise ValueError(
            f"no valid sample after {max_tries} tries; constraints "
            f"{self.constraints} may be unsatisfiable"
        )

    def mutate(self, point: Dict[str, object], rng,
               max_tries: int = 100) -> Dict[str, object]:
        """A valid neighbor of ``point`` differing in >= 1 parameter.

        One parameter (chosen by ``rng``) takes a nearby value via
        :meth:`Parameter.mutate`; if a constraint rejects the result the
        draw is retried, falling back to a fresh :meth:`sample` after
        ``max_tries`` rejections.
        """
        for _ in range(max_tries):
            mutated = dict(point)
            parameter = self.parameters[
                rng.randrange(len(self.parameters))]
            mutated[parameter.name] = parameter.mutate(
                point[parameter.name], rng)
            if self.satisfies(mutated):
                return mutated
        return self.sample(rng)

    def crossover(self, a: Dict[str, object], b: Dict[str, object],
                  rng, max_tries: int = 100) -> Dict[str, object]:
        """Parameter-wise uniform crossover of two valid points.

        Each parameter value comes from parent ``a`` or ``b`` with
        equal probability; constraint-violating children are redrawn,
        falling back to parent ``a`` after ``max_tries`` rejections
        (both parents are valid by construction).
        """
        for _ in range(max_tries):
            child = {
                p.name: (a if rng.random() < 0.5 else b)[p.name]
                for p in self.parameters
            }
            if self.satisfies(child):
                return child
        return dict(a)

    # -- serialization -------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        """This space as a JSON document (see :meth:`from_json`)."""
        return json.dumps(
            {
                "version": _SPACE_VERSION,
                "name": self.name,
                "parameters": [p.to_dict() for p in self.parameters],
                "constraints": list(self.constraints),
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "DesignSpace":
        """Rebuild a space from :meth:`to_json` output."""
        data = json.loads(text)
        version = data.get("version", _SPACE_VERSION)
        if version != _SPACE_VERSION:
            raise ValueError(f"unsupported space version: {version}")
        return cls(
            parameters=tuple(
                Parameter.from_dict(p) for p in data["parameters"]
            ),
            constraints=tuple(data.get("constraints", ())),
            name=data.get("name", "design-space"),
        )

    def save(self, path: str) -> None:
        """Write :meth:`to_json` to a file."""
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "DesignSpace":
        """Read a space written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_json(handle.read())

    # -- the historical grid -------------------------------------------

    @classmethod
    def default(cls) -> "DesignSpace":
        """The thesis Table 6.3 grid as a declarative space.

        Enumerates to the *bitwise identical* 243 configurations, in
        the same order, as the historical
        :func:`~repro.core.machine.design_space` (each axis is kept
        categorical with the exact historical values, so even float
        frequencies match to the last bit).
        """
        return cls(
            parameters=tuple(
                Parameter.categorical(name, values)
                for name, values in DESIGN_SPACE_AXES.items()
            ),
            name="table-6.3",
        )
