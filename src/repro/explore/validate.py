"""Model-vs-simulator validation campaigns (thesis §7.4-§7.5).

The paper's headline claim is not that the analytical model is fast --
it is that the fast model *filters the design space as well as detailed
simulation*.  This module closes that accuracy loop: a
:class:`ValidationCampaign` evaluates the analytical model (through the
:class:`~repro.explore.engine.SweepEngine`) and the cycle-level
reference simulator over the *same* (workloads x configurations) grid,
then folds both result streams into a per-workload report:

* per-design seconds / power / CPI error
  (:func:`~repro.explore.dse.error_statistics`);
* per-component CPI-stack error (model stack vs the simulator's
  ``STACK_KEYS``, with the model's ``llc_chain`` component compared
  against the simulator's ``llc`` attribution);
* the four Pareto filtering metrics of §7.4 (sensitivity, specificity,
  accuracy, HVR) scoring the predicted (seconds, power) frontier
  against the simulated one;
* the §7.5 mechanistic-vs-empirical comparison: a ridge-regression
  :class:`~repro.explore.empirical.EmpiricalModel` is trained on a
  seeded subsample of the *simulated* results and both models are
  scored on the held-out remainder.

Simulation is the slow side, so :class:`SimulationSweep` parallelizes
it with the same discipline as the model-side engine: (workload,
config-chunk) batches on a ``multiprocessing`` pool, deterministic
profile-major yield order, and a transparent serial fallback.  Reports
are bitwise identical at any worker count.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.core.machine import MachineConfig
from repro.core.model import AnalyticalModel
from repro.core.power import PowerBreakdown, PowerModel
from repro.explore.dse import DesignPoint, ErrorStats, error_statistics
from repro.explore.empirical import EmpiricalModel
from repro.explore.engine import SweepEngine
from repro.explore.pareto import ParetoMetrics, pareto_metrics
from repro.profiler.profile import ApplicationProfile
from repro.simulator.simulator import (
    STACK_KEYS,
    SimulationResult,
    simulate,
)
from repro.workloads.trace import Trace

__all__ = [
    "SimulatedPoint",
    "SimulationSweep",
    "ValidationCase",
    "BaselineComparison",
    "WorkloadValidation",
    "ValidationReport",
    "ValidationCampaign",
    "STACK_COMPONENT_MAP",
]

#: Model CPI-stack component -> simulator ``STACK_KEYS`` component.  The
#: model attributes LLC-hit chaining to ``llc_chain``; the simulator
#: attributes the same stalls to ``llc``.
STACK_COMPONENT_MAP: Dict[str, str] = {"llc_chain": "llc"}


# ----------------------------------------------------------------------
# Worker-process plumbing (module level so it pickles under spawn too)
# ----------------------------------------------------------------------

_SIM_WORKER: Dict[str, object] = {}


def _init_sim_worker(
    traces: Sequence[Trace], configs: Sequence[MachineConfig]
) -> None:
    """Pool initializer: install the simulation grid in the worker."""
    _SIM_WORKER["traces"] = traces
    _SIM_WORKER["configs"] = configs


def _run_sim_batch(task: Tuple[int, int, int]) -> List[SimulationResult]:
    """Simulate one (trace, config-chunk) batch inside a worker."""
    trace_index, start, stop = task
    trace: Trace = _SIM_WORKER["traces"][trace_index]  # type: ignore[index]
    configs = _SIM_WORKER["configs"]  # type: ignore[assignment]
    return [simulate(trace, config) for config in configs[start:stop]]


def _run_shared_sim_batch(state, task: Tuple[int, int, int]):
    """Simulate one batch against :class:`~repro.api.pool.WorkerPool`
    shared state (``(traces, configs)``)."""
    traces, configs = state
    trace_index, start, stop = task
    trace = traces[trace_index]
    return [simulate(trace, config) for config in configs[start:stop]]


@dataclass
class SimulatedPoint:
    """One simulated (workload, configuration) evaluation.

    The cycle-level twin of :class:`~repro.explore.dse.DesignPoint`:
    measured activity is routed through the same power backend the
    model uses, exactly as the paper feeds both through McPAT.

    Attributes
    ----------
    workload:
        Name of the simulated workload.
    config:
        The machine configuration simulated.
    result:
        The full :class:`~repro.simulator.simulator.SimulationResult`.
    power:
        Power evaluated at the *measured* activity factors.
    """

    workload: str
    config: MachineConfig
    result: SimulationResult
    power: PowerBreakdown

    @property
    def cpi(self) -> float:
        """Measured cycles per instruction."""
        return self.result.cpi

    @property
    def seconds(self) -> float:
        """Measured wall-clock execution time in seconds."""
        return self.result.seconds

    @property
    def power_watts(self) -> float:
        """Average power at the measured activity, in watts."""
        return self.power.total

    @property
    def energy_joules(self) -> float:
        """Total energy at the measured activity, in joules."""
        return self.power.total * self.result.seconds


class SimulationSweep:
    """Evaluates (traces x configs) grids on the cycle-level simulator.

    The simulator is the slow side of a validation campaign, so this
    class mirrors the :class:`~repro.explore.engine.SweepEngine`
    batching/streaming/serial-fallback discipline on its own
    ``multiprocessing`` pool: the grid is partitioned into (trace,
    config-chunk) batches, results stream back in deterministic
    trace-major order, and platforms without working process support
    fall back to an in-process serial loop with identical results.

    Traces reach the pool in columnar form: ``Trace`` pickles as its
    :class:`~repro.workloads.columns.TraceColumns` arrays (never a
    per-``Instruction`` object list), which serializes orders of
    magnitude faster; each worker materializes the object view lazily,
    once, on first iteration.

    Parameters
    ----------
    workers:
        Worker processes.  ``None`` uses ``os.cpu_count()``; values
        ``<= 1`` select the serial path.  Serial and parallel runs
        yield bitwise-identical points in the same order.
    batch_size:
        Configurations per worker task; defaults to roughly a quarter
        of the per-worker share.
    pool:
        Optional externally-owned :class:`~repro.api.pool.WorkerPool`.
        When given, parallel sweeps run on that persistent pool
        (shared with the model-side engine and any other stage of a
        :class:`~repro.api.session.Session`) instead of creating a
        ``multiprocessing.Pool`` per call; results are bitwise
        identical and the pool is never closed by the sweep.
    progress:
        Optional ``progress(done, total)`` callback invoked after every
        simulated point.

    Examples
    --------
    >>> sweep = SimulationSweep(workers=4)                # doctest: +SKIP
    >>> for point in sweep.iter_sweep(traces, configs):   # doctest: +SKIP
    ...     print(point.workload, point.cpi)
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        batch_size: Optional[int] = None,
        pool=None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.workers = workers
        self.batch_size = batch_size
        self.pool = pool
        self.progress = progress

    def effective_workers(self) -> int:
        """The worker count after resolving the ``None`` default."""
        if self.workers is None:
            return os.cpu_count() or 1
        return max(1, self.workers)

    def _batches(
        self, n_traces: int, n_configs: int
    ) -> List[Tuple[int, int, int]]:
        """Partition the grid into (trace, config-chunk) batch tasks."""
        workers = self.effective_workers()
        chunk = self.batch_size
        if chunk is None:
            chunk = max(1, -(-n_configs // max(1, workers * 4)))
        tasks: List[Tuple[int, int, int]] = []
        for trace_index in range(n_traces):
            for start in range(0, n_configs, chunk):
                tasks.append(
                    (trace_index, start, min(start + chunk, n_configs))
                )
        return tasks

    def iter_sweep(
        self,
        traces: Sequence[Trace],
        configs: Sequence[MachineConfig],
    ) -> Iterator[SimulatedPoint]:
        """Stream simulated points in deterministic grid order.

        Points are yielded trace-major (all configs of the first trace,
        then the second, ...), identically for the serial and parallel
        paths.

        Yields
        ------
        SimulatedPoint
            One simulated (workload, configuration) pair at a time.
        """
        traces = list(traces)
        configs = list(configs)
        with obs.span(
            "sim.sweep",
            traces=len(traces),
            configs=len(configs),
            workers=self.effective_workers(),
        ):
            if (self.effective_workers() <= 1
                    or not traces or not configs):
                yield from self._iter_serial(traces, configs)
            else:
                yield from self._iter_parallel(traces, configs)

    def _fold(
        self, trace: Trace, config: MachineConfig,
        result: SimulationResult,
    ) -> SimulatedPoint:
        """Attach the power evaluation to one raw simulation result."""
        power = PowerModel(config).evaluate(result.activity)
        return SimulatedPoint(
            workload=trace.name, config=config,
            result=result, power=power,
        )

    def _iter_serial(
        self,
        traces: Sequence[Trace],
        configs: Sequence[MachineConfig],
    ) -> Iterator[SimulatedPoint]:
        tasks = self._batches(len(traces), len(configs))
        total = len(traces) * len(configs)
        yield from self._iter_serial_tail(
            traces, configs, tasks, 0, total
        )

    def _iter_serial_tail(
        self,
        traces: Sequence[Trace],
        configs: Sequence[MachineConfig],
        tasks: Sequence[Tuple[int, int, int]],
        done: int,
        total: int,
    ) -> Iterator[SimulatedPoint]:
        """Simulate ``tasks`` in-process, continuing the point stream.

        Mirrors :meth:`SweepEngine._iter_serial_tail`: the serial path
        phrased as a tail so :meth:`_iter_shared` can hand over
        mid-sweep after a pool give-up without losing completed points
        or re-simulating anything.
        """
        metrics = obs.metrics()
        for trace_index, start, stop in tasks:
            trace = traces[trace_index]
            for config in configs[start:stop]:
                point = self._fold(trace, config,
                                   simulate(trace, config))
                metrics.inc("sim.points")
                done += 1
                if self.progress is not None:
                    self.progress(done, total)
                yield point

    def _iter_parallel(
        self,
        traces: Sequence[Trace],
        configs: Sequence[MachineConfig],
    ) -> Iterator[SimulatedPoint]:
        if self.pool is not None:
            yield from self._iter_shared(traces, configs)
            return

        try:
            import multiprocessing
        except ImportError:
            yield from self._iter_serial(traces, configs)
            return

        tasks = self._batches(len(traces), len(configs))
        workers = min(self.effective_workers(), len(tasks))
        try:
            pool = multiprocessing.Pool(
                processes=workers,
                initializer=_init_sim_worker,
                initargs=(traces, configs),
            )
        except (ImportError, OSError, ValueError):
            # Platforms without working process support (missing
            # semaphores, sandboxed environments) fall back to serial.
            yield from self._iter_serial(traces, configs)
            return

        metrics = obs.metrics()
        total = len(traces) * len(configs)
        done = 0
        with pool:
            for (trace_index, start, _), results in zip(
                tasks, pool.imap(_run_sim_batch, tasks)
            ):
                metrics.inc("sim.batches")
                metrics.inc("sim.points", len(results))
                trace = traces[trace_index]
                for offset, result in enumerate(results):
                    done += 1
                    if self.progress is not None:
                        self.progress(done, total)
                    yield self._fold(
                        trace, configs[start + offset], result
                    )

    def _iter_shared(
        self,
        traces: Sequence[Trace],
        configs: Sequence[MachineConfig],
    ) -> Iterator[SimulatedPoint]:
        """The parallel path on an externally-owned persistent pool.

        Traces still ship columnar (``Trace`` pickles as its
        :class:`~repro.workloads.columns.TraceColumns` arrays) -- they
        are part of the stage's shared state, pickled once and
        installed per worker at most once.  Platforms without working
        process support fall back to serial up front; a
        :class:`~repro.api.pool.WorkerPoolError` raised *mid-stream*
        (supervision gave the stage up) hands the remaining batches to
        :meth:`_iter_serial_tail` with completed points kept.
        """
        from repro.api.pool import WorkerPoolError

        tasks = self._batches(len(traces), len(configs))
        try:
            stream = self.pool.imap(
                _run_shared_sim_batch,
                (list(traces), list(configs)),
                tasks,
            )
        except WorkerPoolError:
            yield from self._iter_serial(traces, configs)
            return

        metrics = obs.metrics()
        total = len(traces) * len(configs)
        done = 0
        for completed, (trace_index, start, _) in enumerate(tasks):
            try:
                results = next(stream)
            except WorkerPoolError:
                metrics.inc("sim.serial_fallbacks")
                yield from self._iter_serial_tail(
                    traces, configs, tasks[completed:], done, total
                )
                return
            metrics.inc("sim.batches")
            metrics.inc("sim.points", len(results))
            trace = traces[trace_index]
            for offset, result in enumerate(results):
                done += 1
                if self.progress is not None:
                    self.progress(done, total)
                yield self._fold(
                    trace, configs[start + offset], result
                )


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------


@dataclass
class ValidationCase:
    """One workload under validation: its profile and its trace.

    The model side consumes the micro-architecture independent
    ``profile``; the simulator side replays the ``trace`` the profile
    was collected from, so both sides describe the same program.
    """

    profile: ApplicationProfile
    trace: Trace

    def __post_init__(self) -> None:
        """Reject profile/trace pairs describing different workloads."""
        if self.profile.name != self.trace.name:
            raise ValueError(
                f"profile {self.profile.name!r} does not match "
                f"trace {self.trace.name!r}"
            )


def _stats_dict(stats: ErrorStats) -> Dict[str, float]:
    """JSON-friendly summary of one :class:`ErrorStats`."""
    return {
        "mean": stats.mean,
        "max": stats.maximum,
        "count": stats.count,
    }


def _metrics_dict(metrics: ParetoMetrics) -> Dict[str, float]:
    """JSON-friendly summary of one :class:`ParetoMetrics`."""
    return {
        "sensitivity": metrics.sensitivity,
        "specificity": metrics.specificity,
        "accuracy": metrics.accuracy,
        "hvr": metrics.hvr,
        "true_front_size": metrics.true_front_size,
        "predicted_front_size": metrics.predicted_front_size,
    }


def _stats_from_dict(data: Dict[str, float]) -> ErrorStats:
    """Rebuild an :class:`ErrorStats` summary from :func:`_stats_dict`
    output (the per-item detail is not serialized)."""
    return ErrorStats(
        mean=data["mean"], maximum=data["max"], count=data["count"]
    )


def _metrics_from_dict(data: Dict[str, float]) -> ParetoMetrics:
    """Rebuild a :class:`ParetoMetrics` from :func:`_metrics_dict`."""
    return ParetoMetrics(
        sensitivity=data["sensitivity"],
        specificity=data["specificity"],
        accuracy=data["accuracy"],
        hvr=data["hvr"],
        true_front_size=data["true_front_size"],
        predicted_front_size=data["predicted_front_size"],
    )


@dataclass
class BaselineComparison:
    """Mechanistic vs empirical model on held-out designs (§7.5).

    The empirical ridge regression is trained on ``train_size``
    seeded-random simulated samples; both models are then scored on the
    ``holdout_size`` remaining designs -- CPI error and the §7.4 Pareto
    metrics against the simulated frontier of the held-out subspace.
    """

    train_size: int
    holdout_size: int
    mechanistic_cpi_error: ErrorStats
    empirical_cpi_error: ErrorStats
    mechanistic_metrics: ParetoMetrics
    empirical_metrics: ParetoMetrics

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        return {
            "train_size": self.train_size,
            "holdout_size": self.holdout_size,
            "mechanistic": {
                "cpi_error": _stats_dict(self.mechanistic_cpi_error),
                "pareto": _metrics_dict(self.mechanistic_metrics),
            },
            "empirical": {
                "cpi_error": _stats_dict(self.empirical_cpi_error),
                "pareto": _metrics_dict(self.empirical_metrics),
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BaselineComparison":
        """Rebuild a comparison from :meth:`as_dict` output."""
        mechanistic = data["mechanistic"]
        empirical = data["empirical"]
        return cls(
            train_size=data["train_size"],
            holdout_size=data["holdout_size"],
            mechanistic_cpi_error=_stats_from_dict(
                mechanistic["cpi_error"]),
            empirical_cpi_error=_stats_from_dict(
                empirical["cpi_error"]),
            mechanistic_metrics=_metrics_from_dict(
                mechanistic["pareto"]),
            empirical_metrics=_metrics_from_dict(empirical["pareto"]),
        )


@dataclass
class WorkloadValidation:
    """The full §7.4-style validation record of one workload."""

    workload: str
    n_configs: int
    instructions: int
    cpi_error: ErrorStats
    seconds_error: ErrorStats
    power_error: ErrorStats
    #: Mean absolute CPI-stack component error, keyed by the simulator's
    #: ``STACK_KEYS`` component names (CPI units).
    stack_error: Dict[str, float]
    metrics: ParetoMetrics
    baseline: Optional[BaselineComparison] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        data: Dict[str, object] = {
            "workload": self.workload,
            "n_configs": self.n_configs,
            "instructions": self.instructions,
            "cpi_error": _stats_dict(self.cpi_error),
            "seconds_error": _stats_dict(self.seconds_error),
            "power_error": _stats_dict(self.power_error),
            "cpi_stack_error": dict(self.stack_error),
            "pareto": _metrics_dict(self.metrics),
        }
        if self.baseline is not None:
            data["baseline"] = self.baseline.as_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadValidation":
        """Rebuild a record from :meth:`as_dict` output."""
        baseline = data.get("baseline")
        return cls(
            workload=data["workload"],
            n_configs=data["n_configs"],
            instructions=data["instructions"],
            cpi_error=_stats_from_dict(data["cpi_error"]),
            seconds_error=_stats_from_dict(data["seconds_error"]),
            power_error=_stats_from_dict(data["power_error"]),
            stack_error=dict(data["cpi_stack_error"]),
            metrics=_metrics_from_dict(data["pareto"]),
            baseline=(BaselineComparison.from_dict(baseline)
                      if baseline is not None else None),
        )


@dataclass
class ValidationReport:
    """A whole campaign: per-workload records plus grid metadata."""

    space_name: str
    n_configs: int
    model_workers: int
    sim_workers: int
    train_fraction: float
    seed: int
    workloads: List[WorkloadValidation] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable report (the E32 benchmark artifact shape)."""
        return {
            "space": self.space_name,
            "n_configs": self.n_configs,
            "model_workers": self.model_workers,
            "sim_workers": self.sim_workers,
            "train_fraction": self.train_fraction,
            "seed": self.seed,
            "workloads": [w.as_dict() for w in self.workloads],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ValidationReport":
        """Rebuild a report from :meth:`as_dict` output.

        Lossless for everything :meth:`summary_lines` consumes (only
        the non-serialized per-design error detail is absent), so a
        report payload can be re-rendered anywhere -- this is what the
        CLI does with :class:`~repro.api.session.Session` payloads.
        """
        return cls(
            space_name=data["space"],
            n_configs=data["n_configs"],
            model_workers=data["model_workers"],
            sim_workers=data["sim_workers"],
            train_fraction=data["train_fraction"],
            seed=data["seed"],
            workloads=[WorkloadValidation.from_dict(w)
                       for w in data["workloads"]],
        )

    def summary_lines(self) -> List[str]:
        """The human-readable report, one line per list entry."""
        lines = [
            f"validation campaign: {len(self.workloads)} workload(s) x "
            f"{self.n_configs} configs ({self.space_name})",
        ]
        for w in self.workloads:
            m = w.metrics
            lines.append(f"{w.workload}:")
            lines.append(
                f"  error (mean/max): CPI "
                f"{w.cpi_error.mean:6.1%}/{w.cpi_error.maximum:6.1%}  "
                f"time {w.seconds_error.mean:6.1%}/"
                f"{w.seconds_error.maximum:6.1%}  "
                f"power {w.power_error.mean:6.1%}/"
                f"{w.power_error.maximum:6.1%}"
            )
            stack = "  ".join(
                f"{key}={value:.3f}"
                for key, value in w.stack_error.items()
            )
            lines.append(f"  CPI-stack |error| (CPI): {stack}")
            lines.append(
                f"  Pareto (S7.4): sensitivity {m.sensitivity:.2f}  "
                f"specificity {m.specificity:.2f}  "
                f"accuracy {m.accuracy:.2f}  HVR {m.hvr:.3f}  "
                f"(true front {m.true_front_size}, "
                f"predicted {m.predicted_front_size})"
            )
            if w.baseline is not None:
                b = w.baseline
                lines.append(
                    f"  S7.5 baseline ({b.train_size} train / "
                    f"{b.holdout_size} held out): "
                    f"mechanistic CPI {b.mechanistic_cpi_error.mean:.1%} "
                    f"HVR {b.mechanistic_metrics.hvr:.3f}  vs  "
                    f"empirical CPI {b.empirical_cpi_error.mean:.1%} "
                    f"HVR {b.empirical_metrics.hvr:.3f}"
                )
        return lines


def _stack_error(
    model_points: Sequence[DesignPoint],
    sim_points: Sequence[SimulatedPoint],
) -> Dict[str, float]:
    """Mean absolute per-component CPI-stack error across designs.

    Model components are renamed through :data:`STACK_COMPONENT_MAP`
    before comparison, so the result is keyed by the simulator's
    ``STACK_KEYS``.
    """
    totals = {key: 0.0 for key in STACK_KEYS}
    for model_point, sim_point in zip(model_points, sim_points):
        model_stack = {
            STACK_COMPONENT_MAP.get(key, key): value
            for key, value in model_point.result.cpi_stack().items()
        }
        sim_stack = sim_point.result.cpi_stack()
        for key in totals:
            totals[key] += abs(
                model_stack.get(key, 0.0) - sim_stack.get(key, 0.0)
            )
    n = max(1, len(model_points))
    return {key: total / n for key, total in totals.items()}


class ValidationCampaign:
    """Drives model and simulator over one grid and scores the model.

    Parameters
    ----------
    cases:
        The workloads to validate, as :class:`ValidationCase`
        profile/trace pairs (see :meth:`from_workloads` for the
        name-based convenience constructor).
    configs:
        The design-space grid, as concrete configurations or anything
        with a ``configs()`` method (e.g. a declarative
        :class:`~repro.explore.space.DesignSpace`).
    engine:
        Optional :class:`~repro.explore.engine.SweepEngine` for the
        model side; a fresh one with ``model_workers`` workers is built
        when omitted.
    model:
        Analytical model for the default engine; ignored when
        ``engine`` is given.
    model_workers / sim_workers:
        Worker processes for the model and simulator sides.
        ``sim_workers`` defaults to ``model_workers`` -- simulation is
        the slow side, so that is where parallelism pays.
    pool:
        Optional externally-owned :class:`~repro.api.pool.WorkerPool`
        shared by both sides: the default engine and the simulation
        sweep then reuse one persistent pool instead of creating one
        ``multiprocessing.Pool`` each.  An explicitly passed ``engine``
        keeps whatever pool configuration it already has.
    train_fraction:
        Fraction of the grid used to train the §7.5 empirical baseline
        (seeded subsample of *simulated* results); the comparison is
        scored on the held-out remainder.  Set to 0 to skip the
        baseline entirely.
    seed:
        Seed of the subsample RNG (per-workload streams are derived
        deterministically from it).
    space_name:
        Override for the reported space name (useful when passing a
        truncated config list derived from a named space).
    progress:
        Optional ``progress(side, done, total)`` callback, where
        ``side`` is ``"model"`` or ``"simulator"``.

    Examples
    --------
    >>> campaign = ValidationCampaign.from_workloads(  # doctest: +SKIP
    ...     ["gcc", "mcf"], configs=DesignSpace.default(),
    ...     instructions=20_000, sim_workers=4)
    >>> report = campaign.run()                        # doctest: +SKIP
    >>> print("\\n".join(report.summary_lines()))      # doctest: +SKIP
    """

    def __init__(
        self,
        cases: Sequence[ValidationCase],
        configs,
        engine: Optional[SweepEngine] = None,
        model: Optional[AnalyticalModel] = None,
        model_workers: int = 1,
        sim_workers: Optional[int] = None,
        batch_size: Optional[int] = None,
        pool=None,
        train_fraction: float = 0.25,
        seed: int = 0,
        space_name: Optional[str] = None,
        progress: Optional[Callable[[str, int, int], None]] = None,
    ) -> None:
        self.cases = list(cases)
        names = [case.profile.name for case in self.cases]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(
                "duplicate workload name(s) in campaign: "
                + ", ".join(duplicates)
            )
        if hasattr(configs, "configs"):
            self.space_name = getattr(configs, "name", "space")
            configs = configs.configs()
        else:
            self.space_name = "configs"
        if space_name is not None:
            self.space_name = space_name
        self.configs: List[MachineConfig] = list(configs)
        if not self.configs:
            raise ValueError("validation campaign needs >= 1 config")
        if not 0.0 <= train_fraction < 1.0:
            raise ValueError("train_fraction must be in [0, 1)")
        self.train_fraction = train_fraction
        self.seed = seed
        self.model_workers = model_workers
        self.sim_workers = (
            sim_workers if sim_workers is not None else model_workers
        )
        self.progress = progress
        model_progress = None
        sim_progress = None
        if progress is not None:
            model_progress = lambda d, t: progress("model", d, t)
            sim_progress = lambda d, t: progress("simulator", d, t)
        self.engine = engine if engine is not None else SweepEngine(
            model=model, workers=model_workers,
            batch_size=batch_size, pool=pool,
            progress=model_progress,
        )
        self.simulation = SimulationSweep(
            workers=self.sim_workers, batch_size=batch_size,
            pool=pool, progress=sim_progress,
        )

    @classmethod
    def from_workloads(
        cls,
        names: Sequence[str],
        configs,
        instructions: int = 20_000,
        sampling=None,
        trace_seed: int = 42,
        **kwargs,
    ) -> "ValidationCampaign":
        """Build a campaign from workload-suite names.

        Generates each workload's trace, profiles it once (the paper's
        single profiling run), and pairs both into
        :class:`ValidationCase` records.

        Parameters
        ----------
        names:
            Workload names from :func:`repro.workloads.workload_names`.
        configs:
            Passed through to the constructor.
        instructions:
            Trace length per workload.
        sampling:
            Optional :class:`~repro.profiler.sampling.SamplingConfig`.
        trace_seed:
            Seed of the trace generators.
        **kwargs:
            Forwarded to the constructor.

        Returns
        -------
        ValidationCampaign
            The ready-to-run campaign.
        """
        from repro.profiler import profile_application
        from repro.workloads import generate_trace, make_workload

        cases = []
        for name in names:
            trace = generate_trace(
                make_workload(name, seed=trace_seed),
                max_instructions=instructions,
            )
            profile = profile_application(trace, sampling)
            cases.append(ValidationCase(profile=profile, trace=trace))
        return cls(cases, configs, **kwargs)

    # ------------------------------------------------------------------

    def _baseline(
        self,
        case: ValidationCase,
        model_points: Sequence[DesignPoint],
        sim_points: Sequence[SimulatedPoint],
    ) -> Optional[BaselineComparison]:
        """Train the §7.5 empirical baseline and score both models."""
        n = len(self.configs)
        train_size = int(round(self.train_fraction * n))
        if self.train_fraction <= 0.0 or train_size < 3:
            return None
        if n - train_size < 2:
            return None
        # String seeds hash deterministically (PYTHONHASHSEED-proof),
        # so per-workload subsamples are stable across runs and worker
        # counts.
        rng = random.Random(f"{self.seed}:{case.profile.name}")
        train_indices = set(rng.sample(range(n), train_size))
        holdout = [i for i in range(n) if i not in train_indices]

        cpi_model = EmpiricalModel().fit([
            (case.profile, self.configs[i], sim_points[i].cpi)
            for i in sorted(train_indices)
        ])
        power_model = EmpiricalModel().fit([
            (case.profile, self.configs[i], sim_points[i].power_watts)
            for i in sorted(train_indices)
        ])

        instructions = case.profile.num_instructions
        empirical_cpi = [
            cpi_model.predict(case.profile, self.configs[i])
            for i in holdout
        ]
        empirical_seconds = [
            cpi * instructions
            / (self.configs[i].frequency_ghz * 1e9)
            for cpi, i in zip(empirical_cpi, holdout)
        ]
        empirical_power = [
            power_model.predict(case.profile, self.configs[i])
            for i in holdout
        ]

        sim_cpi = [sim_points[i].cpi for i in holdout]
        labels = [self.configs[i].name for i in holdout]
        sim_coords = [
            (sim_points[i].seconds, sim_points[i].power_watts)
            for i in holdout
        ]
        model_coords = [
            (model_points[i].seconds, model_points[i].power_watts)
            for i in holdout
        ]
        empirical_coords = list(
            zip(empirical_seconds, empirical_power)
        )
        return BaselineComparison(
            train_size=train_size,
            holdout_size=len(holdout),
            mechanistic_cpi_error=error_statistics(
                [model_points[i].cpi for i in holdout], sim_cpi,
                labels=labels,
            ),
            empirical_cpi_error=error_statistics(
                empirical_cpi, sim_cpi, labels=labels,
            ),
            mechanistic_metrics=pareto_metrics(
                sim_coords, model_coords
            ),
            empirical_metrics=pareto_metrics(
                sim_coords, empirical_coords
            ),
        )

    def _validate_workload(
        self,
        case: ValidationCase,
        model_points: Sequence[DesignPoint],
        sim_points: Sequence[SimulatedPoint],
    ) -> WorkloadValidation:
        """Fold one workload's model and simulator streams."""
        labels = [config.name for config in self.configs]
        cpi_error = error_statistics(
            [p.cpi for p in model_points],
            [p.cpi for p in sim_points], labels=labels,
        )
        seconds_error = error_statistics(
            [p.seconds for p in model_points],
            [p.seconds for p in sim_points], labels=labels,
        )
        power_error = error_statistics(
            [p.power_watts for p in model_points],
            [p.power_watts for p in sim_points], labels=labels,
        )
        metrics = pareto_metrics(
            [(p.seconds, p.power_watts) for p in sim_points],
            [(p.seconds, p.power_watts) for p in model_points],
        )
        return WorkloadValidation(
            workload=case.profile.name,
            n_configs=len(self.configs),
            instructions=case.profile.num_instructions,
            cpi_error=cpi_error,
            seconds_error=seconds_error,
            power_error=power_error,
            stack_error=_stack_error(model_points, sim_points),
            metrics=metrics,
            baseline=self._baseline(case, model_points, sim_points),
        )

    def run(self) -> ValidationReport:
        """Execute the campaign: both sweeps, then the folded report.

        The model side streams through the engine first (it is orders
        of magnitude faster), then the simulator side streams through
        its own pool; per-workload records are folded as soon as both
        sides of a workload are complete.

        Returns
        -------
        ValidationReport
            Per-workload errors, stack errors, Pareto metrics and the
            empirical-baseline comparison.
        """
        profiles = [case.profile for case in self.cases]
        traces = [case.trace for case in self.cases]
        n = len(self.configs)

        model_results: Dict[str, List[DesignPoint]] = {
            p.name: [] for p in profiles
        }
        with obs.span("validate.model_sweep", workloads=len(profiles),
                      configs=n):
            for point in self.engine.iter_sweep(profiles, self.configs):
                model_results[point.workload].append(point)

        report = ValidationReport(
            space_name=self.space_name,
            n_configs=n,
            model_workers=self.model_workers,
            sim_workers=self.sim_workers,
            train_fraction=self.train_fraction,
            seed=self.seed,
        )
        # The simulator stream is trace-major, so one workload's block
        # completes every n points; fold it immediately.
        pending: List[SimulatedPoint] = []
        case_index = 0
        with obs.span("validate.sim_sweep", workloads=len(traces),
                      configs=n):
            for point in self.simulation.iter_sweep(traces, self.configs):
                pending.append(point)
                if len(pending) == n:
                    case = self.cases[case_index]
                    report.workloads.append(self._validate_workload(
                        case, model_results[case.profile.name], pending
                    ))
                    pending = []
                    case_index += 1
        if pending:
            raise RuntimeError(
                f"simulation stream ended mid-workload: "
                f"{len(pending)} of {n} points"
            )
        return report
