"""Evaluation-cost model behind the speedup claims (thesis §6.2, Summary).

The thesis compares three ways to evaluate a design space of ``C``
configurations over ``W`` workloads of ``N`` instructions each:

* **detailed simulation** at ~0.5 MIPS: every (workload, config) pair is
  simulated -- cost = W * C * N / 0.5 MIPS (150 days for the thesis'
  space);
* **classic interval model**: per-config *functional* simulations (cache,
  branch, MLP) at ~1.5 MIPS feed the model -- the cache/branch/MLP sims
  re-run for every distinct cache/predictor/ROB configuration (200
  hours);
* **micro-architecture independent model**: one profiling pass per
  workload at ~6 MIPS plus a near-free model evaluation per pair
  (11.5 hours) -- 315x over simulation, 18x over the interval model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EvaluationCost:
    """Cost of one evaluation strategy, in seconds."""

    name: str
    seconds: float

    @property
    def hours(self) -> float:
        """The cost in hours."""
        return self.seconds / 3600.0

    @property
    def days(self) -> float:
        """The cost in days."""
        return self.seconds / 86400.0


def simulation_cost(
    workloads: int,
    configs: int,
    instructions: float,
    mips: float = 0.5,
) -> EvaluationCost:
    """Detailed cycle-level simulation of every pair."""
    seconds = workloads * configs * instructions / (mips * 1e6)
    return EvaluationCost(name="detailed-simulation", seconds=seconds)


def interval_model_cost(
    workloads: int,
    configs: int,
    instructions: float,
    functional_mips: float = 1.5,
    distinct_memory_configs: int = None,
    model_seconds_per_pair: float = 2.0,
) -> EvaluationCost:
    """Classic interval model: functional sims per distinct configuration.

    Cache/branch/MLP functional simulation must re-run for every distinct
    cache hierarchy / predictor / ROB in the space (by default every
    config is distinct).
    """
    if distinct_memory_configs is None:
        distinct_memory_configs = configs
    functional = (
        workloads * distinct_memory_configs * instructions
        / (functional_mips * 1e6)
    )
    model = workloads * configs * model_seconds_per_pair
    return EvaluationCost(name="interval-model", seconds=functional + model)


def micro_arch_independent_cost(
    workloads: int,
    configs: int,
    instructions: float,
    profiling_mips: float = 6.0,
    model_seconds_per_pair: float = 2.0,
) -> EvaluationCost:
    """This paper's model: one profile per workload + cheap evaluations."""
    profiling = workloads * instructions / (profiling_mips * 1e6)
    model = workloads * configs * model_seconds_per_pair
    return EvaluationCost(
        name="micro-arch-independent-model", seconds=profiling + model
    )


def speedups(
    workloads: int = 29,
    configs: int = 243,
    instructions: float = 1e9,
) -> dict:
    """The thesis' headline speedup comparison (Summary, §6.2)."""
    sim = simulation_cost(workloads, configs, instructions)
    interval = interval_model_cost(workloads, configs, instructions)
    ours = micro_arch_independent_cost(workloads, configs, instructions)
    return {
        "simulation": sim,
        "interval_model": interval,
        "micro_arch_independent": ours,
        "speedup_vs_simulation": sim.seconds / ours.seconds,
        "speedup_vs_interval": interval.seconds / ours.seconds,
    }
