"""Batched, parallel design-space sweep engine.

The paper's headline economics -- one micro-architecture independent
profile, re-evaluated across thousands of machine configurations in
seconds -- only materialize if the (profiles x configs) cross product is
evaluated efficiently.  :class:`SweepEngine` provides that evaluation
layer on top of :class:`~repro.core.model.AnalyticalModel`:

* **Batching + parallelism**: the grid is partitioned into
  ``(profile, config-chunk)`` batches evaluated on a ``multiprocessing``
  pool, with a transparent serial fallback when ``workers <= 1`` or the
  platform cannot spawn processes.
* **Profile caching**: per-profile intermediates are memoized at two
  levels -- the StatStack reuse -> stack distance tables persist on disk
  in a content-addressed :class:`~repro.profiler.serialization.ProfileStore`,
  and a per-run :class:`~repro.core.interval.ModelCache` memoizes
  branch-resolution, virtual-stream, dispatch-limit and miss-ratio
  intermediates across configurations that share the relevant fields.
* **Streaming**: :meth:`SweepEngine.iter_sweep` yields
  :class:`~repro.explore.dse.DesignPoint` results incrementally in
  deterministic grid order, so Pareto / DVFS consumers can run on
  partial results while the sweep is still in flight.
* **Columnar worker payloads**: everything shipped to worker processes
  is array- or statistics-shaped, never per-instruction object lists.
  Profiles are pure aggregated statistics, and
  :class:`~repro.workloads.trace.Trace` pickles as its columnar
  (structure-of-arrays) view -- see
  :class:`~repro.workloads.columns.TraceColumns` -- so the simulation
  sweeps that mirror this engine (``explore.validate``) serialize
  traces two orders of magnitude faster than object lists.

Results are bitwise identical between the serial and parallel paths and
with the pre-engine serial loop: the caches memoize pure computations on
exhaustive dependency keys, and batches are streamed back in submission
order.
"""

from __future__ import annotations

import os
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.backends import resolve_model_backend
from repro.core.interval import ModelCache
from repro.core.machine import MachineConfig
from repro.core.model import AnalyticalModel, ModelResult
from repro.faults import inject
from repro.profiler.profile import ApplicationProfile
from repro.profiler.serialization import ProfileStore

__all__ = ["SweepEngine"]


#: Batch-backend failures that degrade to the scalar reference loop
#: instead of aborting the sweep: the injected fault plus the error
#: classes a broken vectorized program realistically raises.  The two
#: backends are pinned bitwise-identical by the equivalence harness, so
#: the fallback changes evaluation cost, never results.
_BATCH_FALLBACK_ERRORS = (
    inject.InjectedBatchError,
    ArithmeticError,
    ValueError,
    TypeError,
    IndexError,
    KeyError,
)


def _eval_batch(
    model: AnalyticalModel,
    profile: ApplicationProfile,
    chunk: Sequence[MachineConfig],
    backend: str,
    site: str,
) -> List[ModelResult]:
    """Evaluate one config chunk, degrading batch -> scalar on failure.

    ``site`` names this batch for the fault-injection harness (see
    :func:`repro.faults.inject.batch_site`).  When the batch backend
    raises -- injected or real -- the chunk is re-evaluated with the
    scalar reference backend (bitwise-identical results, per the
    equivalence harness) and ``engine.backend_fallbacks`` is counted.
    """
    if backend == "batch":
        try:
            inject.batch_site(site)
            return model.predict_batch(profile, chunk, backend="batch")
        except _BATCH_FALLBACK_ERRORS:
            obs.metrics().inc("engine.backend_fallbacks")
            return model.predict_batch(profile, chunk, backend="scalar")
    return model.predict_batch(profile, chunk, backend=backend)


# ----------------------------------------------------------------------
# Worker-process plumbing (module level so it pickles under spawn too)
# ----------------------------------------------------------------------

_WORKER: Dict[str, object] = {}


def _init_worker(
    model: AnalyticalModel,
    profiles: Sequence[ApplicationProfile],
    configs: Sequence[MachineConfig],
    backend: str,
) -> None:
    """Pool initializer: install the grid and a fresh per-process cache."""
    model.cache = ModelCache()
    _WORKER["model"] = model
    _WORKER["profiles"] = profiles
    _WORKER["configs"] = configs
    _WORKER["backend"] = backend


def _run_batch(task: Tuple[int, int, int]) -> List[ModelResult]:
    """Evaluate one (profile, config-chunk) batch inside a worker."""
    profile_index, start, stop = task
    model: AnalyticalModel = _WORKER["model"]  # type: ignore[assignment]
    profile = _WORKER["profiles"][profile_index]  # type: ignore[index]
    configs = _WORKER["configs"]  # type: ignore[assignment]
    backend: str = _WORKER["backend"]  # type: ignore[assignment]
    return _eval_batch(
        model, profile, configs[start:stop],  # type: ignore[index]
        backend, f"{profile_index}:{start}",
    )


def _run_shared_batch(state, task: Tuple[int, int, int]):
    """Evaluate one batch against :class:`~repro.api.pool.WorkerPool`
    shared state (``(model, profiles, configs, backend)``).

    The state object persists inside the worker for the whole sweep, so
    attaching a :class:`~repro.core.interval.ModelCache` on the first
    batch gives every later batch of the same sweep a warm cache --
    exactly what :func:`_init_worker` does for per-call pools.

    Cache hit/miss deltas are flushed into the active (worker-local)
    metrics registry after each batch, so they ride back to the parent
    piggybacked on this batch's result message.
    """
    model, profiles, configs, backend = state
    if model.cache is None:
        model.cache = ModelCache()
    profile_index, start, stop = task
    profile = profiles[profile_index]
    results = _eval_batch(
        model, profile, configs[start:stop], backend,
        f"{profile_index}:{start}",
    )
    model.cache.flush_metrics(obs.metrics())
    return results


class SweepEngine:
    """Evaluates (profiles x configs) grids in batches, optionally parallel.

    Parameters
    ----------
    model:
        The analytical model to evaluate; a default-configured
        :class:`~repro.core.model.AnalyticalModel` when omitted.  If the
        model has no :class:`~repro.core.interval.ModelCache` attached,
        the engine attaches a fresh one for the duration of each sweep
        and detaches it afterwards (results are unchanged; only
        faster).  Attach your own cache to the model to keep memoized
        state across sweeps instead.
    workers:
        Number of worker processes.  ``None`` uses ``os.cpu_count()``;
        values ``<= 1`` select the serial path.  The parallel and serial
        paths produce bitwise-identical results in the same order.
    batch_size:
        Configurations per worker task.  Defaults to roughly a quarter
        of the per-worker share, so the pool stays busy without
        oversized pickling.
    store:
        Optional :class:`~repro.profiler.serialization.ProfileStore`.
        When given, every profile is content-hashed into the store and
        its StatStack stack-distance tables are loaded from (or saved
        to) disk, making repeated sweeps over the same profiles start
        warm.
    pool:
        Optional externally-owned :class:`~repro.api.pool.WorkerPool`.
        When given, parallel sweeps run on that persistent pool
        (shared with other stages of a
        :class:`~repro.api.session.Session`) instead of creating a
        ``multiprocessing.Pool`` per call; results are bitwise
        identical.  The pool is never closed by the engine.
    progress:
        Optional ``progress(done, total)`` callback invoked after every
        design point.
    backend:
        Model evaluation backend per config chunk: ``"batch"`` (the
        vectorized array program), ``"scalar"`` (the per-config
        reference loop), or ``None`` to take the
        ``REPRO_MODEL_BACKEND`` environment default.  Both backends
        stream bitwise-identical design points in the same order, at
        any chunk size and worker count; unknown names raise
        ``ValueError`` when the sweep starts.

    Examples
    --------
    >>> engine = SweepEngine(workers=4)                  # doctest: +SKIP
    >>> results = engine.sweep(profiles, design_space()) # doctest: +SKIP
    >>> for point in engine.iter_sweep(profiles, configs):  # streaming
    ...     update_pareto(point)                         # doctest: +SKIP
    """

    def __init__(
        self,
        model: Optional[AnalyticalModel] = None,
        workers: Optional[int] = None,
        batch_size: Optional[int] = None,
        store: Optional[ProfileStore] = None,
        pool=None,
        progress: Optional[Callable[[int, int], None]] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.model = model if model is not None else AnalyticalModel()
        self.workers = workers
        self.batch_size = batch_size
        self.store = store
        self.pool = pool
        self.progress = progress
        self.backend = backend
        # id -> (profile, store key): profiles already prepared by this
        # engine (the profile reference pins the id against reuse).
        self._prepared: Dict[int, Tuple[ApplicationProfile,
                                        Optional[str]]] = {}

    # ------------------------------------------------------------------

    def effective_workers(self) -> int:
        """The worker count after resolving the ``None`` default."""
        if self.workers is None:
            return os.cpu_count() or 1
        return max(1, self.workers)

    def prepare(
        self, profiles: Sequence[ApplicationProfile]
    ) -> List[Optional[str]]:
        """Materialize per-profile intermediates before the sweep.

        With a :class:`ProfileStore` attached, each profile is hashed
        into the store and its StatStack tables come from disk when
        cached (the "warm profile cache" path); otherwise the models are
        simply built in memory so workers inherit them pre-built.
        Profiles already prepared by this engine are skipped, so
        repeated sweeps do not re-hash or reload anything.

        Returns
        -------
        list of str or None
            The store fingerprint per profile (``None`` without a store).
        """
        keys: List[Optional[str]] = []
        with obs.span("engine.prepare", profiles=len(profiles)):
            for profile in profiles:
                prepared = self._prepared.get(id(profile))
                if prepared is not None and prepared[0] is profile:
                    keys.append(prepared[1])
                    continue
                if self.store is not None:
                    key = self.store.warm(profile)
                else:
                    profile.statstack()
                    profile.instruction_statstack()
                    key = None
                self._prepared[id(profile)] = (profile, key)
                keys.append(key)
            if self.store is not None:
                self.store.flush_metrics(obs.metrics())
        return keys

    def _batches(
        self, n_profiles: int, n_configs: int
    ) -> List[Tuple[int, int, int]]:
        """Partition the grid into (profile, config-chunk) batch tasks."""
        workers = self.effective_workers()
        chunk = self.batch_size
        if chunk is None:
            chunk = max(1, -(-n_configs // max(1, workers * 4)))
        tasks: List[Tuple[int, int, int]] = []
        for profile_index in range(n_profiles):
            for start in range(0, n_configs, chunk):
                tasks.append(
                    (profile_index, start, min(start + chunk, n_configs))
                )
        return tasks

    # ------------------------------------------------------------------

    def iter_sweep(
        self,
        profiles: Sequence[ApplicationProfile],
        configs: Sequence[MachineConfig],
    ) -> Iterator["DesignPoint"]:
        """Stream design points in deterministic grid order.

        Points are yielded profile-major (all configs of the first
        profile, then the second, ...), identically for the serial and
        parallel paths, so downstream consumers can fold partial results
        while later batches are still being evaluated.

        Yields
        ------
        DesignPoint
            One evaluated (workload, configuration) pair at a time.
        """
        profiles = list(profiles)
        configs = list(configs)
        # Resolve (and validate) the backend before any evaluation, so
        # a bad name fails fast instead of mid-sweep.
        backend = resolve_model_backend(self.backend)
        with obs.span(
            "engine.sweep",
            profiles=len(profiles),
            configs=len(configs),
            workers=self.effective_workers(),
            backend=backend,
        ):
            self.prepare(profiles)
            # Per-run cache unless the caller attached their own: the
            # caller's model is left exactly as it was handed to us.
            attached = False
            if self.model.cache is None:
                self.model.cache = ModelCache()
                attached = True
            try:
                if (self.effective_workers() <= 1
                        or not profiles or not configs):
                    yield from self._iter_serial(profiles, configs, backend)
                else:
                    yield from self._iter_parallel(
                        profiles, configs, backend
                    )
            finally:
                if attached:
                    self.model.cache = None

    def sweep(
        self,
        profiles: Sequence[ApplicationProfile],
        configs: Sequence[MachineConfig],
    ) -> Dict[str, List["DesignPoint"]]:
        """Evaluate the full grid and group points per workload.

        Returns
        -------
        dict of str to list of DesignPoint
            ``{workload name: [point per config, in config order]}`` --
            the same shape :func:`~repro.explore.dse.evaluate_design_space`
            has always returned.
        """
        results: Dict[str, List["DesignPoint"]] = {}
        for point in self.iter_sweep(profiles, configs):
            results.setdefault(point.workload, []).append(point)
        return results

    # ------------------------------------------------------------------

    def _iter_serial(
        self,
        profiles: Sequence[ApplicationProfile],
        configs: Sequence[MachineConfig],
        backend: str,
    ) -> Iterator["DesignPoint"]:
        tasks = self._batches(len(profiles), len(configs))
        total = len(profiles) * len(configs)
        yield from self._iter_serial_tail(
            profiles, configs, backend, tasks, 0, total
        )

    def _iter_serial_tail(
        self,
        profiles: Sequence[ApplicationProfile],
        configs: Sequence[MachineConfig],
        backend: str,
        tasks: Sequence[Tuple[int, int, int]],
        done: int,
        total: int,
    ) -> Iterator["DesignPoint"]:
        """Evaluate ``tasks`` in-process, continuing the point stream.

        The whole serial path is phrased as a *tail* so the parallel
        path can hand over mid-sweep after a pool give-up: already
        yielded points stay yielded, ``done`` keeps the progress
        callback monotonic, and the remaining batches run here -- on
        the same model and cache -- in the same grid order.
        """
        from repro.explore.dse import DesignPoint

        metrics = obs.metrics()
        for profile_index, start, stop in tasks:
            profile = profiles[profile_index]
            results = _eval_batch(
                self.model, profile, configs[start:stop], backend,
                f"{profile_index}:{start}",
            )
            metrics.inc("engine.batches")
            metrics.inc("engine.points", len(results))
            self.model.cache.flush_metrics(metrics)
            for offset, result in enumerate(results):
                point = DesignPoint(
                    workload=profile.name,
                    config=configs[start + offset],
                    result=result,
                )
                done += 1
                if self.progress is not None:
                    self.progress(done, total)
                yield point

    def _iter_parallel(
        self,
        profiles: Sequence[ApplicationProfile],
        configs: Sequence[MachineConfig],
        backend: str,
    ) -> Iterator["DesignPoint"]:
        from repro.explore.dse import DesignPoint

        if self.pool is not None:
            yield from self._iter_shared(profiles, configs, backend)
            return

        try:
            import multiprocessing
        except ImportError:
            yield from self._iter_serial(profiles, configs, backend)
            return

        tasks = self._batches(len(profiles), len(configs))
        workers = min(self.effective_workers(), len(tasks))
        # Ship the model without its cache (workers build their own);
        # restore the parent's cache afterwards.
        cache = self.model.cache
        self.model.cache = None
        try:
            pool = multiprocessing.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(self.model, profiles, configs, backend),
            )
        except (ImportError, OSError, ValueError):
            # Platforms without working process support (missing
            # semaphores, sandboxed environments) fall back to serial.
            self.model.cache = cache
            yield from self._iter_serial(profiles, configs, backend)
            return
        finally:
            if self.model.cache is None:
                self.model.cache = cache

        metrics = obs.metrics()
        total = len(profiles) * len(configs)
        done = 0
        with pool:
            for (profile_index, start, _), results in zip(
                tasks, pool.imap(_run_batch, tasks)
            ):
                metrics.inc("engine.batches")
                metrics.inc("engine.points", len(results))
                name = profiles[profile_index].name
                for offset, result in enumerate(results):
                    done += 1
                    if self.progress is not None:
                        self.progress(done, total)
                    yield DesignPoint(
                        workload=name,
                        config=configs[start + offset],
                        result=result,
                    )

    def _iter_shared(
        self,
        profiles: Sequence[ApplicationProfile],
        configs: Sequence[MachineConfig],
        backend: str,
    ) -> Iterator["DesignPoint"]:
        """The parallel path on an externally-owned persistent pool.

        Ships ``(model-without-cache, profiles, configs, backend)`` as
        the stage's shared state (pickled once, installed per worker at
        most once) and streams batches back in submission order, so
        results are bitwise identical to :meth:`_iter_parallel`.
        Platforms without working process support fall back to serial
        up front; a :class:`~repro.api.pool.WorkerPoolError` raised
        *mid-stream* (supervision gave the stage up) hands the
        remaining batches to :meth:`_iter_serial_tail` -- completed
        points are kept and the sweep finishes in-process with
        identical results.
        """
        from repro.api.pool import WorkerPoolError
        from repro.explore.dse import DesignPoint

        tasks = self._batches(len(profiles), len(configs))
        # Ship the model without its cache (workers attach their own);
        # restore the parent's cache afterwards.
        cache = self.model.cache
        self.model.cache = None
        try:
            stream = self.pool.imap(
                _run_shared_batch,
                (self.model, list(profiles), list(configs), backend),
                tasks,
            )
        except WorkerPoolError:
            self.model.cache = cache
            yield from self._iter_serial(profiles, configs, backend)
            return
        finally:
            if self.model.cache is None:
                self.model.cache = cache

        metrics = obs.metrics()
        total = len(profiles) * len(configs)
        done = 0
        for completed, (profile_index, start, _) in enumerate(tasks):
            try:
                results = next(stream)
            except WorkerPoolError:
                metrics.inc("engine.serial_fallbacks")
                yield from self._iter_serial_tail(
                    profiles, configs, backend,
                    tasks[completed:], done, total,
                )
                return
            metrics.inc("engine.batches")
            metrics.inc("engine.points", len(results))
            name = profiles[profile_index].name
            for offset, result in enumerate(results):
                done += 1
                if self.progress is not None:
                    self.progress(done, total)
                yield DesignPoint(
                    workload=name,
                    config=configs[start + offset],
                    result=result,
                )
