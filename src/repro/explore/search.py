"""Guided design-space search: objectives, budgets, pluggable optimizers.

Exhaustive sweeps stop scaling long before the model does: the paper's
one-profile/many-evaluations economics make *search* the natural
consumer of the analytical model once spaces grow past a few hundred
points.  This module provides the archgym-style split between an
evaluation environment and interchangeable search agents:

* :class:`SearchProblem` -- profiles + a :class:`DesignSpace` + an
  :class:`Objective` -- turns batches of abstract points into fitness
  values by driving the batched
  :class:`~repro.explore.engine.SweepEngine` (so multiprocessing
  workers, the :class:`~repro.core.interval.ModelCache` and the on-disk
  :class:`~repro.profiler.serialization.ProfileStore` all apply to
  search for free), memoizing fitnesses so revisited points are free;
* :class:`EvaluationBudget` bounds the number of *distinct*
  configurations evaluated;
* :class:`SearchTrajectory` records every evaluation in order plus the
  best-so-far curve and wall-clock, for archgym-style comparisons of
  optimizers;
* the optimizers -- :class:`RandomSearch`, :class:`HillClimber`,
  :class:`SimulatedAnnealing`, :class:`GeneticAlgorithm` -- all follow
  the same propose/observe protocol and draw every random decision from
  one seeded ``random.Random``, so a fixed seed reproduces the
  trajectory bitwise at any engine worker count (the engine streams
  results in deterministic grid order regardless of parallelism).

Objectives are scalar and minimized.  The built-ins (``seconds``,
``energy``, ``edp``, ``ed2p``) mirror the DVFS metrics of
:mod:`repro.explore.dvfs`; :func:`power_capped` composes any of them
with the Table 7.1 style power-feasibility constraint.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.interval import ModelCache
from repro.explore.dse import DesignPoint
from repro.explore.engine import SweepEngine
from repro.explore.space import DesignSpace
from repro.profiler.profile import ApplicationProfile

__all__ = [
    "Objective",
    "OBJECTIVES",
    "get_objective",
    "power_capped",
    "EvaluationBudget",
    "Evaluation",
    "SearchTrajectory",
    "SearchProblem",
    "Optimizer",
    "RandomSearch",
    "HillClimber",
    "SimulatedAnnealing",
    "GeneticAlgorithm",
    "OPTIMIZERS",
    "make_optimizer",
]


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Objective:
    """A scalar figure of merit over one design point (minimized).

    Attributes
    ----------
    name:
        Human-readable identifier (also used by the CLI registry).
    metric:
        ``metric(point) -> float`` where ``point`` is a
        :class:`~repro.explore.dse.DesignPoint`; lower is better.
    """

    name: str
    metric: Callable[[DesignPoint], float]

    def __call__(self, point: DesignPoint) -> float:
        """Evaluate the metric on one design point."""
        return self.metric(point)


#: Built-in objectives, by CLI name (all minimized).
OBJECTIVES: Dict[str, Objective] = {
    "seconds": Objective("seconds", lambda p: p.seconds),
    "energy": Objective("energy", lambda p: p.energy_joules),
    "edp": Objective("edp", lambda p: p.edp),
    "ed2p": Objective("ed2p", lambda p: p.ed2p),
}


def get_objective(name: str,
                  power_cap_watts: Optional[float] = None) -> Objective:
    """Look up a built-in objective, optionally power-capped.

    Parameters
    ----------
    name:
        One of ``seconds``, ``energy``, ``edp``, ``ed2p``.
    power_cap_watts:
        When given, wraps the objective with :func:`power_capped`.

    Returns
    -------
    Objective
        The (possibly capped) objective.
    """
    try:
        objective = OBJECTIVES[name]
    except KeyError:
        raise ValueError(
            f"unknown objective {name!r}; known: {sorted(OBJECTIVES)}"
        ) from None
    if power_cap_watts is not None:
        objective = power_capped(objective, power_cap_watts)
    return objective


def power_capped(base: Objective, cap_watts: float) -> Objective:
    """Compose an objective with a power cap (Table 7.1 semantics).

    Points whose predicted average power exceeds ``cap_watts`` score
    ``inf`` -- the same feasibility rule as
    :func:`~repro.explore.dvfs.best_under_power_cap` -- so the search
    minimizes ``base`` over the feasible region.
    """

    def metric(point: DesignPoint) -> float:
        if point.power_watts > cap_watts:
            return math.inf
        return base.metric(point)

    return Objective(name=f"{base.name}|P<={cap_watts:g}W", metric=metric)


# ----------------------------------------------------------------------
# Budget / trajectory
# ----------------------------------------------------------------------

class EvaluationBudget:
    """A hard cap on the number of distinct configurations evaluated.

    Revisited points are served from the :class:`SearchProblem` fitness
    cache and do not consume budget -- the budget counts real model
    evaluations, which is the quantity the exhaustive-vs-guided
    comparisons ration.
    """

    def __init__(self, max_evaluations: int) -> None:
        if max_evaluations <= 0:
            raise ValueError("budget must be positive")
        self.max_evaluations = int(max_evaluations)
        self.spent = 0

    @classmethod
    def of(cls, budget: Union[int, "EvaluationBudget"],
           ) -> "EvaluationBudget":
        """Coerce an int (or pass through a budget) to a budget."""
        if isinstance(budget, EvaluationBudget):
            return budget
        return cls(budget)

    @property
    def remaining(self) -> int:
        """Evaluations left before exhaustion."""
        return max(0, self.max_evaluations - self.spent)

    @property
    def exhausted(self) -> bool:
        """Whether no evaluations remain."""
        return self.spent >= self.max_evaluations

    def try_consume(self, count: int = 1) -> bool:
        """Consume ``count`` evaluations if available; else ``False``."""
        if self.spent + count > self.max_evaluations:
            return False
        self.spent += count
        return True


@dataclass(frozen=True)
class Evaluation:
    """One model evaluation performed during a search.

    Attributes
    ----------
    index:
        0-based position in the trajectory (evaluation order).
    point:
        The abstract design-space point evaluated.
    fitness:
        The objective value (lower is better).
    """

    index: int
    point: Dict[str, object]
    fitness: float


@dataclass
class SearchTrajectory:
    """The full record of one optimizer run (archgym-style).

    Attributes
    ----------
    optimizer / seed / objective:
        Provenance: which agent produced this trajectory, from which
        seed, minimizing what.
    evaluations:
        Every *distinct* configuration evaluated, in order.
    wall_seconds:
        Wall-clock time of the whole search (excluded from equality
        comparisons in tests; everything else is deterministic).
    """

    optimizer: str
    seed: int
    objective: str = ""
    evaluations: List[Evaluation] = field(default_factory=list)
    wall_seconds: float = 0.0

    def __len__(self) -> int:
        """Number of distinct evaluations performed."""
        return len(self.evaluations)

    @property
    def best(self) -> Evaluation:
        """The best evaluation seen (``ValueError`` when empty)."""
        if not self.evaluations:
            raise ValueError("empty trajectory")
        return min(self.evaluations, key=lambda e: (e.fitness, e.index))

    @property
    def best_point(self) -> Dict[str, object]:
        """The best point's parameter dict."""
        return self.best.point

    @property
    def best_fitness(self) -> float:
        """The best objective value seen."""
        return self.best.fitness

    def best_curve(self) -> List[float]:
        """Best-so-far objective value after each evaluation."""
        curve: List[float] = []
        best = math.inf
        for evaluation in self.evaluations:
            best = min(best, evaluation.fitness)
            curve.append(best)
        return curve

    def record(self, point: Dict[str, object], fitness: float) -> None:
        """Append one evaluation (used by :class:`SearchProblem`)."""
        self.evaluations.append(
            Evaluation(index=len(self.evaluations), point=dict(point),
                       fitness=fitness)
        )

    def as_dict(self) -> Dict[str, object]:
        """A JSON-serializable dump of the whole trajectory."""
        return {
            "optimizer": self.optimizer,
            "seed": self.seed,
            "objective": self.objective,
            "wall_seconds": self.wall_seconds,
            "best_fitness": (self.best_fitness if self.evaluations
                             else None),
            "best_point": (self.best_point if self.evaluations
                           else None),
            "evaluations": [
                {"index": e.index, "point": e.point,
                 "fitness": e.fitness}
                for e in self.evaluations
            ],
        }


# ----------------------------------------------------------------------
# The evaluation environment
# ----------------------------------------------------------------------

class SearchProblem:
    """Profiles + space + objective: the search's evaluation environment.

    Fitness of a point is the objective averaged over all profiles
    (equal weights), evaluated by streaming the (profiles x configs)
    batch through a :class:`~repro.explore.engine.SweepEngine` -- one
    engine call per proposal batch, so engine workers parallelize the
    search's inner loop without affecting results.

    Parameters
    ----------
    profiles:
        Application profiles the candidate cores are scored on.
    space:
        The declarative design space points are drawn from.
    objective:
        The scalar to minimize (see :data:`OBJECTIVES`).
    engine:
        Optional pre-configured engine (workers, store, model);
        defaults to a serial :class:`SweepEngine`.  If the engine's
        model has no :class:`~repro.core.interval.ModelCache`, one is
        attached for the lifetime of the problem, so the cross-config
        memoized intermediates persist across proposal batches instead
        of being rebuilt every round (results are unchanged -- the
        cache is a bitwise-identical memo).
    backend:
        Model evaluation backend for the default engine (``"batch"``,
        ``"scalar"`` or ``None`` for the environment default); ignored
        when an ``engine`` is passed -- configure the engine directly
        instead.  Search trajectories are bitwise identical across
        backends.
    """

    def __init__(
        self,
        profiles: Sequence[ApplicationProfile],
        space: DesignSpace,
        objective: Objective,
        engine: Optional[SweepEngine] = None,
        backend: Optional[str] = None,
    ) -> None:
        if not profiles:
            raise ValueError("need at least one profile")
        self.profiles = list(profiles)
        self.space = space
        self.objective = objective
        self.engine = engine if engine is not None else SweepEngine(
            workers=1, backend=backend)
        # Keep memoized model intermediates alive across the many
        # small engine sweeps a search performs (iter_sweep only
        # attaches a per-call cache when none is present).
        if self.engine.model.cache is None:
            self.engine.model.cache = ModelCache()
        self._cache: Dict[Tuple, float] = {}

    @property
    def cache_size(self) -> int:
        """Number of distinct points evaluated so far."""
        return len(self._cache)

    def evaluate(
        self,
        points: Sequence[Dict[str, object]],
        budget: Optional[EvaluationBudget] = None,
        trajectory: Optional[SearchTrajectory] = None,
    ) -> List[Optional[float]]:
        """Score a batch of points, spending budget only on new ones.

        Points already in the fitness cache are returned for free;
        distinct new points are evaluated in one batched engine sweep
        (in proposal order) and recorded on ``trajectory``.  Entries
        the budget cannot cover come back as ``None``.

        Parameters
        ----------
        points:
            Proposal batch (duplicates allowed; deduplicated here).
        budget:
            Optional budget charged one unit per distinct new point.
        trajectory:
            Optional trajectory that records each new evaluation.

        Returns
        -------
        list of float or None
            Fitness per input point (``None`` = not evaluated).
        """
        metrics = obs.metrics()
        results: List[Optional[float]] = [None] * len(points)
        order: Dict[Tuple, int] = {}  # new key -> index into batch
        batch: List[Dict[str, object]] = []
        for position, point in enumerate(points):
            key = self.space.key(point)
            if key in self._cache:
                metrics.inc("search.fitness_cache_hits")
                results[position] = self._cache[key]
            elif key not in order:
                if budget is None or budget.try_consume(1):
                    order[key] = len(batch)
                    batch.append(point)
                else:
                    order[key] = -1  # over budget: stays None
        if batch:
            metrics.inc("search.evaluations", len(batch))
            for point, fitness in zip(batch, self._evaluate_batch(batch)):
                self._cache[self.space.key(point)] = fitness
                if trajectory is not None:
                    trajectory.record(point, fitness)
        for position, point in enumerate(points):
            if results[position] is None:
                index = order.get(self.space.key(point), -1)
                if index >= 0:
                    results[position] = self._cache[
                        self.space.key(point)]
        return results

    def _evaluate_batch(
        self, points: Sequence[Dict[str, object]]
    ) -> List[float]:
        """Model-evaluate distinct points via one engine sweep."""
        configs = [self.space.config(point) for point in points]
        totals = [0.0] * len(configs)
        count = 0
        for design_point in self.engine.iter_sweep(self.profiles,
                                                   configs):
            totals[count % len(configs)] += self.objective.metric(
                design_point)
            count += 1
        return [total / len(self.profiles) for total in totals]

    def exhaustive_best(self) -> Tuple[Dict[str, object], float]:
        """Ground truth: the space optimum by full enumeration.

        Evaluates every valid point (budget-free, cache-shared) and
        returns ``(point, fitness)`` -- the baseline the guided
        optimizers are compared against.
        """
        points = self.space.points()
        fitness = self.evaluate(points)
        best = min(range(len(points)),
                   key=lambda i: (fitness[i], i))
        return points[best], fitness[best]  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Optimizers
# ----------------------------------------------------------------------

class Optimizer:
    """Base class: the seeded propose/observe search loop.

    Subclasses implement :meth:`_propose` (the next batch of candidate
    points) and :meth:`_observe` (digest the batch's fitnesses); the
    base loop owns the RNG, the budget, stagnation detection and the
    trajectory.  All stochastic decisions must draw from the ``rng``
    handed in, which is the sole source of randomness -- that is what
    makes a fixed seed bitwise-reproducible at any worker count.

    Parameters
    ----------
    seed:
        Seed for the private ``random.Random``.
    batch_size:
        Candidate evaluations proposed per round (batched into a
        single engine sweep).
    max_stagnant_rounds:
        Stop after this many consecutive rounds that added no new
        evaluation (e.g. a small space fully explored).
    """

    name = "base"

    def __init__(self, seed: int = 0, batch_size: int = 8,
                 max_stagnant_rounds: int = 50) -> None:
        self.seed = seed
        self.batch_size = max(1, batch_size)
        self.max_stagnant_rounds = max_stagnant_rounds

    # -- subclass protocol ---------------------------------------------

    def _start(self, problem: SearchProblem,
               rng: random.Random) -> Dict[str, object]:
        """Create the optimizer's mutable state for one run."""
        return {}

    def _propose(self, problem: SearchProblem, rng: random.Random,
                 state: Dict[str, object]) -> List[Dict[str, object]]:
        """The next batch of candidate points."""
        raise NotImplementedError

    def _observe(self, problem: SearchProblem, rng: random.Random,
                 state: Dict[str, object],
                 points: List[Dict[str, object]],
                 fitness: List[Optional[float]]) -> None:
        """Digest the evaluated batch (``None`` = over budget)."""

    # -- the driver ----------------------------------------------------

    def search(
        self,
        problem: SearchProblem,
        budget: Union[int, EvaluationBudget],
    ) -> SearchTrajectory:
        """Run the search until the budget (or the space) is exhausted.

        Parameters
        ----------
        problem:
            The evaluation environment.
        budget:
            Maximum distinct configurations to evaluate (int or
            :class:`EvaluationBudget`).

        Returns
        -------
        SearchTrajectory
            Every evaluation in order, plus best-so-far accessors.
        """
        budget = EvaluationBudget.of(budget)
        rng = random.Random(self.seed)
        trajectory = SearchTrajectory(
            optimizer=self.name, seed=self.seed,
            objective=problem.objective.name,
        )
        # The span is the single timing source: wall_seconds and any
        # exported telemetry are the same measurement by construction.
        with obs.span("search.run", optimizer=self.name,
                      seed=self.seed) as span:
            state = self._start(problem, rng)
            stagnant = 0
            while not budget.exhausted:
                before = len(trajectory)
                points = self._propose(problem, rng, state)
                fitness = problem.evaluate(points, budget, trajectory)
                self._observe(problem, rng, state, points, fitness)
                if len(trajectory) == before:
                    stagnant += 1
                    if stagnant >= self.max_stagnant_rounds:
                        break
                else:
                    stagnant = 0
        trajectory.wall_seconds = span.seconds
        return trajectory


class RandomSearch(Optimizer):
    """Uniform random sampling of the space -- the honest baseline."""

    name = "random"

    def _propose(self, problem, rng, state):
        """A batch of independent uniform samples."""
        return [problem.space.sample(rng)
                for _ in range(self.batch_size)]


class HillClimber(Optimizer):
    """Steepest-ascent hill climbing with random restarts.

    Each round proposes ``batch_size`` mutations of the incumbent and
    moves to the best strict improvement; a round with no improvement
    triggers a random restart (the incumbent-so-far is still tracked by
    the trajectory, so restarts can only help).
    """

    name = "hill"

    def _start(self, problem, rng):
        """State: the incumbent point and its fitness."""
        return {"current": None, "fitness": math.inf}

    def _propose(self, problem, rng, state):
        """Mutations of the incumbent (or a fresh start point)."""
        if state["current"] is None:
            return [problem.space.sample(rng)]
        return [problem.space.mutate(state["current"], rng)
                for _ in range(self.batch_size)]

    def _observe(self, problem, rng, state, points, fitness):
        """Move to the best improving neighbor, else restart."""
        scored = [(f, i) for i, f in enumerate(fitness)
                  if f is not None]
        if not scored:
            return
        best_fitness, best_index = min(scored)
        if state["current"] is None:
            state["current"] = points[best_index]
            state["fitness"] = best_fitness
        elif best_fitness < state["fitness"]:
            state["current"] = points[best_index]
            state["fitness"] = best_fitness
        else:
            state["current"] = None  # local optimum: restart
            state["fitness"] = math.inf


class SimulatedAnnealing(Optimizer):
    """Metropolis annealing over the mutation neighborhood.

    Proposals are mutations of the current point, accepted when better
    or -- with probability ``exp(-relative_worsening / t)`` -- when
    worse; the *relative* temperature starts at ``t0`` (a fraction of
    the current fitness) and cools geometrically per proposal, so the
    schedule is scale-free across objectives of wildly different
    magnitudes (seconds vs ED2P).

    Parameters
    ----------
    seed / batch_size / max_stagnant_rounds:
        See :class:`Optimizer`.
    t0:
        Initial relative temperature (0.2 accepts ~20%-worse moves
        with probability ``1/e`` at step 0).
    cooling:
        Geometric cooling factor applied per proposal.
    """

    name = "sa"

    def __init__(self, seed: int = 0, batch_size: int = 8,
                 max_stagnant_rounds: int = 50, t0: float = 0.2,
                 cooling: float = 0.99) -> None:
        super().__init__(seed, batch_size, max_stagnant_rounds)
        if not 0 < cooling <= 1:
            raise ValueError("cooling must be in (0, 1]")
        self.t0 = t0
        self.cooling = cooling

    def _start(self, problem, rng):
        """State: current point/fitness and the proposal counter."""
        return {"current": None, "fitness": math.inf, "step": 0}

    def _propose(self, problem, rng, state):
        """Neighbors of the current point (or the start point)."""
        if state["current"] is None:
            return [problem.space.sample(rng)]
        return [problem.space.mutate(state["current"], rng)
                for _ in range(self.batch_size)]

    def _observe(self, problem, rng, state, points, fitness):
        """Metropolis-accept the batch sequentially."""
        for point, value in zip(points, fitness):
            if value is None:
                continue
            if state["current"] is None:
                state["current"], state["fitness"] = point, value
                continue
            temperature = (
                self.t0 * (self.cooling ** state["step"])
                * max(abs(state["fitness"]), 1e-300)
            )
            state["step"] += 1
            delta = value - state["fitness"]
            if delta <= 0 or (
                temperature > 0
                and rng.random() < math.exp(-delta / temperature)
            ):
                state["current"], state["fitness"] = point, value


class GeneticAlgorithm(Optimizer):
    """Generational GA: tournament selection, crossover, mutation.

    Every generation is evaluated as one engine batch.  Selection uses
    size-``tournament`` tournaments over the evaluated members;
    children are produced by parameter-wise uniform crossover (with
    probability ``crossover_rate``, else a clone of the first parent)
    followed by per-parameter mutation with probability
    ``mutation_rate``; the ``elitism`` best members carry over
    unchanged (their fitness is cached, so elites cost no budget).

    Parameters
    ----------
    seed / max_stagnant_rounds:
        See :class:`Optimizer`.
    population:
        Members per generation (also the proposal batch size).
    tournament:
        Tournament size for parent selection.
    crossover_rate / mutation_rate:
        Child-level crossover and per-parameter mutation probability.
    elitism:
        Members copied unchanged into the next generation.
    """

    name = "ga"

    def __init__(self, seed: int = 0, population: int = 24,
                 tournament: int = 3, crossover_rate: float = 0.9,
                 mutation_rate: float = 0.2, elitism: int = 2,
                 max_stagnant_rounds: int = 50) -> None:
        super().__init__(seed, batch_size=population,
                         max_stagnant_rounds=max_stagnant_rounds)
        if population < 2:
            raise ValueError("population must be >= 2")
        self.population = population
        self.tournament = max(1, tournament)
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.elitism = max(0, min(elitism, population - 1))

    def _start(self, problem, rng):
        """State: the current generation and its fitnesses."""
        return {"members": None, "fitness": None}

    def _propose(self, problem, rng, state):
        """The next generation (initial one is random samples)."""
        if state["members"] is None:
            return [problem.space.sample(rng)
                    for _ in range(self.population)]
        return self._next_generation(problem, rng, state)

    def _observe(self, problem, rng, state, points, fitness):
        """Install the evaluated generation."""
        state["members"] = points
        state["fitness"] = fitness

    def _select(self, rng, scored):
        """Tournament-select one parent from (fitness, point) pairs."""
        best = None
        for _ in range(self.tournament):
            candidate = scored[rng.randrange(len(scored))]
            if best is None or candidate[0] < best[0]:
                best = candidate
        return best[1]

    def _next_generation(self, problem, rng, state):
        """Elites + crossover/mutation children of the current one."""
        scored = [
            (f, i) for i, f in enumerate(state["fitness"])
            if f is not None
        ]
        if not scored:  # budget died mid-generation: keep sampling
            return [problem.space.sample(rng)
                    for _ in range(self.population)]
        pairs = [(f, state["members"][i]) for f, i in scored]
        ranked = sorted(pairs, key=lambda item: item[0])
        children = [dict(point)
                    for _, point in ranked[:self.elitism]]
        while len(children) < self.population:
            parent_a = self._select(rng, pairs)
            parent_b = self._select(rng, pairs)
            if rng.random() < self.crossover_rate:
                child = problem.space.crossover(parent_a, parent_b, rng)
            else:
                child = dict(parent_a)
            children.append(self._mutate(problem.space, child, rng))
        return children

    def _mutate(self, space, point, rng):
        """Per-parameter mutation, constraint-repaired."""
        mutated = dict(point)
        for parameter in space.parameters:
            if rng.random() < self.mutation_rate:
                mutated[parameter.name] = parameter.mutate(
                    mutated[parameter.name], rng)
        if not space.satisfies(mutated):
            return space.mutate(point, rng)
        return mutated


#: Optimizer classes by CLI name.
OPTIMIZERS: Dict[str, type] = {
    "random": RandomSearch,
    "hill": HillClimber,
    "sa": SimulatedAnnealing,
    "ga": GeneticAlgorithm,
}


def make_optimizer(name: str, seed: int = 0, **kwargs) -> Optimizer:
    """Instantiate an optimizer from its registry name.

    Parameters
    ----------
    name:
        One of ``random``, ``hill``, ``sa``, ``ga``.
    seed:
        RNG seed forwarded to the optimizer.
    kwargs:
        Optimizer-specific options (e.g. ``population`` for the GA).

    Returns
    -------
    Optimizer
        The configured optimizer instance.
    """
    try:
        cls = OPTIMIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; known: {sorted(OPTIMIZERS)}"
        ) from None
    return cls(seed=seed, **kwargs)
