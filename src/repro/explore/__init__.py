"""Design-space exploration tooling (thesis Chapters 6--7).

Sweeps the analytical model over configuration spaces (serially or on a
:class:`~repro.explore.engine.SweepEngine` worker pool with profile
caching), extracts Pareto frontiers (batch or streaming), scores them
against simulation with the thesis' four metrics (sensitivity /
specificity / accuracy / HVR), explores DVFS operating points, and
provides the empirical-regression baseline of §7.5 and the
evaluation-cost model behind the 315x / 18x speedup claims.

On top of the sweep layer sits guided search: declarative
:class:`~repro.explore.space.DesignSpace` descriptions (typed
parameters, constraints, JSON round-trip) and the seeded, pluggable
optimizers of :mod:`repro.explore.search` (random / hill-climbing /
simulated annealing / genetic), which drive batched evaluations through
the engine under an :class:`~repro.explore.search.EvaluationBudget` and
record full :class:`~repro.explore.search.SearchTrajectory` objects.

The accuracy loop is closed by :mod:`repro.explore.validate`:
:class:`~repro.explore.validate.ValidationCampaign` runs the analytical
model and the cycle-level simulator over the same grid (the simulator
on its own parallel :class:`~repro.explore.validate.SimulationSweep`)
and reports per-design errors, CPI-stack component errors, the §7.4
Pareto filtering metrics and the §7.5 empirical-baseline comparison.
"""

from repro.explore.dse import (
    DesignPoint,
    best_average_config,
    best_config_per_workload,
    evaluate_design_space,
    error_statistics,
)
from repro.explore.engine import SweepEngine
from repro.explore.pareto import (
    ParetoMetrics,
    StreamingParetoFront,
    hypervolume,
    hvr,
    pareto_front,
    pareto_metrics,
)
from repro.explore.dvfs import (
    best_under_power_cap,
    explore_dvfs,
    optimal_ed2p,
)
from repro.explore.empirical import EmpiricalModel
from repro.explore.validate import (
    BaselineComparison,
    SimulatedPoint,
    SimulationSweep,
    ValidationCampaign,
    ValidationCase,
    ValidationReport,
    WorkloadValidation,
)
from repro.explore.cost import (
    EvaluationCost,
    interval_model_cost,
    micro_arch_independent_cost,
    simulation_cost,
    speedups,
)
from repro.explore.space import DesignSpace, Parameter
from repro.explore.search import (
    OBJECTIVES,
    OPTIMIZERS,
    Evaluation,
    EvaluationBudget,
    GeneticAlgorithm,
    HillClimber,
    Objective,
    Optimizer,
    RandomSearch,
    SearchProblem,
    SearchTrajectory,
    SimulatedAnnealing,
    get_objective,
    make_optimizer,
    power_capped,
)

__all__ = [
    "DesignPoint",
    "SweepEngine",
    "DesignSpace",
    "Parameter",
    "OBJECTIVES",
    "OPTIMIZERS",
    "Evaluation",
    "EvaluationBudget",
    "GeneticAlgorithm",
    "HillClimber",
    "Objective",
    "Optimizer",
    "RandomSearch",
    "SearchProblem",
    "SearchTrajectory",
    "SimulatedAnnealing",
    "get_objective",
    "make_optimizer",
    "power_capped",
    "best_average_config",
    "best_config_per_workload",
    "evaluate_design_space",
    "error_statistics",
    "ParetoMetrics",
    "StreamingParetoFront",
    "hypervolume",
    "hvr",
    "pareto_front",
    "pareto_metrics",
    "best_under_power_cap",
    "explore_dvfs",
    "optimal_ed2p",
    "EmpiricalModel",
    "BaselineComparison",
    "SimulatedPoint",
    "SimulationSweep",
    "ValidationCampaign",
    "ValidationCase",
    "ValidationReport",
    "WorkloadValidation",
    "EvaluationCost",
    "interval_model_cost",
    "micro_arch_independent_cost",
    "simulation_cost",
    "speedups",
]
