"""Functional branch predictor simulators.

The thesis evaluates the entropy model against five predictors of ~4 KB
each (Fig 3.10): GAg, GAp, PAp, gshare and a GAp/PAp tournament.  Each
predictor here follows the classic two-level scheme of Yeh & Patt with
2-bit saturating counters.

Sizing convention: a predictor's ``size_bits`` is the total number of
pattern-history-table counter bits (2 bits per counter); 4 KB = 32768 bits
= 16384 counters = 14 index bits.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.isa import Instruction
from repro.workloads.trace import Trace


class _Counter2:
    """Array of 2-bit saturating counters stored in a dict (sparse)."""

    __slots__ = ("table", "default")

    def __init__(self, default: int = 1) -> None:
        self.table: Dict[int, int] = {}
        self.default = default

    def predict(self, index: int) -> bool:
        return self.table.get(index, self.default) >= 2

    def update(self, index: int, taken: bool) -> None:
        value = self.table.get(index, self.default)
        if taken:
            value = min(3, value + 1)
        else:
            value = max(0, value - 1)
        self.table[index] = value


class BranchPredictor:
    """Base interface: ``predict_and_update(pc, taken) -> correct?``."""

    name = "base"

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        raise NotImplementedError


class AlwaysTakenPredictor(BranchPredictor):
    """Static predictor: always predicts taken."""

    name = "always-taken"

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        return taken


class BimodalPredictor(BranchPredictor):
    """PC-indexed table of 2-bit counters (no history)."""

    name = "bimodal"

    def __init__(self, index_bits: int = 14) -> None:
        self._mask = (1 << index_bits) - 1
        self._pht = _Counter2()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        index = (pc >> 2) & self._mask
        prediction = self._pht.predict(index)
        self._pht.update(index, taken)
        return prediction == taken


class GAgPredictor(BranchPredictor):
    """Global history register indexing one global PHT."""

    name = "GAg"

    def __init__(self, history_bits: int = 14) -> None:
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._history = 0
        self._pht = _Counter2()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        index = self._history & self._mask
        prediction = self._pht.predict(index)
        self._pht.update(index, taken)
        self._history = ((self._history << 1) | int(taken)) & self._mask
        return prediction == taken


class GApPredictor(BranchPredictor):
    """Global history with per-branch pattern tables.

    Modeled with an unaliased (pc, history) composite index; the limited
    hardware budget is reflected in the shorter history.
    """

    name = "GAp"

    def __init__(self, history_bits: int = 8, pc_bits: int = 6) -> None:
        self.history_bits = history_bits
        self._hmask = (1 << history_bits) - 1
        self._pcmask = (1 << pc_bits) - 1
        self._history = 0
        self._pht = _Counter2()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        index = (((pc >> 2) & self._pcmask) << self.history_bits) | (
            self._history & self._hmask
        )
        prediction = self._pht.predict(index)
        self._pht.update(index, taken)
        self._history = ((self._history << 1) | int(taken)) & self._hmask
        return prediction == taken


class PApPredictor(BranchPredictor):
    """Per-branch history registers with per-branch pattern tables."""

    name = "PAp"

    def __init__(self, history_bits: int = 8, pc_bits: int = 6) -> None:
        self.history_bits = history_bits
        self._hmask = (1 << history_bits) - 1
        self._pcmask = (1 << pc_bits) - 1
        self._histories: Dict[int, int] = {}
        self._pht = _Counter2()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        key = (pc >> 2) & self._pcmask
        history = self._histories.get(key, 0)
        index = (key << self.history_bits) | history
        prediction = self._pht.predict(index)
        self._pht.update(index, taken)
        self._histories[key] = ((history << 1) | int(taken)) & self._hmask
        return prediction == taken


class GsharePredictor(BranchPredictor):
    """Global history XOR PC indexing one PHT (McFarling)."""

    name = "gshare"

    def __init__(self, index_bits: int = 14) -> None:
        self._mask = (1 << index_bits) - 1
        self._history = 0
        self._pht = _Counter2()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        index = ((pc >> 2) ^ self._history) & self._mask
        prediction = self._pht.predict(index)
        self._pht.update(index, taken)
        self._history = ((self._history << 1) | int(taken)) & self._mask
        return prediction == taken


class TournamentPredictor(BranchPredictor):
    """GAp/PAp tournament with a PC-indexed 2-bit chooser."""

    name = "tournament"

    def __init__(self, history_bits: int = 7, pc_bits: int = 6) -> None:
        self._gap = GApPredictor(history_bits, pc_bits)
        self._pap = PApPredictor(history_bits, pc_bits)
        self._chooser = _Counter2(default=1)
        self._pcmask = (1 << 12) - 1

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        key = (pc >> 2) & self._pcmask
        use_pap = self._chooser.predict(key)
        gap_correct = self._gap.predict_and_update(pc, taken)
        pap_correct = self._pap.predict_and_update(pc, taken)
        if gap_correct != pap_correct:
            self._chooser.update(key, pap_correct)
        return pap_correct if use_pap else gap_correct


_PREDICTOR_FACTORIES = {
    "always-taken": AlwaysTakenPredictor,
    "bimodal": BimodalPredictor,
    "GAg": GAgPredictor,
    "GAp": GApPredictor,
    "PAp": PApPredictor,
    "gshare": GsharePredictor,
    "tournament": TournamentPredictor,
}


def make_predictor(name: str) -> BranchPredictor:
    """Instantiate a fresh ~4 KB predictor by name."""
    try:
        return _PREDICTOR_FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; choose from "
            f"{sorted(_PREDICTOR_FACTORIES)}"
        ) from None


def simulate_predictor(
    predictor: BranchPredictor, trace: Iterable[Instruction]
) -> Tuple[int, int]:
    """Run a predictor over a trace.

    Returns ``(num_branches, num_mispredictions)``.
    """
    branches = 0
    misses = 0
    for instr in trace:
        if instr.is_branch:
            branches += 1
            if not predictor.predict_and_update(instr.pc, instr.taken):
                misses += 1
    return branches, misses


def misprediction_rate(predictor: BranchPredictor, trace: Trace) -> float:
    """Misprediction rate (fraction of branches mispredicted)."""
    branches, misses = simulate_predictor(predictor, trace)
    if branches == 0:
        return 0.0
    return misses / branches
