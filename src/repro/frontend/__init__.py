"""Branch prediction substrate and micro-architecture independent inputs.

Contains functional branch predictor simulators (used for validation and
for training the entropy model, thesis Fig 3.8) and the linear branch
entropy metric plus the entropy -> misprediction-rate linear model
(thesis §3.5).
"""

from repro.frontend.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    GAgPredictor,
    GApPredictor,
    GsharePredictor,
    PApPredictor,
    TournamentPredictor,
    make_predictor,
    simulate_predictor,
)
from repro.frontend.entropy import (
    BranchEntropyProfile,
    EntropyMissRateModel,
    linear_entropy,
    profile_branch_entropy,
    train_entropy_model,
)

__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "GAgPredictor",
    "GApPredictor",
    "GsharePredictor",
    "PApPredictor",
    "TournamentPredictor",
    "make_predictor",
    "simulate_predictor",
    "BranchEntropyProfile",
    "EntropyMissRateModel",
    "linear_entropy",
    "profile_branch_entropy",
    "train_entropy_model",
]
