"""Linear branch entropy and the entropy -> misprediction-rate model.

Thesis §3.5 (after De Pestel et al.): for every static branch ``b`` and
global-history pattern ``H`` of fixed length, record taken/not-taken
counts.  The taken probability (Eq 3.13)

    p(b, H) = T(b, H) / (T(b, H) + NT(b, H))

defines the linear entropy (Eq 3.14)

    E(p) = 2 * min(p, 1 - p)

and the application's entropy is the execution-weighted average over all
(b, H) pairs (Eq 3.15).  A perfectly predictable branch stream has E = 0;
coin-flip branches have E = 1.

Misprediction rates for a *specific* predictor are then obtained from a
one-time linear fit of (entropy, simulated missrate) pairs over a training
set (Fig 3.8/3.9): ``missrate = a * E + b``.  The fit is per predictor and
amortized over every later application/design-space query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.isa import Instruction
from repro.frontend.predictors import make_predictor, simulate_predictor
from repro.workloads.trace import Trace


@dataclass
class BranchEntropyProfile:
    """Entropy of an application at several history lengths.

    ``entropy[h]`` is the linear branch entropy computed with ``h`` bits of
    global history.  Longer histories expose more pattern structure, so
    entropy is non-increasing in ``h``; different predictors are fitted
    against the history length closest to what they exploit.
    """

    entropy: Dict[int, float] = field(default_factory=dict)
    num_branches: int = 0

    def at(self, history_bits: int) -> float:
        """Entropy at the profiled history length nearest ``history_bits``."""
        if not self.entropy:
            return 0.0
        best = min(self.entropy, key=lambda h: abs(h - history_bits))
        return self.entropy[best]


def linear_entropy(p: float) -> float:
    """Linear entropy of a taken probability (Eq 3.14)."""
    return 2.0 * min(p, 1.0 - p)


def profile_branch_entropy(
    trace: Iterable[Instruction],
    history_lengths: Sequence[int] = (4, 8, 12),
    columns=None,
) -> BranchEntropyProfile:
    """Profile linear branch entropy at several global-history lengths.

    One pass over the trace keeps, per history length, a table
    ``(pc, history) -> [taken, not_taken]`` and finally averages
    ``E(p(b, H))`` weighted by execution counts (Eq 3.15).

    With ``columns`` (a columnar view of the same trace) the pass is
    vectorized: global-history patterns come from shifted views of the
    branch-outcome array and the per-``(pc, history)`` taken counts from
    one ``np.unique`` grouping.  The weighted average is accumulated in
    the scalar table's insertion (first-encounter) order, so the
    entropies are bitwise identical to the scalar pass.
    """
    if columns is not None:
        branch_mask = columns.is_branch
        return _profile_branch_entropy_arrays(
            columns.pc[branch_mask],
            columns.taken[branch_mask].astype(np.int64),
            history_lengths,
        )
    tables: Dict[int, Dict[Tuple[int, int], List[int]]] = {
        h: {} for h in history_lengths
    }
    histories: Dict[int, int] = {h: 0 for h in history_lengths}
    masks: Dict[int, int] = {h: (1 << h) - 1 for h in history_lengths}
    num_branches = 0

    for instr in trace:
        if not instr.is_branch:
            continue
        num_branches += 1
        taken = instr.taken
        for h in history_lengths:
            key = (instr.pc, histories[h])
            record = tables[h].get(key)
            if record is None:
                record = [0, 0]
                tables[h][key] = record
            record[0 if taken else 1] += 1
            histories[h] = ((histories[h] << 1) | int(taken)) & masks[h]

    profile = BranchEntropyProfile(num_branches=num_branches)
    for h in history_lengths:
        weighted = 0.0
        total = 0
        for (taken_count, not_taken_count) in (
            tables[h].values()
        ):
            n = taken_count + not_taken_count
            p = taken_count / n
            weighted += n * linear_entropy(p)
            total += n
        profile.entropy[h] = weighted / total if total else 0.0
    return profile


def _profile_branch_entropy_arrays(
    pcs: np.ndarray,
    taken: np.ndarray,
    history_lengths: Sequence[int],
) -> BranchEntropyProfile:
    """Columnar branch-entropy pass over the branch subsequence.

    ``pcs``/``taken`` hold the PC and outcome (0/1, ``int64``) of every
    conditional branch in stream order.  The ``h``-bit global history
    before branch ``i`` is ``outcome[i-k] << (k-1)`` summed over
    ``k = 1..h`` -- a handful of shifted-slice ORs -- and grouping the
    combined ``(pc, history)`` key with ``np.unique`` replaces the
    per-branch dictionary updates.
    """
    num_branches = int(pcs.shape[0])
    profile = BranchEntropyProfile(num_branches=num_branches)
    for h in history_lengths:
        if num_branches == 0:
            profile.entropy[h] = 0.0
            continue
        history = np.zeros(num_branches, dtype=np.int64)
        for k in range(1, h + 1):
            if k >= num_branches:
                break
            history[k:] |= taken[:-k] << (k - 1)
        key = (pcs.astype(np.int64) << np.int64(h)) | history
        unique, first_index, inverse = np.unique(
            key, return_index=True, return_inverse=True
        )
        group_total = np.bincount(
            inverse, minlength=unique.shape[0]
        ).tolist()
        group_taken = np.bincount(
            inverse[taken.astype(bool)], minlength=unique.shape[0]
        ).tolist()
        weighted = 0.0
        total = 0
        # Scalar-table insertion order == first encounter of each key;
        # summing in that order keeps the float result bitwise equal.
        for group in np.argsort(first_index, kind="stable").tolist():
            n = group_total[group]
            p = group_taken[group] / n
            weighted += n * linear_entropy(p)
            total += n
        profile.entropy[h] = weighted / total if total else 0.0
    return profile


@dataclass
class EntropyMissRateModel:
    """Per-predictor linear model ``missrate = slope * entropy + intercept``.

    ``history_bits`` records which entropy history length the model was
    trained against, so queries use the matching profile entry.
    """

    predictor_name: str
    slope: float
    intercept: float
    history_bits: int
    r_squared: float = 0.0
    training_points: List[Tuple[float, float]] = field(default_factory=list)

    def predict(self, entropy: float) -> float:
        """Predicted misprediction rate, clamped to [0, 1]."""
        rate = self.slope * entropy + self.intercept
        return min(1.0, max(0.0, rate))

    def predict_from_profile(self, profile: BranchEntropyProfile) -> float:
        return self.predict(profile.at(self.history_bits))


#: History length (bits) each predictor's entropy fit uses.  Predictors
#: with longer effective histories pair with longer-history entropy.
_PREDICTOR_HISTORY = {
    "always-taken": 4,
    "bimodal": 4,
    "GAg": 8,
    "GAp": 8,
    "PAp": 8,
    "gshare": 8,
    "tournament": 8,
}


def train_entropy_model(
    predictor_name: str,
    training_traces: Sequence[Trace],
    history_lengths: Sequence[int] = (4, 8, 12),
) -> EntropyMissRateModel:
    """Fit the linear entropy->missrate model for one predictor.

    For every training trace: profile entropy once, simulate the predictor
    once, then least-squares fit a line through the (entropy, missrate)
    points (Fig 3.9).  This is the one-time training cost of Fig 3.8.
    """
    history_bits = _PREDICTOR_HISTORY.get(predictor_name, 8)
    xs: List[float] = []
    ys: List[float] = []
    for trace in training_traces:
        profile = profile_branch_entropy(trace, history_lengths)
        predictor = make_predictor(predictor_name)
        branches, misses = simulate_predictor(predictor, trace)
        if branches == 0:
            continue
        xs.append(profile.at(history_bits))
        ys.append(misses / branches)
    if len(xs) < 2:
        raise ValueError(
            "need at least two training traces with branches to fit"
        )
    x = np.asarray(xs)
    y = np.asarray(ys)
    design = np.column_stack([x, np.ones_like(x)])
    (slope, intercept), residuals, _, _ = np.linalg.lstsq(design, y, rcond=None)
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if residuals.size:
        ss_res = float(residuals[0])
    else:
        ss_res = float(np.sum((design @ np.array([slope, intercept]) - y) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return EntropyMissRateModel(
        predictor_name=predictor_name,
        slope=float(slope),
        intercept=float(intercept),
        history_bits=history_bits,
        r_squared=r_squared,
        training_points=list(zip(xs, ys)),
    )
