"""Backend-name registry and validation shared by profiler and model.

Two layers of the stack keep a vectorized fast path next to a scalar
reference path behind a ``backend=`` switch:

* profiling: :func:`repro.profiler.profile.profile_application`
  (``"columns"`` / ``"scalar"``, PR 4);
* the analytical model: :meth:`repro.core.model.AnalyticalModel.predict_batch`
  (``"batch"`` / ``"scalar"``).

Both paths are bitwise identical by contract (pinned by
``tests/equivalence.py``), so the switch is purely a performance lever.
This module is the single place backend names are declared and
validated, so every entry point rejects unknown names with the same
error *before* doing any work.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple

#: Profiling backends, fastest first (the first entry is the default).
PROFILE_BACKENDS: Tuple[str, ...] = ("columns", "scalar")

#: Analytical-model backends, fastest first.
MODEL_BACKENDS: Tuple[str, ...] = ("batch", "scalar")

#: Environment variable overriding the default model backend (used by CI
#: to run the full suite against the scalar reference path).
MODEL_BACKEND_ENV = "REPRO_MODEL_BACKEND"


def validate_backend(name: str, known: Sequence[str], what: str) -> str:
    """Validate a backend name against its registry.

    Parameters
    ----------
    name:
        The backend name supplied by the caller.
    known:
        The registry of valid names (e.g. :data:`MODEL_BACKENDS`).
    what:
        Human-readable layer name for the error message
        (``"profiling"`` or ``"model"``).

    Returns
    -------
    str
        ``name`` unchanged, for call-chaining.

    Raises
    ------
    ValueError
        If ``name`` is not in ``known``.  The message always contains
        the word "backend" and the known names.
    """
    if name not in known:
        raise ValueError(
            f"unknown {what} backend {name!r}; "
            f"known backends: {', '.join(known)}"
        )
    return name


def default_model_backend() -> str:
    """The model backend to use when the caller did not pick one.

    Reads :data:`MODEL_BACKEND_ENV` (validated) and falls back to the
    fastest registered backend.
    """
    env = os.environ.get(MODEL_BACKEND_ENV)
    if env:
        return validate_backend(env, MODEL_BACKENDS, "model")
    return MODEL_BACKENDS[0]


def resolve_model_backend(backend: Optional[str]) -> str:
    """Resolve an optional explicit backend choice to a validated name."""
    if backend is None:
        return default_model_backend()
    return validate_backend(backend, MODEL_BACKENDS, "model")
